//! Quickstart: estimate the delay of one wire three ways.
//!
//! Builds a 10 mm wide clock-class wire in the 0.25 µm technology preset,
//! drives it with a 100× repeater, and prints the 50% propagation delay
//! according to
//!
//! 1. the paper's closed-form RLC model (Eq. 9),
//! 2. the classical RC baselines (Elmore, Sakurai),
//! 3. the dynamic circuit simulator (the reproduction's stand-in for AS/X).
//!
//! Run with `cargo run --release --example quickstart`.

use rlckit::model::rc_models::{elmore_delay, sakurai_delay};
use rlckit::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::quarter_micron();
    let length = Length::from_millimeters(10.0);
    let line = tech.global_wire.line(length)?;

    // Clock spines this wide are driven by very large repeaters; 1000x the
    // minimum buffer keeps the driver resistance comparable to the line
    // resistance (RT = Rtr/Rt <= 1), the operating region the paper's model
    // is fitted for.
    let buffer_size = 1000.0;
    let driver = tech.buffer_resistance(buffer_size)?;
    let receiver = tech.buffer_capacitance(buffer_size)?;

    println!("wire: {} of {} global metal", length, tech.name);
    println!(
        "  Rt = {}, Lt = {}, Ct = {}",
        line.total_resistance(),
        line.total_inductance(),
        line.total_capacitance()
    );
    println!("driver: {buffer_size}x minimum buffer -> Rtr = {driver}, CL = {receiver}");

    // Should this net be modelled with inductance at all?
    let assessment = assess_inductance(&line, Time::from_picoseconds(50.0));
    println!("inductance assessment at a 50 ps edge: {assessment:?}");

    // 1. The paper's closed-form model.
    let load = GateRlcLoad::from_line(&line, driver, receiver)?;
    let rlc = propagation_delay(&load);
    println!("\nclosed-form RLC delay (Eq. 9):  {rlc}   [zeta = {:.3}]", load.zeta());

    // 2. RC baselines.
    println!("Elmore (RC) delay:              {}", elmore_delay(&load));
    println!("Sakurai (RC) delay:             {}", sakurai_delay(&load));

    // 3. Dynamic simulation of the same circuit (distributed line as a ladder).
    let spec = line.to_ladder_spec(driver, receiver, 60, Voltage::from_volts(1.0));
    let sim = measure_step_delay(&spec)?;
    println!("simulated delay (RLC ladder):   {}", sim.delay_50);
    println!("simulated overshoot:            {:.1}%", sim.overshoot_percent);

    let err = rlc.percent_error_vs(sim.delay_50);
    println!("\nEq. (9) vs simulation error:    {err:.2}%");
    Ok(())
}
