//! Tour of the SPICE-subset netlist frontend.
//!
//! Parses a hand-written deck with a parameterized subcircuit and reads the
//! resulting node map, unparses a programmatically built circuit and checks
//! the round trip is exact, shows what a parse diagnostic looks like, and
//! finishes with the crate's scaling workload: SRAM bitline/wordline arrays
//! emitted as decks, lowered back through the parser and simulated for the
//! far-corner read delay.
//!
//! Run with `cargo run --release --example netlist`.

use rlckit::circuit::dc::operating_point_at;
use rlckit::circuit::{Circuit, SolverBackend, SourceWaveform};
use rlckit::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Parse a deck with hierarchy -------------------------------------
    let deck = "\
* two RC segments built from one parameterized subcircuit
.subckt seg a b r=1k c=1pF
Rs a b {r}
Cs b 0 {c}
.ends seg
V1 in 0 STEP(1 0)
X1 in mid seg
X2 mid out seg r=2k c=0.5pF
.end
";
    let parsed = parse_circuit(deck)?;
    println!(
        "parsed deck: {} nodes, {} elements",
        parsed.circuit.node_count(),
        parsed.circuit.elements().len()
    );
    for (name, id) in parsed.node_names() {
        println!("  node {name:>6} -> n{}", id.index());
    }
    let settled = operating_point_at(&parsed.circuit, Time::from_seconds(1.0))?;
    let out = parsed.node("out").expect("the deck names this node");
    println!(
        "  settled V(out) = {} V (no DC path to ground pulls it down)",
        settled.node_voltage(out).volts()
    );

    // --- Unparse and round-trip ------------------------------------------
    let mut c = Circuit::new();
    let a = c.add_node();
    let b = c.add_node();
    c.add_voltage_source(a, c.ground(), SourceWaveform::unit_step())?;
    c.add_resistor(a, b, Resistance::from_ohms(120.0))?;
    let l1 = c.add_inductor(b, c.ground(), Inductance::from_nanohenries(2.0))?;
    let l2 = c.add_inductor(a, b, Inductance::from_nanohenries(1.0))?;
    c.add_mutual_inductor(l1, l2, 0.4)?;
    c.add_capacitor(b, c.ground(), Capacitance::from_femtofarads(250.0))?;
    let text = circuit_to_deck(&c);
    println!("\nwriter output for a programmatic RLC circuit:\n{text}");
    let back = parse_circuit(&text)?;
    println!("round trip exact: {}", back.circuit == c);

    // --- Diagnostics ------------------------------------------------------
    let err = parse_circuit("R1 in out 1k\nC1 out 0 1pH\nL1 out 0 bogus\n").unwrap_err();
    println!("\na malformed card is rejected with position and hint:\n{err}\n");

    // --- The SRAM scaling workload ---------------------------------------
    println!("SRAM read delay through the deck-lowering path (far-corner cell):");
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>8}",
        "array", "unknowns", "read delay", "rise time", "kernel"
    );
    for n in [4usize, 8, 16, 32] {
        let spec = SramArraySpec::new(n, n);
        let report = measure_sram_read(&spec, SolverBackend::Auto)?;
        println!(
            "{:>7}x{:<2} {:>9} {:>12} {:>12} {:>8?}",
            n,
            n,
            report.unknowns,
            report.delay_50.to_string(),
            report.rise_time.to_string(),
            report.backend,
        );
    }
    Ok(())
}
