//! One operating point, four views of the same step response.
//!
//! Takes a single Table-1-style operating point and compares:
//!
//! * the transient MNA ladder simulation (the AS/X substitute),
//! * the exact Laplace-domain two-port response inverted numerically,
//! * the two-pole analytic response built from the exact moments,
//! * the closed-form 50% delay of Eq. (9).
//!
//! Printing a few waveform samples makes the agreement (and the ringing of the
//! underdamped case) visible directly in the terminal.
//!
//! Run with `cargo run --release --example simulator_vs_model`.

use rlckit::circuit::mna::MnaSystem;
use rlckit::circuit::transient::{run_transient, TransientOptions};
use rlckit::model::response::TwoPoleResponse;
use rlckit::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // RT = 0.5, CT = 0.5, Lt = 10 nH: an underdamped, inductance-visible point.
    let total_resistance = Resistance::from_ohms(1000.0);
    let total_inductance = Inductance::from_nanohenries(10.0);
    let total_capacitance = Capacitance::from_picofarads(1.0);
    let driver = Resistance::from_ohms(500.0);
    let receiver = Capacitance::from_picofarads(0.5);

    let line = DistributedLine::from_totals(
        total_resistance,
        total_inductance,
        total_capacitance,
        Length::from_millimeters(10.0),
    )?;
    let driven = DrivenLine::new(line, driver, receiver)?;
    let load = GateRlcLoad::from_driven_line(&driven)?;
    let two_pole = TwoPoleResponse::of(&load);

    // Transient simulation of the 60-segment ladder.
    let spec = line.to_ladder_spec(driver, receiver, 60, Voltage::from_volts(1.0));
    let ladder = spec.build()?;
    let options = TransientOptions::new(spec.suggested_stop_time(), spec.suggested_timestep());
    let result = run_transient(&ladder.circuit, &options)?;
    let wave = result.node_voltage(ladder.output);

    println!("operating point: Rt = 1 kΩ, Lt = 10 nH, Ct = 1 pF, Rtr = 500 Ω, CL = 0.5 pF");
    println!("zeta = {:.3}  (underdamped < 1 < overdamped)", load.zeta());

    // The solve path the simulator picked: the ladder's MNA system has a
    // constant bandwidth under the reverse Cuthill–McKee ordering, so the
    // backend dispatch selects the banded O(n·b²) kernel automatically.
    let mna = MnaSystem::build(&ladder.circuit)?;
    let (kl, ku) = mna.bandwidth();
    println!(
        "MNA system: {} unknowns, RCM bandwidth (kl = {kl}, ku = {ku}) → {} solver\n",
        mna.dim(),
        result.backend().name(),
    );

    println!("{:>10} {:>12} {:>12} {:>12}", "t (ps)", "ladder sim", "exact 2-port", "2-pole model");
    let horizon = spec.suggested_stop_time().seconds();
    for i in 1..=12 {
        let t = Time::from_seconds(horizon * i as f64 / 12.0);
        let sim = wave.value_at(t)?.volts();
        let exact = driven.step_response(t);
        let pade = two_pole.step_response(t);
        println!("{:>10.1} {:>12.4} {:>12.4} {:>12.4}", t.picoseconds(), sim, exact, pade);
    }

    let sim_delay = wave.delay_50(Voltage::from_volts(1.0))?;
    let exact_delay = driven.delay_50()?;
    let pade_delay = two_pole.delay_50()?;
    let closed_form = propagation_delay(&load);

    println!("\n50% propagation delay:");
    println!("  transient ladder simulation : {sim_delay}");
    println!("  exact Laplace-domain 2-port : {exact_delay}");
    println!("  two-pole analytic response  : {pade_delay}");
    println!("  closed form (Eq. 9)         : {closed_form}");
    println!("\nEq. (9) vs simulation error: {:.2}%", closed_form.percent_error_vs(sim_delay));
    Ok(())
}
