//! Delay budgeting for a global bus: quadratic RC scaling versus linear RLC scaling.
//!
//! Sweeps the length of a global bus wire and prints the 50% delay predicted by
//! the RC-only Sakurai model and by the inductance-aware closed form, plus the
//! length window in which inductance must be modelled. The RC prediction grows
//! quadratically with length while the true delay approaches linear
//! (time-of-flight) growth — the Section II headline result, applied to a
//! floorplanning-style budget table.
//!
//! Run with `cargo run --release --example bus_delay_budget`.

use rlckit::interconnect::merit::SignificanceWindow;
use rlckit::model::rc_models::sakurai_delay;
use rlckit::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::quarter_micron();
    let driver_size = 120.0;
    let driver = tech.buffer_resistance(driver_size)?;
    let receiver = tech.buffer_capacitance(driver_size)?;
    let edge = Time::from_picoseconds(60.0);

    // The significance window depends only on the wire class and the edge rate.
    let reference = tech.global_wire.line(Length::from_millimeters(1.0))?;
    let window = SignificanceWindow::for_line(&reference, edge);
    println!(
        "inductance matters for global wires between {:.2} mm and {:.2} mm at a {} edge\n",
        window.min_length.millimeters(),
        window.max_length.millimeters(),
        edge
    );

    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12}",
        "length", "RC (Sakurai)", "RLC (Eq. 9)", "RC error", "regime"
    );
    for mm in [1.0, 2.0, 5.0, 8.0, 12.0, 16.0, 20.0, 30.0, 40.0] {
        let length = Length::from_millimeters(mm);
        let line = tech.global_wire.line(length)?;
        let load = GateRlcLoad::from_line(&line, driver, receiver)?;
        let rc = sakurai_delay(&load);
        let rlc = propagation_delay(&load);
        let err = 100.0 * (rc.seconds() - rlc.seconds()) / rlc.seconds();
        let regime = assess_inductance(&line, edge);
        println!(
            "{:>6.1}mm {:>14} {:>14} {:>9.1}% {:>12}",
            mm,
            rc.to_string(),
            rlc.to_string(),
            err,
            format!("{regime:?}")
        );
    }

    println!(
        "\nnegative error = RC underestimates (short, inductive) ; positive = RC overestimates."
    );
    Ok(())
}
