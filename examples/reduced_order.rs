//! Reduced-order models: the paper's two-pole idea taken to order `q`.
//!
//! Builds the paper's driven RLC line as a finely segmented ladder, then
//! evaluates its 50% delay three ways:
//!
//! 1. full transient simulation (the reference, and the slow path),
//! 2. an order-`q` PRIMA Krylov reduction — closed-form sum-of-exponentials
//!    step response, no time-stepping,
//! 3. the AWE Padé route, whose `q = 3` denominator lands on the paper's
//!    closed-form `b₁, b₂, b₃` moments.
//!
//! Finishes with a coupled 2-line bus: one MIMO reduction answers every
//! switching pattern by superposition.
//!
//! Run with `cargo run --release --example reduced_order`.

use std::time::Instant;

use rlckit::circuit::ladder::LadderSpec;
use rlckit::circuit::state_space::DescriptorStateSpace;
use rlckit::circuit::SolverBackend;
use rlckit::interconnect::moments::TransferMoments;
use rlckit::prelude::*;
use rlckit::reduce::awe::{moments_of, pade_denominator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 1 values: R = 500 Ω, L = 10 nH, C = 1 pF behind a
    // 250 Ω driver into a 100 fF receiver.
    let mut spec = LadderSpec::new(
        Resistance::from_ohms(500.0),
        Inductance::from_nanohenries(10.0),
        Capacitance::from_picofarads(1.0),
        Resistance::from_ohms(250.0),
        Capacitance::from_femtofarads(100.0),
    );
    spec.segments = 200;
    println!("ladder: {} pi-sections, {} MNA unknowns\n", spec.segments, 3 * spec.segments + 3);

    // 1. Reference: full transient simulation.
    let t0 = Instant::now();
    let full = measure_step_delay(&spec)?;
    let t_full = t0.elapsed();
    println!(
        "transient simulation: delay_50 = {}  ({:.1} ms)",
        full.delay_50,
        t_full.as_secs_f64() * 1e3
    );

    // 2. PRIMA reduction: q solves against G, then closed-form metrics.
    for q in [2usize, 4, 8] {
        let t0 = Instant::now();
        let reduced = reduce_ladder(&spec, q, SolverBackend::Auto)?;
        let metrics = reduced.metrics()?;
        let t_red = t0.elapsed();
        let err = 100.0 * (metrics.delay_50.seconds() - full.delay_50.seconds()).abs()
            / full.delay_50.seconds();
        println!(
            "PRIMA q = {q:>2}: delay_50 = {}  err {err:.3}%  overshoot {:.1}%  settle {}  ({:.2} ms)",
            metrics.delay_50,
            metrics.overshoot_percent,
            metrics.settling_time,
            t_red.as_secs_f64() * 1e3
        );
    }

    // 3. The AWE q = 3 denominator vs the closed-form moments of Eq. (7).
    let line = spec.build()?;
    let ss = DescriptorStateSpace::new(&line.circuit, &[line.source], &[line.output])?;
    let m = moments_of(&ss, 0, 0, 4, SolverBackend::Auto)?;
    let d = pade_denominator(&m, 3)?;
    let closed = TransferMoments::from_impedances(500.0, 10e-9, 1e-12, 250.0, 100e-15);
    println!("\nAWE [0/3] denominator vs TransferMoments closed forms:");
    for (k, (got, want)) in
        d.coeffs()[1..].iter().zip([closed.b1, closed.b2, closed.b3].iter()).enumerate()
    {
        println!("  b{} = {got:.6e}  (closed form {want:.6e})", k + 1);
    }

    // 4. A coupled 2-line bus: one reduction, every pattern by superposition.
    let bus = UniformBusSpec {
        lines: 2,
        resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
        self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
        ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
        coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
        inductive_coupling: vec![0.35],
        length: Length::from_millimeters(3.0),
    }
    .build()?;
    let drive = BusDrive::new(
        Resistance::from_ohms(120.0),
        Capacitance::from_femtofarads(100.0),
        Voltage::from_volts(1.8),
    )
    .with_sections(16);
    let reduced = reduce_bus(&bus, &drive, 16, SolverBackend::Auto)?;
    println!("\ncoupled 2-line bus, one order-{} MIMO reduction:", reduced.order());
    let even = reduced.victim_delay_50(0, &SwitchingPattern::even_mode(2)?)?;
    let odd = reduced.victim_delay_50(0, &SwitchingPattern::odd_mode(0, 2)?)?;
    let noise = reduced.victim_peak_noise(0, &SwitchingPattern::victim_quiet(0, 2)?)?;
    println!("  even-mode delay: {even}");
    println!("  odd-mode delay:  {odd}  (push-out {})", odd - even);
    println!("  quiet-victim coupled noise peak: {noise}");
    Ok(())
}
