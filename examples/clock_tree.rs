//! A branching clock-distribution net and the solver kernel it lands on.
//!
//! Builds a symmetric routing tree in the paper's 0.25 µm technology —
//! every root-to-sink path a 20 mm wide global wire — simulates it once
//! with the transient solver and prints the per-sink 50% delays, the sink
//! skew and the overshoot; then applies the paper's RLC repeater closed
//! forms per root-to-sink path and compares the worst-sink delay against
//! the inductance-blind Bakoglu design. Finally it widens the net into a
//! 24-tap spine: narrow trees stay narrow-banded under reverse
//! Cuthill–McKee and keep the banded kernel, but wide fan-out defeats band
//! storage and routes to the sparse (minimum-degree Gilbert–Peierls)
//! backend automatically.
//!
//! Run with `cargo run --release --example clock_tree`.

use rlckit::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::quarter_micron();
    let driver_size = 100.0;
    let path = tech.global_wire.line(Length::from_millimeters(20.0))?;
    let tree = RoutingTree::symmetric(&path, 3, 2, tech.buffer_capacitance(driver_size)?)?;

    println!(
        "symmetric clock tree in {}: {} branches, {} sinks, {:.1} mm of wire",
        tech.name,
        tree.len(),
        tree.sinks().len(),
        tree.total_length().millimeters(),
    );

    // One transient simulation covers every sink.
    let spec = tree.to_tree_spec(tech.buffer_resistance(driver_size)?, tech.supply, 8)?;
    let report = measure_tree_delays(&spec)?;
    println!("solver backend: {}", report.backend.name());
    for sink in &report.sinks {
        println!(
            "  sink at branch {:>2}: delay {:>8.1} ps, rise {:>8.1} ps, overshoot {:>5.1} %",
            sink.branch,
            sink.delay_50.picoseconds(),
            sink.rise_time.picoseconds(),
            sink.overshoot_percent,
        );
    }
    println!(
        "worst sink: branch {} at {:.1} ps; skew {:.2} ps",
        report.worst_sink().branch,
        report.worst_sink().delay_50.picoseconds(),
        report.sink_spread().picoseconds(),
    );

    // Per-path repeater insertion: the paper's closed forms on each
    // root-to-sink path, judged by the worst sink.
    let repeaters = evaluate_tree_repeaters(&tree, &tech)?;
    let worst = repeaters.worst_sink();
    println!(
        "\nper-path repeaters (T_L/R = {:.2}): RLC optimum h = {:.1}, k = {:.1}",
        worst.t_l_over_r, worst.rlc.size, worst.rlc.sections,
    );
    println!(
        "worst-sink delay: RLC design {:.1} ps, RC (Bakoglu) design {:.1} ps (+{:.1} %)",
        repeaters.worst_sink_delay_rlc().picoseconds(),
        repeaters.worst_sink_delay_rc().picoseconds(),
        repeaters.rc_design_penalty_percent(),
    );

    // Fan-out decides the kernel: a 24-tap spine has no narrow band under
    // any ordering, so the same call now lands on the sparse backend.
    let spine = RoutingTree::symmetric(&path, 2, 24, tech.buffer_capacitance(driver_size)?)?;
    let spec = spine.to_tree_spec(tech.buffer_resistance(driver_size)?, tech.supply, 8)?;
    let wide = measure_tree_delays(&spec)?;
    println!(
        "\n24-tap spine ({} sinks): solver backend {}, worst sink {:.1} ps, skew {:.2} ps",
        wide.sinks.len(),
        wide.backend.name(),
        wide.worst_sink().delay_50.picoseconds(),
        wide.sink_spread().picoseconds(),
    );
    Ok(())
}
