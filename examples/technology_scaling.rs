//! How the importance of inductance grows as technologies scale — now run
//! through the sweep engine.
//!
//! The paper's closing argument: `T_{L/R} = sqrt((Lt/Rt)/(R0·C0))` grows as the
//! intrinsic gate delay `R0·C0` shrinks, so each new technology generation pays
//! a larger penalty for ignoring inductance. This example declares the
//! technology roadmap as a sweep axis, evaluates every node in parallel with
//! the repeater-optimum evaluator, and reports the delay/area/energy penalties
//! of an RC-only repeater methodology for the same physical wire.
//!
//! Run with `cargo run --release --example technology_scaling [-- --csv]`.

use rlckit::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let length_mm = 30.0;
    let base = Scenario { line_length_mm: length_mm, ..Scenario::default() };
    let spec = SweepSpec::new(base)
        .axis(Axis::new("node", TechnologyNode::ROADMAP.map(Param::Technology)));
    let result = run_sweep(&spec, &RepeaterOptimumEvaluator, &SweepOptions::default())?;

    if std::env::args().any(|a| a == "--csv") {
        print!("{}", CsvSink.render(&result));
        return Ok(());
    }

    println!(
        "fixed workload: a {length_mm} mm wide global wire, re-evaluated in each technology\n"
    );
    println!(
        "{:<10} {:>10} {:>8} {:>16} {:>16} {:>16}",
        "node", "R0*C0", "T_L/R", "delay penalty", "area penalty", "energy penalty"
    );
    for (row, node) in result.rows.iter().zip(TechnologyNode::ROADMAP) {
        let values = row.values.as_ref().map_err(|e| e.clone())?;
        // Columns of RepeaterOptimumEvaluator: t_l_over_r is 0, the three
        // penalties are the last three.
        println!(
            "{:<10} {:>10} {:>8.2} {:>15.1}% {:>15.1}% {:>15.1}%",
            row.labels[0],
            node.technology().buffer_time_constant().to_string(),
            values[0],
            values[7],
            values[8],
            values[9],
        );
    }

    println!("\nthe penalties grow monotonically as R0*C0 shrinks — the paper's scaling claim.");
    Ok(())
}
