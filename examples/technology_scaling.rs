//! How the importance of inductance grows as technologies scale.
//!
//! The paper's closing argument: `T_{L/R} = sqrt((Lt/Rt)/(R0·C0))` grows as the
//! intrinsic gate delay `R0·C0` shrinks, so each new technology generation pays
//! a larger penalty for ignoring inductance. This example sweeps the built-in
//! technology roadmap and reports, for the same physical wire, the delay and
//! area penalties of an RC-only repeater methodology.
//!
//! Run with `cargo run --release --example technology_scaling`.

use rlckit::prelude::*;
use rlckit::repeater::comparison;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let length = Length::from_millimeters(30.0);
    println!("fixed workload: a {length} wide global wire, re-evaluated in each technology\n");
    println!(
        "{:<10} {:>10} {:>8} {:>16} {:>16} {:>16}",
        "node", "R0*C0", "T_L/R", "delay penalty", "area penalty", "energy penalty"
    );

    for tech in Technology::roadmap() {
        let line = tech.global_wire.line(length)?;
        let problem = RepeaterProblem::for_line(&line, &tech)?;
        let cmp = comparison::compare(&problem)?;
        println!(
            "{:<10} {:>10} {:>8.2} {:>15.1}% {:>15.1}% {:>15.1}%",
            tech.name,
            tech.buffer_time_constant().to_string(),
            cmp.t_l_over_r,
            cmp.delay_increase_percent,
            cmp.area_increase_percent,
            cmp.energy_increase_percent,
        );
    }

    println!("\nthe penalties grow monotonically as R0*C0 shrinks — the paper's scaling claim.");
    Ok(())
}
