//! Crosstalk on a 3-wire 0.18 µm global bus, with and without shields.
//!
//! Sweeps the bus length and prints, for the middle (victim) wire: the
//! odd-mode and even-mode 50% delays against the isolated-line baseline, the
//! odd/even delay spread, and the peak noise coupled onto a quiet victim —
//! first on the bare bus, then with grounded shields interleaved between the
//! signal wires. The qualitative crosstalk result: odd-mode switching is
//! slower and even-mode faster than the isolated line, and shields buy the
//! noise down at the cost of routing tracks.
//!
//! Run with `cargo run --release --example bus_crosstalk`.

use rlckit::coupling::shield::evaluate_shielding;
use rlckit::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::node_180nm();
    let driver_size = 40.0;
    let drive = BusDrive::new(
        tech.buffer_resistance(driver_size)?,
        tech.buffer_capacitance(driver_size)?,
        tech.supply,
    )
    .with_sections(16);

    println!(
        "3-wire {} global bus, {}x driver (Rtr = {}, CL = {})\n",
        tech.name, driver_size, drive.driver_resistance, drive.load_capacitance
    );
    println!(
        "{:>8} {:>9} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "length", "shields", "isolated", "odd mode", "even mode", "spread", "noise"
    );

    for mm in [2.0, 4.0, 6.0, 8.0, 10.0] {
        let spec = UniformBusSpec {
            lines: 3,
            resistance: tech.global_wire.resistance,
            self_inductance: tech.global_wire.inductance,
            ground_capacitance: tech.global_wire.capacitance,
            // A dense global bus: neighbour coupling about half the ground
            // capacitance, inductive coupling falling off with separation.
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            inductive_coupling: vec![0.35, 0.15],
            length: Length::from_millimeters(mm),
        };
        let eval = evaluate_shielding(&spec, 1, &drive)?;
        for (label, m) in [("no", &eval.unshielded), ("yes", &eval.shielded)] {
            println!(
                "{:>6.1}mm {:>9} {:>10} {:>10} {:>10} {:>7.1}% {:>8.0}mV",
                mm,
                label,
                m.isolated_delay.to_string(),
                m.odd_mode_delay.to_string(),
                m.even_mode_delay.to_string(),
                100.0 * m.delay_spread_fraction(),
                1e3 * m.victim_peak_noise.volts(),
            );
        }
        println!(
            "{:>17} noise ÷{:.1}, spread ÷{:.1}, track overhead +{:.0}%",
            "→ shields:",
            eval.noise_reduction(),
            eval.delay_spread_reduction(),
            100.0 * eval.track_overhead
        );
    }

    println!(
        "\nodd mode (neighbours switch against the victim) is the slow corner; \
         even mode (bus switches together) beats the isolated line."
    );
    Ok(())
}
