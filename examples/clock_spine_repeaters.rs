//! Repeater insertion for a long clock spine: RC flow versus RLC flow.
//!
//! The motivating workload of the paper's Section III: a wide, low-resistance
//! clock spine crossing a large die. An RC-only methodology (Bakoglu) inserts
//! far more repeaters than the inductance-aware design, paying in delay, area
//! and switching energy.
//!
//! Run with `cargo run --release --example clock_spine_repeaters`.

use rlckit::prelude::*;
use rlckit::repeater::comparison;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::quarter_micron();
    let spine = tech.global_wire.line(Length::from_millimeters(50.0))?;

    println!("clock spine: {} of {} global metal", spine.length(), tech.name);
    let problem = RepeaterProblem::for_line(&spine, &tech)?;
    println!("T_L/R = {:.2}\n", problem.t_l_over_r());

    let designer = RepeaterDesigner::new(&spine, &tech);
    println!(
        "{:<18} {:>9} {:>10} {:>12} {:>14} {:>14}",
        "strategy", "sections", "size (x)", "delay", "area (um^2)", "energy (fJ)"
    );
    for strategy in
        [DesignStrategy::RcClosedForm, DesignStrategy::RlcClosedForm, DesignStrategy::Numerical]
    {
        let d = designer.design(strategy)?;
        println!(
            "{:<18} {:>9} {:>10.1} {:>12} {:>14.1} {:>14.2}",
            format!("{strategy:?}"),
            d.sections,
            d.size,
            d.total_delay.to_string(),
            d.repeater_area.square_micrometers(),
            d.switching_energy.joules() * 1e15,
        );
    }

    // Continuous-variable comparison (the paper's Eqs. 16-18).
    let cmp = comparison::compare(&problem)?;
    println!("\ncontinuous-optimum comparison (RC design evaluated on the RLC line):");
    println!("  delay increase from ignoring inductance:  {:.1}%", cmp.delay_increase_percent);
    println!("  repeater area increase:                   {:.1}%", cmp.area_increase_percent);
    println!("  switching-energy increase:                {:.1}%", cmp.energy_increase_percent);
    println!(
        "  paper's closed-form area-increase estimate (Eq. 18): {:.0}%",
        comparison::area_increase_percent_closed_form(cmp.t_l_over_r)
    );
    Ok(())
}
