//! Profiling an analysis with the `rlckit-telemetry` collector.
//!
//! Enables the collector programmatically (the environment-variable route is
//! `RLCKIT_PROFILE=1`, see EXPERIMENTS.md), runs a transient simulation of a
//! 400-section RLC ladder and a small cached parameter sweep twice, then
//! prints the collected span tree, counters and histograms as a summary
//! table and writes the same data to `PROFILE_example.json`.
//!
//! Run with `cargo run --release --example profile`.

use rlckit::prelude::*;
use rlckit::telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The collector is an RAII guard: profiling is active until it drops,
    // and every instrumentation site upstream of this call costs a single
    // relaxed atomic load while it is off.
    let collector = Collector::enable();

    // A transient run: exercises MNA assembly, the solver kernels and the
    // stepping loop (spans "mna.build", "transient.run/transient.stepping",
    // the per-step histogram and the "transient.steps" counter).
    let tech = Technology::quarter_micron();
    let line = tech.global_wire.line(Length::from_millimeters(10.0))?;
    let mut spec = LadderSpec::new(
        line.total_resistance(),
        line.total_inductance(),
        line.total_capacitance(),
        tech.buffer_resistance(100.0)?,
        tech.buffer_capacitance(100.0)?,
    );
    spec.segments = 400;
    let delay = measure_step_delay(&spec)?;
    println!("400-section ladder 50% delay: {}\n", delay.delay_50);

    // A parameter sweep, twice against one cache: the first pass computes
    // every cell ("sweep.cache_misses"), the replay hits the content-hash
    // cache for all of them ("sweep.cache_hits").
    let sweep = SweepSpec::new(Scenario::default())
        .axis(Axis::new("length_mm", [2.0, 5.0, 10.0].map(Param::LineLengthMm)))
        .axis(Axis::new("h", [50.0, 100.0].map(Param::DriverSize)));
    let mut cache = SweepCache::in_memory();
    let opts = SweepOptions::with_threads(2);
    run_sweep_cached(&sweep, &DelayModelEvaluator, &opts, &mut cache)?;
    run_sweep_cached(&sweep, &DelayModelEvaluator, &opts, &mut cache)?;

    // Freeze and render. The snapshot is deterministic (sorted by name), so
    // the JSON is diffable across runs of the same workload.
    let snapshot = Collector::snapshot();
    print!("{}", snapshot.summary());
    let path = snapshot.write("example", std::path::Path::new("."))?;
    println!("\nfull profile written to {}", path.display());

    let hits = snapshot.counter("sweep.cache_hits").unwrap_or(0);
    let misses = snapshot.counter("sweep.cache_misses").unwrap_or(0);
    assert_eq!((hits, misses), (sweep.len() as u64, sweep.len() as u64));
    assert!(telemetry::enabled());
    drop(collector);
    Ok(())
}
