//! Integration test: the full repeater-insertion flow on physical wires.
//!
//! Exercises the path a user would follow — technology preset, wire class,
//! designer — and checks the paper's qualitative and quantitative claims:
//! the closed form tracks the numerical optimum, the RC design is never
//! better and wastes area, and a single section of the chosen design is
//! accurately described by Eq. (9) when checked against the simulator.

use rlckit::circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit::prelude::*;
use rlckit::repeater::comparison::{area_increase_percent_closed_form, compare};
use rlckit::repeater::numerical::optimize;

#[test]
fn designer_produces_consistent_integer_designs() {
    let tech = Technology::quarter_micron();
    for (wire, mm) in
        [(tech.global_wire, 50.0), (tech.intermediate_wire, 10.0), (tech.intermediate_wire, 30.0)]
    {
        let line = wire.line(Length::from_millimeters(mm)).expect("valid line");
        let designer = RepeaterDesigner::new(&line, &tech);
        let rlc = designer.design(DesignStrategy::RlcClosedForm).expect("design");
        let numerical = designer.design(DesignStrategy::Numerical).expect("design");
        let rc = designer.design(DesignStrategy::RcClosedForm).expect("design");

        assert!(rlc.sections >= 1 && rc.sections >= 1);
        assert!(rlc.size > 1.0);
        // The closed form and the numerical optimum agree closely after rounding.
        let diff = (rlc.total_delay.seconds() - numerical.total_delay.seconds()).abs()
            / numerical.total_delay.seconds();
        assert!(diff < 0.03, "{mm} mm wire: closed form vs numerical differ by {diff}");
        // The RC flow is never faster and never smaller.
        assert!(rc.total_delay.seconds() >= rlc.total_delay.seconds() * 0.995);
        assert!(rc.repeater_area.square_meters() >= rlc.repeater_area.square_meters() * 0.999);
        // Section lengths partition the wire exactly.
        assert!(
            (rlc.section_length.meters() * rlc.sections as f64 - line.length().meters()).abs()
                < 1e-12
        );
    }
}

#[test]
fn closed_form_repeater_design_tracks_numerical_optimum_over_t_sweep() {
    // The Fig. 4 claim in test form: over a T_L/R sweep the closed-form design's
    // total delay stays within a fraction of a per cent of the numerical optimum.
    let tech = Technology::quarter_micron();
    let rt = 250.0;
    let ct = 15e-12;
    let tau = tech.buffer_time_constant().seconds();
    for t_l_over_r in [0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0] {
        let lt = t_l_over_r * t_l_over_r * tau * rt;
        let problem = RepeaterProblem::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            tech.min_buffer_resistance,
            tech.min_buffer_capacitance,
            Area::from_square_micrometers(4.0),
            tech.supply,
        )
        .expect("valid problem");
        let closed = problem.rlc_optimum();
        let numerical = optimize(&problem).expect("numerical optimum");
        let excess = (closed.total_delay.seconds() - numerical.design.total_delay.seconds())
            / numerical.design.total_delay.seconds();
        assert!(excess.abs() < 0.01, "T_L/R = {t_l_over_r}: closed-form delay excess {excess}");
    }
}

#[test]
fn ignoring_inductance_costs_delay_and_area_as_the_paper_quantifies() {
    let tech = Technology::quarter_micron();
    let rt = 250.0;
    let ct = 15e-12;
    let tau = tech.buffer_time_constant().seconds();

    // T_L/R = 5, the value the paper calls common for wide 0.25 µm wires.
    let lt = 25.0 * tau * rt;
    let problem = RepeaterProblem::new(
        Resistance::from_ohms(rt),
        Inductance::from_henries(lt),
        Capacitance::from_farads(ct),
        tech.min_buffer_resistance,
        tech.min_buffer_capacitance,
        Area::from_square_micrometers(4.0),
        tech.supply,
    )
    .expect("valid problem");
    let cmp = compare(&problem).expect("comparison");
    assert!((cmp.t_l_over_r - 5.0).abs() < 1e-9);
    // Delay penalty in the paper's range (≈20% at T = 5).
    assert!(
        cmp.delay_increase_percent > 10.0 && cmp.delay_increase_percent < 35.0,
        "delay penalty at T_L/R = 5 is {:.1}%",
        cmp.delay_increase_percent
    );
    // Area penalty close to the paper's 435% closed-form value.
    let closed_form = area_increase_percent_closed_form(5.0);
    assert!((closed_form - 435.0).abs() < 15.0);
    assert!(
        cmp.area_increase_percent > 200.0,
        "exact area penalty at T_L/R = 5 is only {:.0}%",
        cmp.area_increase_percent
    );
    // And the energy penalty is substantial too (the paper's power argument).
    assert!(cmp.energy_increase_percent > 20.0);
}

#[test]
fn one_section_of_the_chosen_design_is_accurately_modelled() {
    // Close the loop with the simulator: take the RLC-optimal design of a long
    // intermediate wire, carve out one section, and check Eq. (9) against the
    // transient simulation of that section.
    let tech = Technology::quarter_micron();
    let line = tech.intermediate_wire.line(Length::from_millimeters(20.0)).expect("valid line");
    let problem = RepeaterProblem::for_line(&line, &tech).expect("valid problem");
    let design = problem.rlc_optimum();
    let section =
        problem.section_load(design.size, design.sections.max(1.0)).expect("valid section");

    let model = propagation_delay(&section);
    let spec = LadderSpec {
        total_resistance: section.total_resistance(),
        total_inductance: section.total_inductance(),
        total_capacitance: section.total_capacitance(),
        segments: 40,
        style: SegmentStyle::Pi,
        driver_resistance: section.driver_resistance(),
        load_capacitance: section.load_capacitance(),
        supply: Voltage::from_volts(1.0),
    };
    let sim = measure_step_delay(&spec).expect("simulation runs");
    let err = model.percent_error_vs(sim.delay_50);
    assert!(err < 7.0, "section delay model error {err:.2}%");
}
