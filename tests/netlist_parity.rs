//! Differential frontend tests: the same circuit reached through deck text
//! and through the programmatic builders must be indistinguishable.
//!
//! Two kinds of parity are exercised, both to 1e-12 across the dense, banded
//! and sparse solver backends on DC, AC and transient analyses:
//!
//! * **writer parity** — the ladder, coupled-bus and routing-tree workloads
//!   are unparsed with [`circuit_to_deck`] and re-lowered; the frontend must
//!   hand the solvers the *identical* circuit, and every analysis must agree;
//! * **authorship parity** — a hand-written deck (hierarchical, with
//!   parameter overrides) against an independently hand-built circuit, where
//!   agreement is on the physics (probed voltages), not on representation.

use rlckit::circuit::ac::solve_at_with;
use rlckit::circuit::dc::operating_point_of;
use rlckit::circuit::mna::MnaSystem;
use rlckit::circuit::transient::{run_transient, TransientOptions};
use rlckit::circuit::tree::{TreeBranch, TreeSpec};
use rlckit::circuit::{Circuit, NodeId, SolverBackend, SourceId, SourceWaveform};
use rlckit::coupling::bus::UniformBusSpec;
use rlckit::coupling::netlist::{build_bus_circuit, BusDrive};
use rlckit::coupling::scenario::SwitchingPattern;
use rlckit::netlist::{circuit_to_deck, parse_circuit};
use rlckit::numeric::Complex;
use rlckit::prelude::*;

const BACKENDS: [SolverBackend; 3] =
    [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse];

const TOL: f64 = 1e-12;

/// Asserts every analysis agrees between the two circuits on every backend.
///
/// `source` and `probe` are valid for both circuits (writer round trips
/// preserve identifiers exactly).
fn assert_analyses_agree(
    a: &Circuit,
    b: &Circuit,
    source: SourceId,
    probe: NodeId,
    horizon: Time,
    context: &str,
) {
    let mna_a = MnaSystem::build(a).expect("circuit assembles");
    let mna_b = MnaSystem::build(b).expect("circuit assembles");
    for backend in BACKENDS {
        // DC: the full state vector, not just the probe.
        let t = Time::from_picoseconds(5.0);
        let dc_a = operating_point_of(&mna_a, t, backend).expect("DC solves");
        let dc_b = operating_point_of(&mna_b, t, backend).expect("DC solves");
        assert_eq!(dc_a.state().len(), dc_b.state().len(), "{context}: {backend:?} DC dim");
        for (i, (x, y)) in dc_a.state().iter().zip(dc_b.state().iter()).enumerate() {
            assert!(
                (x - y).abs() <= TOL * x.abs().max(1.0),
                "{context}: {backend:?} DC unknown {i}: {x} vs {y}"
            );
        }
        // AC: transfer to the probe at a few points up the jω axis.
        for ghz in [0.1, 1.0, 10.0] {
            let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * ghz * 1e9);
            let ac_a = solve_at_with(a, source, s, backend).expect("AC solves");
            let ac_b = solve_at_with(b, source, s, backend).expect("AC solves");
            let (va, vb) = (ac_a.node_voltage(probe), ac_b.node_voltage(probe));
            assert!(
                (va - vb).abs() <= TOL * va.abs().max(1.0),
                "{context}: {backend:?} AC at {ghz} GHz: {va:?} vs {vb:?}"
            );
        }
        // Transient: the whole probe waveform, sample by sample.
        let options = TransientOptions::new(horizon, horizon / 400.0).with_backend(backend);
        let tr_a = run_transient(a, &options).expect("transient runs");
        let tr_b = run_transient(b, &options).expect("transient runs");
        let (wa, wb) = (tr_a.node_voltage(probe), tr_b.node_voltage(probe));
        assert_eq!(wa.len(), wb.len(), "{context}: {backend:?} sample counts");
        for (i, (x, y)) in wa.values().iter().zip(wb.values().iter()).enumerate() {
            assert!(
                (x - y).abs() <= TOL * x.abs().max(1.0),
                "{context}: {backend:?} transient sample {i}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn ladder_deck_matches_programmatic_build() {
    let spec = LadderSpec {
        total_resistance: Resistance::from_ohms(400.0),
        total_inductance: Inductance::from_nanohenries(8.0),
        total_capacitance: Capacitance::from_picofarads(0.8),
        segments: 12,
        style: SegmentStyle::Pi,
        driver_resistance: Resistance::from_ohms(150.0),
        load_capacitance: Capacitance::from_femtofarads(40.0),
        supply: Voltage::from_volts(1.0),
    };
    let net = spec.build().expect("ladder builds");
    let parsed = parse_circuit(&circuit_to_deck(&net.circuit)).expect("deck lowers");
    assert_eq!(parsed.circuit, net.circuit, "the frontend must reproduce the ladder exactly");
    assert_eq!(parsed.source("V1"), Some(net.source), "the writer names the drive V1");
    assert_analyses_agree(
        &net.circuit,
        &parsed.circuit,
        net.source,
        net.output,
        Time::from_picoseconds(400.0),
        "ladder",
    );
}

#[test]
fn coupled_bus_deck_matches_programmatic_build() {
    let lines = 3;
    let spec = UniformBusSpec {
        lines,
        resistance: ResistancePerLength::from_ohms_per_millimeter(50.0),
        self_inductance: InductancePerLength::from_nanohenries_per_millimeter(1.0),
        ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
        coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.08),
        inductive_coupling: vec![0.35, 0.15],
        length: Length::from_millimeters(3.0),
    };
    let bus = spec.build().expect("bus builds");
    let drive = BusDrive::new(
        Resistance::from_ohms(120.0),
        Capacitance::from_femtofarads(25.0),
        Voltage::from_volts(1.0),
    )
    .with_sections(6);
    let pattern = SwitchingPattern::odd_mode(1, lines).expect("odd mode");
    let net = build_bus_circuit(&bus, &pattern, &drive).expect("bus netlist builds");
    let parsed = parse_circuit(&circuit_to_deck(&net.circuit)).expect("deck lowers");
    assert_eq!(parsed.circuit, net.circuit, "mutual inductances must survive the round trip");
    assert_analyses_agree(
        &net.circuit,
        &parsed.circuit,
        net.sources[1],
        net.outputs[1],
        Time::from_picoseconds(300.0),
        "coupled bus",
    );
}

#[test]
fn routing_tree_deck_matches_programmatic_build() {
    let mut spec = TreeSpec::new(Resistance::from_ohms(150.0));
    for i in 0..7 {
        spec.branches.push(TreeBranch {
            parent: if i == 0 { None } else { Some((i - 1) / 2) },
            total_resistance: Resistance::from_ohms(120.0),
            total_inductance: Inductance::from_nanohenries(2.0),
            total_capacitance: Capacitance::from_picofarads(0.2),
            segments: 3,
            sink_capacitance: Capacitance::from_femtofarads(15.0),
        });
    }
    let net = spec.build().expect("tree builds");
    let parsed = parse_circuit(&circuit_to_deck(&net.circuit)).expect("deck lowers");
    assert_eq!(parsed.circuit, net.circuit, "branch structure must survive the round trip");
    let probe = net.sinks.last().expect("tree has sinks").node;
    assert_analyses_agree(
        &net.circuit,
        &parsed.circuit,
        net.source,
        probe,
        Time::from_picoseconds(500.0),
        "routing tree",
    );
}

/// The authorship-parity case: the deck and the builder calls were written
/// separately (no writer involved), so this catches systematic lowering
/// errors that a pure round trip cannot — wrong value scaling, swapped
/// polarity, parameter-override mistakes.
#[test]
fn hand_written_deck_matches_hand_built_circuit() {
    let deck = "\
* two cascaded RC lumps built from one parameterized definition
.subckt lump a b r=100 c=50f
Rs a b {r}
Cs b 0 {c}
.ends
V1 in 0 STEP(1 0)
X1 in mid lump
X2 mid out lump r=250 c=0.2p
.end
";
    let parsed = parse_circuit(deck).expect("deck lowers");

    // The same network, built directly (node creation order need not match —
    // only the physics is compared).
    let mut c = Circuit::new();
    let input = c.add_node();
    let mid = c.add_node();
    let out = c.add_node();
    let gnd = c.ground();
    let source = c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
    c.add_resistor(input, mid, Resistance::from_ohms(100.0)).unwrap();
    c.add_capacitor(mid, gnd, Capacitance::from_femtofarads(50.0)).unwrap();
    c.add_resistor(mid, out, Resistance::from_ohms(250.0)).unwrap();
    c.add_capacitor(out, gnd, Capacitance::from_picofarads(0.2)).unwrap();

    let deck_out = parsed.node("out").expect("deck names the output");
    let deck_source = parsed.source("V1").expect("deck names the drive");
    let horizon = Time::from_nanoseconds(1.0);
    for backend in BACKENDS {
        let options = TransientOptions::new(horizon, horizon / 500.0).with_backend(backend);
        let deck_wave = run_transient(&parsed.circuit, &options).expect("deck transient");
        let built_wave = run_transient(&c, &options).expect("built transient");
        let dw = deck_wave.node_voltage(deck_out);
        let bw = built_wave.node_voltage(out);
        for (x, y) in dw.values().iter().zip(bw.values().iter()) {
            assert!((x - y).abs() <= TOL * x.abs().max(1.0), "{backend:?}: deck {x} vs built {y}");
        }
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * 1e9);
        let va = solve_at_with(&parsed.circuit, deck_source, s, backend).expect("AC solves");
        let vb = solve_at_with(&c, source, s, backend).expect("AC solves");
        let (va, vb) = (va.node_voltage(deck_out), vb.node_voltage(out));
        assert!((va - vb).abs() <= TOL * va.abs().max(1.0), "{backend:?}: AC {va:?} vs {vb:?}");
    }
}
