//! Integration test: closed form and transient simulator against the exact
//! Laplace-domain solution of the distributed line.
//!
//! The exact two-port transfer function (Eq. 1, no truncation) inverted
//! numerically is an independent reference: it contains no lumping error (the
//! ladder) and no curve-fitting error (Eq. 9). All three descriptions of the
//! same circuit must agree for driven, loaded lines.

use rlckit::circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit::prelude::*;

fn driven(rt: f64, lt: f64, ct: f64, rtr: f64, cl: f64) -> DrivenLine {
    let line = DistributedLine::from_totals(
        Resistance::from_ohms(rt),
        Inductance::from_henries(lt),
        Capacitance::from_farads(ct),
        Length::from_millimeters(10.0),
    )
    .expect("valid line");
    DrivenLine::new(line, Resistance::from_ohms(rtr), Capacitance::from_farads(cl))
        .expect("valid terminations")
}

#[test]
fn closed_form_matches_exact_laplace_solution() {
    // Driven, loaded lines across damping regimes (Rtr comparable to or larger
    // than Z0, as in the paper's Table 1).
    let cases = [
        (1000.0, 1e-7, 1e-12, 500.0, 0.5e-12),
        (1000.0, 1e-8, 1e-12, 500.0, 0.5e-12),
        (500.0, 1e-7, 1e-12, 500.0, 1e-12),
        (5000.0, 1e-6, 1e-12, 500.0, 0.1e-12),
        (2000.0, 1e-8, 1e-12, 1000.0, 0.2e-12),
    ];
    for &(rt, lt, ct, rtr, cl) in &cases {
        let exact = driven(rt, lt, ct, rtr, cl).delay_50().expect("exact delay");
        let load = GateRlcLoad::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            Resistance::from_ohms(rtr),
            Capacitance::from_farads(cl),
        )
        .expect("valid load");
        let model = propagation_delay(&load);
        let err = model.percent_error_vs(exact);
        assert!(
            err < 6.0,
            "Rt={rt} Lt={lt} Rtr={rtr} CL={cl}: Eq. (9) {} vs exact {} ({err:.2}%)",
            model,
            exact
        );
    }
}

#[test]
fn ladder_simulation_converges_to_the_exact_distributed_solution() {
    // The lumped-ladder simulator and the exact two-port describe the same
    // physics through completely different numerics; their agreement validates
    // using the simulator as the stand-in for AS/X.
    let cases = [
        (1000.0, 1e-8, 1e-12, 500.0, 0.5e-12),
        (500.0, 1e-7, 1e-12, 500.0, 1e-12),
        (2000.0, 1e-7, 1e-12, 500.0, 0.1e-12),
    ];
    for &(rt, lt, ct, rtr, cl) in &cases {
        let exact = driven(rt, lt, ct, rtr, cl).delay_50().expect("exact delay");
        let spec = LadderSpec {
            total_resistance: Resistance::from_ohms(rt),
            total_inductance: Inductance::from_henries(lt),
            total_capacitance: Capacitance::from_farads(ct),
            segments: 60,
            style: SegmentStyle::Pi,
            driver_resistance: Resistance::from_ohms(rtr),
            load_capacitance: Capacitance::from_farads(cl),
            supply: Voltage::from_volts(1.0),
        };
        let sim = measure_step_delay(&spec).expect("simulation runs");
        let err = sim.delay_50.percent_error_vs(exact);
        assert!(
            err < 3.0,
            "Rt={rt} Lt={lt}: ladder {} vs exact {} ({err:.2}%)",
            sim.delay_50,
            exact
        );
    }
}

#[test]
fn exact_step_response_and_two_pole_model_agree_at_mid_rise() {
    // The two-pole analytic model is built from the exact moments; in the
    // neighbourhood of the 50% crossing it should track the exact response.
    let d = driven(1000.0, 1e-8, 1e-12, 500.0, 0.5e-12);
    let load = GateRlcLoad::from_driven_line(&d).expect("valid load");
    let two_pole = rlckit::model::response::TwoPoleResponse::of(&load);
    let t50 = d.delay_50().expect("exact delay");
    for factor in [0.8, 1.0, 1.2] {
        let t = Time::from_seconds(t50.seconds() * factor);
        let exact = d.step_response(t);
        let pade = two_pole.step_response(t);
        assert!(
            (exact - pade).abs() < 0.12,
            "at {factor}·t50: exact {exact:.3} vs two-pole {pade:.3}"
        );
    }
}
