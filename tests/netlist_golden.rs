//! Golden-deck corpus tests: the committed `tests/decks/` corpus is a
//! contract. Well-formed decks must parse and lower to non-empty circuits;
//! every `bad_*.cir` deck carries a committed `.expected` diagnostic that the
//! parser must reproduce *byte for byte* — any drift in messages, positions
//! or hints fails here (and in CI's `corpus_check` gate) until deliberately
//! re-blessed with `cargo run -p rlckit-netlist --bin corpus_check -- --bless`.

use std::path::PathBuf;

use rlckit::netlist::{parse_circuit, ParseError};

fn corpus() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("decks");
    let mut decks: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("the corpus directory is committed")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "cir"))
        .collect();
    decks.sort();
    decks
}

#[test]
fn corpus_is_large_enough_to_mean_something() {
    let decks = corpus();
    let malformed = decks.iter().filter(|p| p.with_extension("expected").exists()).count();
    assert!(decks.len() >= 25, "corpus shrank to {} decks", decks.len());
    assert!(malformed >= 8, "corpus shrank to {malformed} malformed decks");
}

#[test]
fn well_formed_decks_parse_to_non_empty_circuits() {
    for deck in corpus() {
        if deck.with_extension("expected").exists() {
            continue;
        }
        let text = std::fs::read_to_string(&deck).expect("deck readable");
        let parsed =
            parse_circuit(&text).unwrap_or_else(|e| panic!("{} must parse:\n{e}", deck.display()));
        assert!(!parsed.circuit.is_empty(), "{} lowered to an empty circuit", deck.display());
    }
}

#[test]
fn malformed_decks_reproduce_their_blessed_diagnostics_exactly() {
    for deck in corpus() {
        let expected_path = deck.with_extension("expected");
        if !expected_path.exists() {
            continue;
        }
        let text = std::fs::read_to_string(&deck).expect("deck readable");
        let err: ParseError = parse_circuit(&text)
            .map(|_| panic!("{} must fail to parse", deck.display()))
            .unwrap_err();
        let want = std::fs::read_to_string(&expected_path).expect("expected file readable");
        let got = format!("{err}\n");
        assert_eq!(got, want, "{}: diagnostic drifted from its blessed form", deck.display());
        // The structured accessors agree with the rendered position.
        assert!(err.line() >= 1 && err.column() >= 1);
        assert!(
            want.contains(&format!("error at line {}, column {}:", err.line(), err.column())),
            "{}: display and accessors disagree",
            deck.display()
        );
    }
}
