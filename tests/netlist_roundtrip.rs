//! Property-based netlist frontend tests.
//!
//! * **Round-trip exactness** — for randomly composed circuits (all six
//!   element kinds, all five waveform shapes, unused nodes, wild value
//!   magnitudes), `Circuit → deck → Circuit` must reproduce the original
//!   *exactly*: equal circuits, equal MNA dimensions and bit-identical
//!   assembled sparse triplets. The writer must also be a fixed point
//!   (writing the reparsed circuit yields the same text).
//! * **Robustness** — random character-level mutations of valid decks
//!   (replacements, insertions, deletions, truncations, line duplications)
//!   must never panic the parser: every outcome is either a lowered circuit
//!   or a [`ParseError`] whose position points inside the mutated text.

use proptest::prelude::*;

use rlckit::circuit::mna::MnaSystem;
use rlckit::circuit::{Circuit, InductorId, SourceWaveform};
use rlckit::netlist::{circuit_to_deck, parse_circuit};
use rlckit::units::{Capacitance, Inductance, Resistance, Time, Voltage};

/// Non-ground nodes every random circuit starts with; descriptors may leave
/// some untouched, which exercises the writer's `.nodes` directive.
const POOL: usize = 5;

/// One element descriptor drawn by proptest: `(kind, plus, minus, value)`
/// selectors, each in `[0, 1)`.
type Descriptor = (f64, f64, f64, f64);

fn waveform(shape: usize, v: f64, t: f64) -> SourceWaveform {
    let level = Voltage::from_volts(v * 5.0 - 1.0);
    let delay = Time::from_seconds(1e-12 * (1.0 + t * 20.0));
    let width = Time::from_seconds(1e-12 * (2.0 + v * 50.0));
    match shape % 5 {
        0 => SourceWaveform::Dc { level },
        1 => SourceWaveform::Step { amplitude: level, delay },
        2 => SourceWaveform::Ramp { amplitude: level, delay, rise_time: width },
        3 => SourceWaveform::Pulse { amplitude: level, delay, edge_time: width, width },
        _ => SourceWaveform::PieceWiseLinear {
            points: vec![(delay, Voltage::ZERO), (delay + width, level)],
        },
    }
}

fn build_random(descriptors: &[Descriptor]) -> Circuit {
    let mut c = Circuit::new();
    let nodes: Vec<_> = (0..POOL).map(|_| c.add_node()).collect();
    let gnd = c.ground();
    let mut inductors: Vec<InductorId> = Vec::new();
    for &(kind, a, b, v) in descriptors {
        let plus = nodes[((a * POOL as f64) as usize).min(POOL - 1)];
        let pick = ((b * (POOL + 1) as f64) as usize).min(POOL);
        let minus = if pick < POOL { nodes[pick] } else { gnd };
        let minus = if minus == plus { gnd } else { minus };
        // Magnitudes span sixteen decades so the writer's shortest-f64
        // formatting sees both subnormal-ish and huge values.
        let mag = 10f64.powf(-13.0 + 16.0 * v);
        match (kind * 6.0) as usize % 6 {
            0 => {
                c.add_resistor(plus, minus, Resistance::from_ohms(mag * 1e3)).unwrap();
            }
            1 => {
                c.add_capacitor(plus, minus, Capacitance::from_farads(mag * 1e-3)).unwrap();
            }
            2 => {
                inductors.push(c.add_inductor(plus, minus, Inductance::from_henries(mag)).unwrap());
            }
            3 => {
                // A K card needs two distinct inductors in the circuit.
                if inductors.len() < 2 {
                    inductors
                        .push(c.add_inductor(plus, minus, Inductance::from_henries(mag)).unwrap());
                } else {
                    let i = ((a * inductors.len() as f64) as usize).min(inductors.len() - 1);
                    let j = ((b * inductors.len() as f64) as usize).min(inductors.len() - 1);
                    let j = if i == j { (j + 1) % inductors.len() } else { j };
                    let coupling = (2.0 * v - 1.0) * 0.95;
                    // Repeated K descriptors on one pair can push the
                    // cumulative coupling past ±1; rejected adds leave the
                    // circuit untouched, so just skip those draws.
                    let _ = c.add_mutual_inductor(inductors[i], inductors[j], coupling);
                }
            }
            4 => {
                let shape = (a * 5.0) as usize;
                c.add_voltage_source(plus, minus, waveform(shape, v, b)).unwrap();
            }
            _ => {
                let shape = (b * 5.0) as usize;
                c.add_current_source(plus, minus, waveform(shape, v, a)).unwrap();
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_circuits_round_trip_exactly(
        descriptors in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 14),
    ) {
        let original = build_random(&descriptors);
        let deck = circuit_to_deck(&original);
        let reparsed = parse_circuit(&deck)
            .unwrap_or_else(|e| panic!("writer output must parse:\n{e}\ndeck:\n{deck}"));
        prop_assert_eq!(&reparsed.circuit, &original, "circuits differ after a round trip");
        // The writer is a fixed point on its own output.
        prop_assert_eq!(circuit_to_deck(&reparsed.circuit), deck);

        // The assembled MNA triplets — pattern and values — are bit-identical.
        let mna_a = MnaSystem::build(&original).expect("original assembles");
        let mna_b = MnaSystem::build(&reparsed.circuit).expect("reparsed assembles");
        prop_assert_eq!(mna_a.dim(), mna_b.dim());
        let a = mna_a.assemble_csc_real(1.0, 1e10);
        let b = mna_b.assemble_csc_real(1.0, 1e10);
        prop_assert_eq!(a.nnz(), b.nnz());
        let ta: Vec<(usize, usize, f64)> = a.triplets().collect();
        let tb: Vec<(usize, usize, f64)> = b.triplets().collect();
        for (x, y) in ta.iter().zip(tb.iter()) {
            prop_assert!(x.0 == y.0 && x.1 == y.1, "sparsity patterns differ: {x:?} vs {y:?}");
            prop_assert!(x.2.to_bits() == y.2.to_bits(), "stamped values differ: {x:?} vs {y:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Robustness: no input — valid, corrupted or pathological — may panic the
// parser.
// ---------------------------------------------------------------------------

/// Valid seed decks covering the grammar's surface: hierarchy with
/// parameters, mutual inductance, every waveform, directives.
const SEEDS: [&str; 3] = [
    "* hierarchy and parameters\n\
     .subckt seg a b r=100 c=50f\n\
     Rs a b {r}\n\
     Cs b 0 {c}\n\
     .ends seg\n\
     V1 in 0 STEP(1 0)\n\
     X1 in mid seg\n\
     X2 mid out seg r=220 c=0.1p\n\
     .end\n",
    "* coupling and waveforms\n\
     .nodes a b cc\n\
     V1 a 0 PULSE(1 0 10p 2n)\n\
     I1 0 cc PWL(0 0 5p 1 20p 0.5)\n\
     R1 a b 50\n\
     L1 b 0 1n\n\
     L2 cc 0 1n\n\
     K1 L1 L2 -0.4\n\
     C1 b cc 10f\n\
     .end\n",
    "* continuations, comments, suffixes\n\
     V1 in 0\n\
     + RAMP(1.8 0\n\
     + 20p) ; slew-limited\n\
     R1 in out 2meg\n\
     C1 out 0 1.5pF\n\
     .end\n",
];

/// Characters the mutator splices in — separators, structure characters,
/// digits, multi-byte text — everything likely to confuse a lexer.
const PALETTE: [char; 18] =
    ['\0', '\n', '+', '.', '(', ')', '=', '*', ';', '{', '}', 'k', 'x', '9', '-', ' ', '\t', 'µ'];

fn mutate(text: &str, ops: &[(f64, f64, f64)]) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    for &(op, pos, ch) in ops {
        if chars.is_empty() {
            break;
        }
        let at = ((pos * chars.len() as f64) as usize).min(chars.len() - 1);
        let c = PALETTE[((ch * PALETTE.len() as f64) as usize).min(PALETTE.len() - 1)];
        match (op * 5.0) as usize % 5 {
            0 => chars[at] = c,
            1 => chars.insert(at, c),
            2 => {
                chars.remove(at);
            }
            3 => chars.truncate(at),
            4 => {
                // Duplicate the line containing `at` (stresses duplicate-name
                // and double-directive paths).
                let start = chars[..at].iter().rposition(|&c| c == '\n').map_or(0, |i| i + 1);
                let end =
                    chars[at..].iter().position(|&c| c == '\n').map_or(chars.len(), |i| at + i);
                let line: Vec<char> = chars[start..end].to_vec();
                let mut dup = vec!['\n'];
                dup.extend(line);
                chars.splice(end..end, dup);
            }
            _ => unreachable!(),
        }
    }
    chars.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mutated_decks_never_panic_and_errors_point_into_the_text(
        seed in 0.0f64..1.0,
        ops in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 6),
    ) {
        let base = SEEDS[((seed * SEEDS.len() as f64) as usize).min(SEEDS.len() - 1)];
        let mutated = mutate(base, &ops);
        match parse_circuit(&mutated) {
            Ok(parsed) => prop_assert!(parsed.circuit.node_count() >= 1),
            Err(e) => {
                let lines = mutated.lines().count().max(1);
                prop_assert!(e.line() >= 1, "error line must be 1-based");
                prop_assert!(
                    e.line() <= lines + 1,
                    "error line {} beyond the {lines}-line deck:\n{mutated:?}",
                    e.line()
                );
                prop_assert!(e.column() >= 1, "error column must be 1-based");
                // The rendered diagnostic never truncates mid-escape and
                // always carries the position header.
                let rendered = format!("{e}");
                prop_assert!(rendered.starts_with(&format!(
                    "error at line {}, column {}:", e.line(), e.column()
                )));
            }
        }
    }
}
