//! Telemetry must be a pure observer: enabling the collector may not change
//! any numerical output, bit for bit.
//!
//! Each property runs the same workload twice — once with profiling forced
//! off, once with the [`Collector`] enabled together with timeline tracing
//! (which also arms every numerical-health monitor: backward-error checks,
//! condition estimates, pivot-growth and step-residual spot checks) — and
//! compares the results via `f64::to_bits`, so even a sign-of-zero or
//! NaN-payload difference fails. The workloads cover the three instrumented
//! layers: the sparse LU kernel, the transient stepping loop, and the
//! parameter-sweep executor.
//!
//! This lives in its own integration-test binary on purpose: the collector
//! state is process-global, and here nothing else races it.

use proptest::prelude::*;

use rlckit::circuit::transient::{run_transient, TransientOptions};
use rlckit::numeric::sparse::{CscMatrix, SparseLuFactor};
use rlckit::prelude::*;

/// Runs `workload` once with profiling off and once with profiling, health
/// monitoring and timeline tracing all on, returning both outputs for
/// comparison.
fn off_and_on<T>(mut workload: impl FnMut() -> T) -> (T, T) {
    let off = {
        let _collector = Collector::disable();
        let _trace = Collector::disable_trace();
        workload()
    };
    let on = {
        // `enable` arms the profile/health layer; `enable_trace` additionally
        // records begin/end timeline events for every span.
        let _collector = Collector::enable();
        let _trace = Collector::enable_trace();
        workload()
    };
    (off, on)
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sparse factor + solve: identical solution vectors either way.
    #[test]
    fn sparse_solve_is_bitwise_invariant(
        (n_seed, shift, rhs_seed) in (5.0f64..40.0, 0.1f64..2.0, 0.0f64..1.0)
    ) {
        let n = n_seed as usize;
        // An unsymmetric diagonally dominant tridiagonal system: enough
        // structure to exercise elimination and pivot-growth accounting.
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 4.0 + shift));
            if i + 1 < n {
                triplets.push((i + 1, i, -1.0));
                triplets.push((i, i + 1, -1.5));
            }
        }
        let a = CscMatrix::from_triplets(n, &triplets);
        let b: Vec<f64> = (0..n).map(|i| rhs_seed + i as f64 / n as f64).collect();
        let (off, on) = off_and_on(|| {
            let factor = SparseLuFactor::factor_auto(&a).expect("dominant system factors");
            factor.solve(&b)
        });
        prop_assert_eq!(bits(&off), bits(&on));
    }

    /// Transient ladder simulation: identical time grids and waveforms.
    #[test]
    fn transient_run_is_bitwise_invariant(
        (length_mm, seg_seed) in (2.0f64..10.0, 8.0f64..24.0)
    ) {
        let tech = Technology::quarter_micron();
        let line = tech.global_wire.line(Length::from_millimeters(length_mm)).unwrap();
        let mut spec = LadderSpec::new(
            line.total_resistance(),
            line.total_inductance(),
            line.total_capacitance(),
            tech.buffer_resistance(100.0).unwrap(),
            tech.buffer_capacitance(100.0).unwrap(),
        );
        spec.segments = seg_seed as usize;
        let ladder = spec.build().unwrap();
        let options = TransientOptions::new(spec.suggested_stop_time(), spec.suggested_timestep());
        let (off, on) = off_and_on(|| {
            let result = run_transient(&ladder.circuit, &options).expect("ladder simulates");
            let output = result.node_voltage(ladder.output);
            (bits(result.times()), bits(output.values()))
        });
        prop_assert_eq!(off, on);
    }

    /// Parameter sweep: identical row values (and row count) either way.
    #[test]
    fn sweep_is_bitwise_invariant(
        (l0, l1, h) in (1.0f64..4.0, 5.0f64..9.0, 40.0f64..160.0)
    ) {
        let spec = SweepSpec::new(Scenario::default())
            .axis(Axis::new("length_mm", [l0, l1].map(Param::LineLengthMm)))
            .axis(Axis::new("h", [h].map(Param::DriverSize)));
        let opts = SweepOptions::with_threads(2);
        let (off, on) = off_and_on(|| {
            let result = run_sweep(&spec, &DelayModelEvaluator, &opts).expect("sweep runs");
            result
                .rows
                .iter()
                .map(|row| bits(row.values.as_ref().expect("model evaluates")))
                .collect::<Vec<_>>()
        });
        prop_assert_eq!(off, on);
    }
}
