//! Property-based tests of the core model invariants.
//!
//! These complement the example-based tests with randomly drawn operating
//! points: physical sanity (positivity, finiteness), the bracketing of the
//! closed-form delay by its two limiting cases, monotonicity in each
//! impedance, and the consistency of the repeater closed forms with their RC
//! limits.

use proptest::prelude::*;

use rlckit::model::model::{lc_limit_delay, propagation_delay, rc_limit_delay, scaled_delay};
use rlckit::prelude::*;
use rlckit::repeater::rlc::{sections_error_factor, size_error_factor, t_l_over_r};

/// Strategy for a physically plausible gate-driven RLC load:
/// Rt ∈ [1 Ω, 10 kΩ], Lt ∈ [10 pH, 10 µH], Ct ∈ [10 fF, 10 pF],
/// Rtr ∈ [0, 5 kΩ], CL ∈ [0, 5 pF].
fn arb_load() -> impl Strategy<Value = GateRlcLoad> {
    (1.0f64..1e4, 1e-11f64..1e-5, 1e-14f64..1e-11, 0.0f64..5e3, 0.0f64..5e-12).prop_map(
        |(rt, lt, ct, rtr, cl)| {
            GateRlcLoad::new(
                Resistance::from_ohms(rt),
                Inductance::from_henries(lt),
                Capacitance::from_farads(ct),
                Resistance::from_ohms(rtr),
                Capacitance::from_farads(cl),
            )
            .expect("strategy only produces valid impedances")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn delay_is_positive_and_finite(load in arb_load()) {
        let tpd = propagation_delay(&load);
        prop_assert!(tpd.seconds() > 0.0);
        prop_assert!(tpd.is_finite());
        prop_assert!(load.zeta() > 0.0 && load.zeta().is_finite());
    }

    #[test]
    fn delay_is_bracketed_by_its_limiting_cases(load in arb_load()) {
        // The true delay is never faster than ~the time of flight and never
        // slower than ~the RC limit plus the time of flight (loose physical
        // bracketing of Eq. 9; the 0.9/1.1 factors absorb the fit wiggle).
        let tpd = propagation_delay(&load).seconds();
        let lc = lc_limit_delay(&load).seconds();
        let rc = rc_limit_delay(&load).seconds();
        prop_assert!(tpd >= 0.85 * lc, "tpd {tpd} vs LC limit {lc}");
        prop_assert!(tpd <= 1.1 * (rc + lc), "tpd {tpd} vs RC+LC {}", rc + lc);
    }

    #[test]
    fn delay_is_monotone_in_every_impedance(load in arb_load(), factor in 1.05f64..3.0) {
        let base = propagation_delay(&load).seconds();
        let grow = |rt: f64, lt: f64, ct: f64, rtr: f64, cl: f64| {
            GateRlcLoad::new(
                Resistance::from_ohms(rt),
                Inductance::from_henries(lt),
                Capacitance::from_farads(ct),
                Resistance::from_ohms(rtr),
                Capacitance::from_farads(cl),
            )
            .expect("valid")
        };
        let rt = load.total_resistance().ohms();
        let lt = load.total_inductance().henries();
        let ct = load.total_capacitance().farads();
        let rtr = load.driver_resistance().ohms();
        let cl = load.load_capacitance().farads();
        // Growing any single impedance cannot make the line faster
        // (tolerance covers the small non-monotone dip of Eq. 9 near ζ ≈ 0.3).
        for bigger in [
            grow(rt * factor, lt, ct, rtr, cl),
            grow(rt, lt * factor, ct, rtr, cl),
            grow(rt, lt, ct * factor, rtr, cl),
            grow(rt, lt, ct, rtr * factor + 1.0, cl),
            grow(rt, lt, ct, rtr, cl * factor + 1e-15),
        ] {
            let slower = propagation_delay(&bigger).seconds();
            prop_assert!(slower >= 0.93 * base, "delay dropped from {base} to {slower}");
        }
    }

    #[test]
    fn scaled_and_physical_delay_are_consistent(load in arb_load(), impedance_scale in 0.1f64..10.0) {
        // Exact identity: the physical delay is the scaled delay divided by ωn.
        let direct = scaled_delay(load.zeta());
        let via_time = propagation_delay(&load).seconds() * load.omega_n();
        prop_assert!((direct - via_time).abs() < 1e-9 * direct.max(1.0));
        // Impedance-level scaling: dividing every resistance and inductance by s
        // while multiplying every capacitance by s preserves all time constants
        // (R·C, L/R, L·C), so RT, CT, ζ and ωn — and therefore the delay — must
        // all be exactly unchanged.
        let scaled_load = GateRlcLoad::new(
            load.total_resistance() / impedance_scale,
            load.total_inductance() / impedance_scale,
            load.total_capacitance() * impedance_scale,
            load.driver_resistance() / impedance_scale,
            load.load_capacitance() * impedance_scale,
        ).expect("valid");
        prop_assert!((scaled_load.zeta() - load.zeta()).abs() < 1e-9 * load.zeta());
        let d0 = propagation_delay(&load).seconds();
        let d1 = propagation_delay(&scaled_load).seconds();
        prop_assert!((d0 - d1).abs() < 1e-9 * d0);
    }

    #[test]
    fn repeater_error_factors_stay_in_unit_interval(t in 0.0f64..20.0) {
        let h = size_error_factor(t);
        let k = sections_error_factor(t);
        prop_assert!(h > 0.0 && h <= 1.0);
        prop_assert!(k > 0.0 && k <= 1.0);
    }

    #[test]
    fn t_l_over_r_scales_as_square_root_of_inductance(
        rt in 1.0f64..1e3,
        lt in 1e-10f64..1e-6,
        tau_ps in 1.0f64..100.0,
    ) {
        let tau = Time::from_picoseconds(tau_ps);
        let t1 = t_l_over_r(Resistance::from_ohms(rt), Inductance::from_henries(lt), tau);
        let t4 = t_l_over_r(Resistance::from_ohms(rt), Inductance::from_henries(4.0 * lt), tau);
        prop_assert!((t4 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn repeater_designs_are_physical(
        rt in 10.0f64..2e3,
        lt in 1e-9f64..1e-6,
        ct in 1e-12f64..3e-11,
    ) {
        let tech = Technology::quarter_micron();
        let problem = RepeaterProblem::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            tech.min_buffer_resistance,
            tech.min_buffer_capacitance,
            tech.min_buffer_area,
            tech.supply,
        ).expect("valid problem");
        let rc = problem.bakoglu_optimum();
        let rlc = problem.rlc_optimum();
        prop_assert!(rc.size > 0.0 && rlc.size > 0.0);
        prop_assert!(rc.sections >= 1.0 && rlc.sections >= 1.0);
        prop_assert!(rlc.sections <= rc.sections + 1e-9);
        prop_assert!(rlc.size <= rc.size + 1e-9);
        prop_assert!(rlc.total_delay.seconds() <= rc.total_delay.seconds() * 1.005);
    }

    #[test]
    fn unit_round_trips(ohms in 0.0f64..1e9, farads in 0.0f64..1.0, meters in 0.0f64..1.0) {
        prop_assert_eq!(Resistance::from_ohms(ohms).ohms(), ohms);
        prop_assert_eq!(Capacitance::from_farads(farads).farads(), farads);
        prop_assert_eq!(Length::from_meters(meters).meters(), meters);
        let t = Resistance::from_ohms(ohms) * Capacitance::from_farads(farads);
        prop_assert!((t.seconds() - ohms * farads).abs() <= 1e-12 * (ohms * farads).abs());
    }
}

// ---------------------------------------------------------------------------
// Three-way solver-backend equivalence: dense vs banded vs sparse on ladders,
// coupled buses and random trees, plus singular-rejection parity. Each case
// assembles one MNA system, factorises it under every forced backend and
// compares the solutions of the same right-hand side to 1e-9.
// ---------------------------------------------------------------------------

use rlckit::circuit::dc::operating_point_of;
use rlckit::circuit::ladder::LadderSpec;
use rlckit::circuit::mesh::MeshSpec;
use rlckit::circuit::mna::MnaSystem;
use rlckit::circuit::solve::factor_real;
use rlckit::circuit::tree::{TreeBranch, TreeSpec};
use rlckit::circuit::{CircuitError, SolverBackend};
use rlckit::coupling::netlist::build_bus_circuit;
use rlckit::coupling::scenario::SwitchingPattern;
use rlckit::units::{
    CapacitancePerLength, InductancePerLength, ResistancePerLength, Time, Voltage,
};

const BACKENDS: [SolverBackend; 3] =
    [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse];

/// DC-solves one assembled system under every forced backend and asserts the
/// states agree to 1e-9.
fn assert_backends_agree(mna: &MnaSystem, context: &str) {
    let t = Time::from_picoseconds(3.0);
    let reference = operating_point_of(mna, t, SolverBackend::Dense).expect("dense DC solves");
    for backend in [SolverBackend::Banded, SolverBackend::Sparse] {
        let other = operating_point_of(mna, t, backend).expect("backend DC solves");
        for (i, (d, o)) in reference.state().iter().zip(other.state().iter()).enumerate() {
            assert!(
                (d - o).abs() < 1e-9,
                "{context}: dense vs {backend:?} differ at unknown {i}: {d} vs {o}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn three_backends_agree_on_ladders(
        rt in 10.0f64..2e3,
        lt in 1e-9f64..5e-8,
        ct in 2e-13f64..3e-12,
        segments_f in 10.0f64..40.0,
    ) {
        let segments = segments_f as usize;
        let spec = LadderSpec::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            Resistance::from_ohms(100.0),
            Capacitance::from_femtofarads(30.0),
        );
        let spec = LadderSpec { segments, ..spec };
        let line = spec.build().expect("ladder builds");
        let mna = MnaSystem::build(&line.circuit).expect("ladder assembles");
        assert_backends_agree(&mna, "ladder");
    }

    #[test]
    fn three_backends_agree_on_coupled_buses(
        lines_f in 2.0f64..5.0,
        sections_f in 4.0f64..12.0,
        coupling in 0.05f64..0.4,
    ) {
        let lines = lines_f as usize;
        let sections = sections_f as usize;
        let spec = rlckit::coupling::bus::UniformBusSpec {
            lines,
            resistance: ResistancePerLength::from_ohms_per_millimeter(50.0),
            self_inductance: InductancePerLength::from_nanohenries_per_millimeter(1.0),
            ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.08),
            inductive_coupling: (1..lines).map(|d| coupling * 0.43f64.powi(d as i32 - 1)).collect(),
            length: Length::from_millimeters(2.0),
        };
        let bus = spec.build().expect("bus builds");
        let drive = rlckit::coupling::netlist::BusDrive::new(
            Resistance::from_ohms(120.0),
            Capacitance::from_femtofarads(20.0),
            Voltage::from_volts(1.0),
        )
        .with_sections(sections);
        let pattern = SwitchingPattern::odd_mode(lines / 2, lines).expect("odd mode");
        let circuit = build_bus_circuit(&bus, &pattern, &drive).expect("bus netlist builds");
        let mna = MnaSystem::build(&circuit.circuit).expect("bus assembles");
        assert_backends_agree(&mna, "coupled bus");
    }

    #[test]
    fn three_backends_agree_on_random_trees(
        shape in proptest::collection::vec(0.0f64..1.0, 11),
        scale in 0.5f64..2.0,
    ) {
        // Branch i attaches to a pseudo-random earlier branch: `shape` drives
        // the topology, so the cases cover chains, stars and everything
        // between.
        let mut spec = TreeSpec::new(Resistance::from_ohms(150.0));
        for (i, &u) in shape.iter().enumerate() {
            let parent = if i == 0 { None } else { Some((u * i as f64) as usize % i) };
            spec.branches.push(TreeBranch {
                parent,
                total_resistance: Resistance::from_ohms(100.0 * scale),
                total_inductance: Inductance::from_nanohenries(2.0 * scale),
                total_capacitance: Capacitance::from_picofarads(0.2 * scale),
                segments: 4,
                sink_capacitance: Capacitance::from_femtofarads(10.0),
            });
        }
        let net = spec.build().expect("tree builds");
        let mna = MnaSystem::build(&net.circuit).expect("tree assembles");
        assert_backends_agree(&mna, "random tree");
    }

    #[test]
    fn three_backends_agree_on_meshes(
        rows_f in 2.0f64..7.0,
        cols_f in 2.0f64..7.0,
        r_seg in 1.0f64..50.0,
        c_node_ff in 5.0f64..100.0,
    ) {
        let spec = MeshSpec::new(
            rows_f as usize,
            cols_f as usize,
            Resistance::from_ohms(r_seg),
            Capacitance::from_femtofarads(c_node_ff),
            Resistance::from_ohms(75.0),
        );
        let net = spec.build().expect("mesh builds");
        let mna = MnaSystem::build(&net.circuit).expect("mesh assembles");
        assert_backends_agree(&mna, "mesh");
    }

    #[test]
    fn singular_rejection_parity_across_backends(segments_f in 2.0f64..12.0) {
        let segments = segments_f as usize;
        // 0·G + 0·C is exactly singular; every backend must report it as a
        // SingularSystem with the caller's stage string, not panic or return
        // garbage.
        let spec = LadderSpec::new(
            Resistance::from_ohms(100.0),
            Inductance::from_nanohenries(5.0),
            Capacitance::from_picofarads(1.0),
            Resistance::from_ohms(50.0),
            Capacitance::from_femtofarads(10.0),
        );
        let spec = LadderSpec { segments, ..spec };
        let line = spec.build().expect("ladder builds");
        let mna = MnaSystem::build(&line.circuit).expect("assembles");
        for backend in BACKENDS {
            let result = factor_real(&mna, 0.0, 0.0, backend, "parity test");
            prop_assert!(
                matches!(result, Err(CircuitError::SingularSystem { stage: "parity test" })),
                "{backend:?} must reject the zero matrix"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Sparse-kernel scaling invariants: the value-only refactorisation must be
// numerically indistinguishable from a fresh pivoting factorisation across
// the workload families (ladders, trees, meshes), blocked multi-RHS solves
// must match one-at-a-time solves, and the AMD ordering must stay a valid
// permutation with fill competitive with classical minimum degree.
// ---------------------------------------------------------------------------

use rlckit::numeric::banded::BandedLuFactor;
use rlckit::numeric::condition;
use rlckit::numeric::lu::LuFactor;
use rlckit::numeric::sparse::{
    approximate_minimum_degree, minimum_degree, SparseLuFactor, SparseSymbolic,
};

/// The three workload families the refactor path must cover.
fn family_mna(family: usize, size: usize) -> MnaSystem {
    let circuit = match family % 3 {
        0 => {
            let spec = LadderSpec::new(
                Resistance::from_ohms(400.0),
                Inductance::from_nanohenries(8.0),
                Capacitance::from_picofarads(0.8),
                Resistance::from_ohms(120.0),
                Capacitance::from_femtofarads(25.0),
            );
            LadderSpec { segments: size.max(2), ..spec }.build().expect("ladder builds").circuit
        }
        1 => {
            let mut spec = TreeSpec::new(Resistance::from_ohms(150.0));
            for i in 0..size.max(2) {
                spec.branches.push(TreeBranch {
                    parent: if i == 0 { None } else { Some((i - 1) / 2) },
                    total_resistance: Resistance::from_ohms(90.0),
                    total_inductance: Inductance::from_nanohenries(1.5),
                    total_capacitance: Capacitance::from_picofarads(0.15),
                    segments: 3,
                    sink_capacitance: Capacitance::from_femtofarads(12.0),
                });
            }
            spec.build().expect("tree builds").circuit
        }
        _ => {
            let side = (size.max(4) as f64).sqrt().ceil() as usize;
            MeshSpec::new(
                side,
                side,
                Resistance::from_ohms(4.0),
                Capacitance::from_femtofarads(15.0),
                Resistance::from_ohms(60.0),
            )
            .build()
            .expect("mesh builds")
            .circuit
        }
    };
    MnaSystem::build(&circuit).expect("family circuit assembles")
}

/// Builds the adjacency lists of a random grid-graph pattern with a few
/// extra chords, the shape AMD has to be competitive on.
fn grid_adjacency(rows: usize, cols: usize, chords: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let n = rows * cols;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut connect = |a: usize, b: usize| {
        if a != b {
            adj[a].push(b);
            adj[b].push(a);
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            let here = r * cols + c;
            if c + 1 < cols {
                connect(here, here + 1);
            }
            if r + 1 < rows {
                connect(here, here + cols);
            }
        }
    }
    for &(a, b) in chords {
        connect(a % n, b % n);
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Diagonally dominant matrix over an adjacency structure, so every
/// elimination order factors without pivoting surprises.
fn matrix_from_adjacency(adj: &[Vec<usize>]) -> rlckit::numeric::sparse::CscMatrix<f64> {
    let n = adj.len();
    let mut triplets = Vec::new();
    for (i, neighbours) in adj.iter().enumerate() {
        triplets.push((i, i, 4.0 + neighbours.len() as f64));
        for &j in neighbours {
            triplets.push((i, j, -1.0));
        }
    }
    rlckit::numeric::sparse::CscMatrix::from_triplets(n, &triplets)
}

/// `nnz(L) + nnz(U)` of a factorisation under the given ordering.
fn fill_under(a: &rlckit::numeric::sparse::CscMatrix<f64>, perm: Vec<usize>) -> usize {
    let symbolic = SparseSymbolic::from_permutation(a.dim(), perm);
    let f = SparseLuFactor::factor(a, &symbolic).expect("diagonally dominant system factors");
    f.l_nnz() + f.u_nnz()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn refactorisation_matches_a_fresh_factorisation(
        family in 0.0f64..3.0,
        size_f in 6.0f64..30.0,
        scalars in proptest::collection::vec(0.2f64..5.0, 3),
    ) {
        // Factor `G + cs·C` once, then walk through new `cs` scalars (the
        // per-timestep/per-frequency value perturbation: the pattern is
        // frozen, every stored value changes). The warm refactorisation must
        // agree with a cold pivoting factorisation of the same matrix to
        // 1e-12 on the solution of a common right-hand side.
        let mna = family_mna(family as usize, size_f as usize);
        let n = mna.dim();
        let a0 = mna.assemble_csc_real(1.0, 1e10);
        let mut warm = SparseLuFactor::factor(&a0, mna.sparse_symbolic()).expect("factors");
        let rhs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        for cs in &scalars {
            let a = mna.assemble_csc_real(1.0, cs * 1e10);
            warm.refactor(&a).expect("same pattern refactors");
            let cold = SparseLuFactor::factor(&a, mna.sparse_symbolic()).expect("factors");
            let xw = warm.solve(&rhs);
            let xc = cold.solve(&rhs);
            let scale = xc.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (i, (w, c)) in xw.iter().zip(xc.iter()).enumerate() {
                prop_assert!(
                    (w - c).abs() <= 1e-12 * scale,
                    "family {family}, cs {cs}: warm vs cold differ at {i}: {w} vs {c}"
                );
            }
        }
    }

    #[test]
    fn blocked_multi_rhs_solves_match_one_at_a_time(
        family in 0.0f64..3.0,
        size_f in 6.0f64..30.0,
        seeds in proptest::collection::vec(0.1f64..10.0, 4),
    ) {
        let mna = family_mna(family as usize, size_f as usize);
        let n = mna.dim();
        for backend in BACKENDS {
            let factor = factor_real(&mna, 1.0, 1e10, backend, "multi-rhs test")
                .expect("family system factors");
            let block: Vec<Vec<f64>> = seeds
                .iter()
                .map(|s| (0..n).map(|i| s * (1.0 + (i % 5) as f64)).collect())
                .collect();
            let many = factor.solve_many(&block);
            for (b, x) in block.iter().zip(many.iter()) {
                let one = factor.solve(b);
                for (i, (m, o)) in x.iter().zip(one.iter()).enumerate() {
                    prop_assert!(
                        (m - o).abs() <= 1e-12 * o.abs().max(1.0),
                        "{backend:?}: blocked vs single solve differ at {i}: {m} vs {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn condest_tracks_the_exact_condition_number(
        family in 0.0f64..3.0,
        size_f in 6.0f64..24.0,
        cs_scale in 0.3f64..3.0,
    ) {
        // The Hager–Higham estimate reuses the LU factors, so it is a lower
        // bound on the exact 1-norm condition number and — on these
        // diagonally-dominated MNA systems — must land within a factor of 10
        // of it, on every kernel. The exact value comes from the brute-force
        // inverse: n dense solves, one per unit vector.
        let mna = family_mna(family as usize, size_f as usize);
        let n = mna.dim();
        let band = mna.assemble_real(1.0, cs_scale * 1e10);
        let dense = band.to_dense();
        let dense_lu = LuFactor::new(&dense).expect("family system factors");
        let mut inv_norm_one = 0.0f64;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = dense_lu.solve(&e);
            inv_norm_one = inv_norm_one.max(col.iter().map(|v| v.abs()).sum());
        }
        let exact = dense.norm_one() * inv_norm_one;
        let csc = mna.assemble_csc_real(1.0, cs_scale * 1e10);
        let estimates = [
            ("dense", dense_lu.condest(dense.norm_one())),
            ("banded", BandedLuFactor::new(&band).expect("factors").condest(dense.norm_one())),
            (
                "sparse",
                SparseLuFactor::factor(&csc, mna.sparse_symbolic())
                    .expect("factors")
                    .condest(csc.norm_one()),
            ),
        ];
        for (kernel, est) in estimates {
            prop_assert!(
                est <= exact * (1.0 + 1e-9),
                "{kernel}: estimate {est} exceeds the exact condition number {exact}"
            );
            prop_assert!(
                est >= exact / 10.0,
                "{kernel}: estimate {est} more than 10x below the exact {exact}"
            );
        }
    }

    #[test]
    fn solves_stay_backward_stable_across_backends(
        family in 0.0f64..3.0,
        size_f in 6.0f64..30.0,
        rhs_seed in 0.1f64..10.0,
    ) {
        // The componentwise backward error the health monitors report is
        // computed from the retained matrix; here the same formula is applied
        // directly to every backend's solution. Partial-pivoted LU on these
        // well-conditioned systems must stay near machine precision — the
        // 1e-12 ceiling is ~4500 ulps of headroom.
        let mna = family_mna(family as usize, size_f as usize);
        let n = mna.dim();
        let a = mna.assemble_csc_real(1.0, 1e10);
        let rhs: Vec<f64> = (0..n).map(|i| rhs_seed * (1.0 + (i % 7) as f64)).collect();
        for backend in BACKENDS {
            let factor = factor_real(&mna, 1.0, 1e10, backend, "backward-error test")
                .expect("family system factors");
            let x = factor.solve(&rhs);
            let be = condition::backward_error(a.norm_inf(), &a.mul_vec(&x), &x, &rhs);
            prop_assert!(
                be <= 1e-12,
                "{backend:?}: backward error {be} above 1e-12 on a {n}-dim system"
            );
        }
    }

    #[test]
    fn amd_is_valid_and_fill_competitive_on_random_meshes(
        rows_f in 3.0f64..12.0,
        cols_f in 3.0f64..12.0,
        chord_seeds in proptest::collection::vec(0.0f64..1.0, 4),
    ) {
        let (rows, cols) = (rows_f as usize, cols_f as usize);
        let n = rows * cols;
        let chords: Vec<(usize, usize)> = chord_seeds
            .chunks(2)
            .map(|pair| {
                let a = (pair[0] * n as f64) as usize % n;
                let b = (pair.get(1).copied().unwrap_or(0.5) * n as f64) as usize % n;
                (a, b)
            })
            .collect();
        let adj = grid_adjacency(rows, cols, &chords);
        let amd = approximate_minimum_degree(n, &adj);
        // A valid permutation: every position hit exactly once.
        let mut seen = vec![false; n];
        for &p in &amd {
            prop_assert!(p < n && !seen[p], "AMD emitted position {p} twice or out of range");
            seen[p] = true;
        }
        // Fill within 2x of the classical (exact-degree) orderings' fill.
        let a = matrix_from_adjacency(&adj);
        let amd_fill = fill_under(&a, amd);
        let md_fill = fill_under(&a, minimum_degree(n, &adj));
        prop_assert!(
            amd_fill <= 2 * md_fill,
            "{rows}x{cols} grid: AMD fill {amd_fill} vs classical MD fill {md_fill}"
        );
    }
}
