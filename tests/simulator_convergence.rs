//! Integration test: convergence of the dynamic simulator that stands in for AS/X.
//!
//! Every accuracy number in this reproduction is measured against the MNA
//! ladder simulator, so the simulator itself must be shown to converge: in the
//! number of lumped segments, in the integration timestep, and across segment
//! topologies. This is the ablation DESIGN.md calls out for the AS/X
//! substitution.

use rlckit::circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit::circuit::transient::{run_transient, Integration, TransientOptions};
use rlckit::prelude::*;

fn base_spec(segments: usize, style: SegmentStyle) -> LadderSpec {
    LadderSpec {
        total_resistance: Resistance::from_ohms(1000.0),
        total_inductance: Inductance::from_nanohenries(10.0),
        total_capacitance: Capacitance::from_picofarads(1.0),
        segments,
        style,
        driver_resistance: Resistance::from_ohms(500.0),
        load_capacitance: Capacitance::from_picofarads(0.5),
        supply: Voltage::from_volts(1.0),
    }
}

#[test]
fn delay_converges_with_segment_count() {
    let delays: Vec<f64> = [10usize, 20, 40, 80]
        .iter()
        .map(|&n| {
            measure_step_delay(&base_spec(n, SegmentStyle::Pi))
                .expect("simulation runs")
                .delay_50
                .seconds()
        })
        .collect();
    // Successive refinements move the answer less and less…
    let d_10_20 = (delays[1] - delays[0]).abs() / delays[1];
    let d_40_80 = (delays[3] - delays[2]).abs() / delays[3];
    assert!(d_40_80 < d_10_20 + 1e-12, "refinement should not diverge");
    // …and the 40-segment ladder used throughout the experiments is within 1%
    // of the 80-segment answer.
    assert!(d_40_80 < 0.01, "40 vs 80 segment delay differs by {d_40_80}");
}

#[test]
fn pi_and_l_section_topologies_agree_when_fine() {
    let pi = measure_step_delay(&base_spec(80, SegmentStyle::Pi)).expect("simulation runs");
    let l = measure_step_delay(&base_spec(80, SegmentStyle::LSection)).expect("simulation runs");
    let diff = (pi.delay_50.seconds() - l.delay_50.seconds()).abs() / pi.delay_50.seconds();
    assert!(diff < 0.02, "π vs L topology delays differ by {diff}");
}

#[test]
fn timestep_refinement_does_not_change_the_answer() {
    let spec = base_spec(40, SegmentStyle::Pi);
    let line = spec.build().expect("builds");
    let stop = spec.suggested_stop_time();
    let coarse_dt = spec.suggested_timestep();
    let fine_dt = coarse_dt / 4.0;

    let mut delays = Vec::new();
    for dt in [coarse_dt, fine_dt] {
        let options = TransientOptions::new(stop, dt);
        let result = run_transient(&line.circuit, &options).expect("runs");
        let delay = result
            .node_voltage(line.output)
            .delay_50(Voltage::from_volts(1.0))
            .expect("crosses 50%");
        delays.push(delay.seconds());
    }
    let diff = (delays[0] - delays[1]).abs() / delays[1];
    assert!(diff < 0.005, "timestep refinement changed the delay by {diff}");
}

#[test]
fn integration_methods_agree_on_the_delay() {
    // Backward Euler damps ringing but the 50% crossing of this moderately
    // damped line should still agree with trapezoidal to within ~2%.
    let spec = base_spec(40, SegmentStyle::Pi);
    let line = spec.build().expect("builds");
    let stop = spec.suggested_stop_time();
    let dt = spec.suggested_timestep() / 2.0;
    let mut delays = Vec::new();
    for method in [Integration::Trapezoidal, Integration::BackwardEuler] {
        let mut options = TransientOptions::new(stop, dt);
        options.method = method;
        let result = run_transient(&line.circuit, &options).expect("runs");
        delays.push(
            result
                .node_voltage(line.output)
                .delay_50(Voltage::from_volts(1.0))
                .expect("crosses 50%")
                .seconds(),
        );
    }
    let diff = (delays[0] - delays[1]).abs() / delays[0];
    assert!(diff < 0.02, "integration methods disagree by {diff}");
}

#[test]
fn final_value_is_the_supply_regardless_of_damping() {
    for lt in [1e-9, 1e-8, 1e-7] {
        let mut spec = base_spec(40, SegmentStyle::Pi);
        spec.total_inductance = Inductance::from_henries(lt);
        let line = spec.build().expect("builds");
        let options =
            TransientOptions::new(spec.suggested_stop_time() * 3.0, spec.suggested_timestep());
        let result = run_transient(&line.circuit, &options).expect("runs");
        let final_v = result.final_node_voltage(line.output).volts();
        assert!((final_v - 1.0).abs() < 0.02, "Lt = {lt}: final value {final_v}");
    }
}
