//! Property-based tests of the numerical substrate.
//!
//! Random well-conditioned systems, random bracketed roots and random unimodal
//! objectives: the numerical routines must hit their advertised tolerances for
//! all of them, not just the hand-picked unit-test cases.

use proptest::prelude::*;

use rlckit_numeric::banded::{BandedLuFactor, BandedMatrix};
use rlckit_numeric::complex::Complex;
use rlckit_numeric::laplace::talbot;
use rlckit_numeric::lu::{solve, LuFactor};
use rlckit_numeric::matrix::Matrix;
use rlckit_numeric::optimize::{golden_section, nelder_mead, NelderMeadOptions};
use rlckit_numeric::poly::Polynomial;
use rlckit_numeric::roots::{bisect, brent};

/// A random diagonally dominant matrix (guaranteed non-singular) and a RHS.
fn arb_system(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (proptest::collection::vec(-1.0f64..1.0, n * n), proptest::collection::vec(-10.0f64..10.0, n))
}

/// Builds a diagonally dominant banded matrix of the given shape from a flat
/// supply of band entries (`data` must hold at least `n * (kl + ku + 1)`
/// values).
fn banded_from_data(n: usize, kl: usize, ku: usize, data: &[f64]) -> BandedMatrix<f64> {
    let mut a = BandedMatrix::zeros(n, kl, ku);
    let mut next = data.iter().copied();
    for i in 0..n {
        let lo = i.saturating_sub(kl);
        let hi = (i + ku).min(n - 1);
        for j in lo..=hi {
            a.set(i, j, next.next().expect("enough band data"));
        }
        // Diagonal dominance keeps the comparison numerically meaningful.
        a.add_at(i, i, 4.0);
    }
    a
}

/// Checks banded against dense LU on the same system to a relative tolerance
/// of 1e-12 componentwise (relative to the solution's infinity norm).
fn assert_banded_matches_dense(a: &BandedMatrix<f64>, b: &[f64]) {
    let banded = BandedLuFactor::new(a).expect("diagonally dominant").solve(b);
    let dense = LuFactor::new(&a.to_dense()).expect("diagonally dominant").solve(b);
    let scale = dense.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for (idx, (u, v)) in banded.iter().zip(dense.iter()).enumerate() {
        assert!(
            (u - v).abs() <= 1e-12 * scale,
            "component {idx}: banded {u} vs dense {v} (scale {scale})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solves_diagonally_dominant_systems((data, b) in arb_system(12)) {
        let n = 12;
        let mut m = Matrix::<f64>::from_rows(n, n, data);
        for i in 0..n {
            let dom = m[(i, i)] + 5.0;
            m[(i, i)] = dom;
        }
        let x = solve(&m, &b).expect("diagonally dominant systems factorise");
        let r = m.mul_vec(&x);
        for (ri, bi) in r.iter().zip(b.iter()) {
            prop_assert!((ri - bi).abs() < 1e-8, "residual {}", (ri - bi).abs());
        }
    }

    #[test]
    fn banded_lu_matches_dense_on_random_banded_systems(
        data in proptest::collection::vec(-1.0f64..1.0, 24 * 11),
        b in proptest::collection::vec(-10.0f64..10.0, 24),
        kl_raw in 0.0f64..5.0,
        ku_raw in 0.0f64..5.0,
    ) {
        let n = 24;
        let kl = kl_raw as usize;
        let ku = ku_raw as usize;
        let a = banded_from_data(n, kl, ku, &data);
        assert_banded_matches_dense(&a, &b);
    }

    #[test]
    fn banded_lu_matches_dense_on_tridiagonal_systems(
        data in proptest::collection::vec(-1.0f64..1.0, 32 * 3),
        b in proptest::collection::vec(-10.0f64..10.0, 32),
    ) {
        // Bandwidth-1 (kl = ku = 1): the shape every discretised RC line has.
        let a = banded_from_data(32, 1, 1, &data);
        assert_banded_matches_dense(&a, &b);
    }

    #[test]
    fn banded_lu_matches_dense_in_the_full_bandwidth_degenerate_case(
        data in proptest::collection::vec(-1.0f64..1.0, 12 * 23),
        b in proptest::collection::vec(-10.0f64..10.0, 12),
    ) {
        // kl = ku = n - 1: the band covers the whole matrix, so the banded
        // kernel must degenerate gracefully to a (slower) dense factorisation.
        let a = banded_from_data(12, 11, 11, &data);
        assert_banded_matches_dense(&a, &b);
    }

    #[test]
    fn lu_determinant_of_triangular_matrix_is_diagonal_product(
        diag in proptest::collection::vec(0.5f64..4.0, 6),
        off in proptest::collection::vec(-1.0f64..1.0, 15),
    ) {
        // Build an upper-triangular matrix: determinant is the diagonal product.
        let n = 6;
        let mut m = Matrix::<f64>::zeros(n, n);
        let mut k = 0;
        for i in 0..n {
            m[(i, i)] = diag[i];
            for j in (i + 1)..n {
                m[(i, j)] = off[k % off.len()];
                k += 1;
            }
        }
        let det = LuFactor::new(&m).expect("non-singular").determinant();
        let expected: f64 = diag.iter().product();
        prop_assert!((det - expected).abs() < 1e-9 * expected.abs());
    }

    #[test]
    fn brent_and_bisect_agree_on_cubic_roots(root in -5.0f64..5.0, offset in 0.1f64..3.0) {
        // f(x) = (x - root)^3 + small linear term keeps a single real root at ~root.
        let f = |x: f64| (x - root).powi(3) + 1e-3 * (x - root);
        let a = root - offset;
        let b = root + offset * 1.7;
        let r1 = brent(f, a, b, 1e-12, 200).expect("bracketed");
        let r2 = bisect(f, a, b, 1e-12, 200).expect("bracketed");
        prop_assert!((r1 - root).abs() < 1e-5);
        prop_assert!((r1 - r2).abs() < 1e-5);
    }

    #[test]
    fn golden_section_finds_quadratic_minimum(center in -10.0f64..10.0, width in 1.0f64..20.0) {
        let f = |x: f64| (x - center) * (x - center) + 3.0;
        let m = golden_section(f, center - width, center + width, 1e-10, 500).expect("converges");
        prop_assert!((m.point[0] - center).abs() < 1e-4);
        prop_assert!((m.value - 3.0).abs() < 1e-7);
    }

    #[test]
    fn nelder_mead_finds_shifted_paraboloid_minimum(cx in -3.0f64..3.0, cy in -3.0f64..3.0) {
        let f = move |p: &[f64]| (p[0] - cx).powi(2) + 2.0 * (p[1] - cy).powi(2) + 1.0;
        let m = nelder_mead(f, &[0.0, 0.0], NelderMeadOptions {
            initial_step: 0.5,
            tolerance: 1e-14,
            max_iterations: 4000,
        }).expect("converges");
        prop_assert!((m.point[0] - cx).abs() < 1e-4);
        prop_assert!((m.point[1] - cy).abs() < 1e-4);
    }

    #[test]
    fn talbot_inverts_first_order_lags(tau in 0.05f64..20.0, t in 0.01f64..10.0) {
        // F(s) = 1/(1 + s·tau) ⇒ f(t) = e^{-t/tau}/tau ... use the step response
        // form F(s)/s which is 1 - e^{-t/tau}: bounded, well-conditioned.
        let f = |s: Complex| (s * tau + 1.0).recip() / s;
        let got = talbot(f, t, 32);
        let want = 1.0 - (-t / tau).exp();
        prop_assert!((got - want).abs() < 1e-6, "t={t}, tau={tau}: {got} vs {want}");
    }

    #[test]
    fn quadratic_roots_always_satisfy_the_polynomial(
        a in 0.1f64..5.0,
        b in -10.0f64..10.0,
        c in -10.0f64..10.0,
    ) {
        let p = Polynomial::new(vec![c, b, a]);
        let (r1, r2) = p.quadratic_roots().expect("degree two");
        prop_assert!(p.eval_complex(r1).abs() < 1e-6 * (1.0 + c.abs() + b.abs() + a));
        prop_assert!(p.eval_complex(r2).abs() < 1e-6 * (1.0 + c.abs() + b.abs() + a));
    }

    #[test]
    fn complex_field_axioms_hold(re1 in -5.0f64..5.0, im1 in -5.0f64..5.0,
                                 re2 in -5.0f64..5.0, im2 in -5.0f64..5.0) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        // Commutativity and distributivity within floating-point tolerance.
        prop_assert!(((a * b) - (b * a)).abs() < 1e-12);
        let lhs = a * (b + Complex::ONE);
        let rhs = a * b + a;
        prop_assert!((lhs - rhs).abs() < 1e-10);
        // |a·b| = |a|·|b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }
}
