//! Orthonormalization kernels for Krylov-subspace model-order reduction.
//!
//! The PRIMA-style block-Arnoldi reducer in `rlckit-reduce` grows an
//! orthonormal basis one candidate vector at a time: every new direction is
//! orthogonalized against the basis built so far and either appended (after
//! normalisation) or *deflated* — dropped because it is numerically contained
//! in the existing span. [`OrthoBuilder`] implements that incremental step
//! with **modified Gram–Schmidt plus one reorthogonalization pass**, the
//! standard remedy for the loss of orthogonality plain Gram–Schmidt suffers
//! on ill-conditioned Krylov chains.

use crate::matrix::Matrix;

/// Dot product of two equal-length real vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a real vector.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// An incrementally grown orthonormal basis (modified Gram–Schmidt with
/// reorthogonalization and deflation).
#[derive(Debug, Clone)]
pub struct OrthoBuilder {
    dim: usize,
    tol: f64,
    columns: Vec<Vec<f64>>,
}

impl OrthoBuilder {
    /// Creates a builder for vectors of length `dim`.
    ///
    /// `tol` is the relative deflation threshold: a candidate whose norm
    /// after orthogonalization is below `tol` times its original norm is
    /// considered linearly dependent and rejected. `1e-10` is a good default.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `tol` is not a positive finite number.
    pub fn new(dim: usize, tol: f64) -> Self {
        assert!(dim > 0, "basis vectors must have non-zero length");
        assert!(tol.is_finite() && tol > 0.0, "deflation tolerance must be positive and finite");
        Self { dim, tol, columns: Vec::new() }
    }

    /// Number of basis vectors accepted so far.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` if no vector has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The orthonormal columns accepted so far.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// Orthogonalizes `v` against the basis and appends it if it survives.
    ///
    /// Returns `true` if the vector contributed a new direction, `false` if
    /// it was deflated (numerically dependent on the existing basis). The
    /// basis is full once `len() == dim`; further candidates always deflate.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim` or `v` contains a non-finite entry.
    pub fn push(&mut self, v: &[f64]) -> bool {
        assert_eq!(v.len(), self.dim, "candidate length must match the basis dimension");
        assert!(v.iter().all(|x| x.is_finite()), "candidate vector must be finite");
        let original = norm(v);
        if original == 0.0 || self.columns.len() == self.dim {
            return false;
        }
        let mut w = v.to_vec();
        // Two passes of modified Gram–Schmidt ("twice is enough", Kahan):
        // the second pass removes the components the first pass leaked due
        // to rounding when the candidate is nearly dependent.
        for _ in 0..2 {
            for q in &self.columns {
                let h = dot(q, &w);
                for (wi, qi) in w.iter_mut().zip(q.iter()) {
                    *wi -= h * qi;
                }
            }
        }
        let remaining = norm(&w);
        if remaining <= self.tol * original {
            return false;
        }
        for wi in &mut w {
            *wi /= remaining;
        }
        self.columns.push(w);
        true
    }

    /// Consumes the builder, returning the basis as a `dim × len` matrix
    /// (basis vectors are columns).
    ///
    /// # Panics
    ///
    /// Panics if the basis is empty.
    pub fn into_matrix(self) -> Matrix<f64> {
        assert!(!self.columns.is_empty(), "cannot materialise an empty basis");
        let rows = self.dim;
        let cols = self.columns.len();
        let mut m = Matrix::zeros(rows, cols);
        for (j, col) in self.columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }
}

/// Largest deviation from orthonormality, `max |QᵀQ − I|`, of a set of
/// equal-length vectors — a diagnostic used by tests and assertions.
pub fn orthonormality_defect(columns: &[Vec<f64>]) -> f64 {
    let mut worst: f64 = 0.0;
    for (i, a) in columns.iter().enumerate() {
        for (j, b) in columns.iter().enumerate() {
            let want = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((dot(a, b) - want).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_an_orthonormal_basis() {
        let mut b = OrthoBuilder::new(3, 1e-12);
        assert!(b.is_empty());
        assert!(b.push(&[2.0, 0.0, 0.0]));
        assert!(b.push(&[1.0, 1.0, 0.0]));
        assert!(b.push(&[1.0, 1.0, 1.0]));
        assert_eq!(b.len(), 3);
        assert!(orthonormality_defect(b.columns()) < 1e-14);
        let m = b.into_matrix();
        assert_eq!((m.rows(), m.cols()), (3, 3));
    }

    #[test]
    fn deflates_dependent_vectors() {
        let mut b = OrthoBuilder::new(3, 1e-10);
        assert!(b.push(&[1.0, 0.0, 0.0]));
        assert!(b.push(&[0.0, 1.0, 0.0]));
        // In the span of the first two: must deflate.
        assert!(!b.push(&[3.0, -2.0, 0.0]));
        // Zero vector deflates trivially.
        assert!(!b.push(&[0.0, 0.0, 0.0]));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn full_basis_rejects_everything() {
        let mut b = OrthoBuilder::new(2, 1e-10);
        assert!(b.push(&[1.0, 2.0]));
        assert!(b.push(&[2.0, -1.0]));
        assert!(!b.push(&[5.0, 5.0]));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn reorthogonalization_handles_nearly_dependent_chains() {
        // Krylov-like chain of nearly parallel vectors: plain Gram–Schmidt
        // loses orthogonality here; the two-pass variant must not.
        let n = 40;
        let mut b = OrthoBuilder::new(n, 1e-10);
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 + 1e-8 * i as f64).collect();
        for _ in 0..6 {
            b.push(&v);
            // Multiply by a diagonal close to the identity: the chain
            // collapses towards the dominant direction.
            for (i, x) in v.iter_mut().enumerate() {
                *x *= 1.0 + 1e-6 * i as f64;
            }
        }
        assert!(b.len() >= 2);
        assert!(
            orthonormality_defect(b.columns()) < 1e-12,
            "defect {}",
            orthonormality_defect(b.columns())
        );
    }

    #[test]
    #[should_panic]
    fn non_finite_candidates_panic() {
        let mut b = OrthoBuilder::new(2, 1e-10);
        b.push(&[f64::NAN, 0.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_length_panics() {
        let mut b = OrthoBuilder::new(3, 1e-10);
        b.push(&[1.0, 2.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }
}
