//! Bandwidth-reducing orderings for sparse symmetric patterns.
//!
//! The natural MNA unknown ordering (all node voltages, then all branch
//! currents) scatters the inductor-branch rows of an RLC ladder far from the
//! diagonal, so the assembled matrix looks dense even though every unknown
//! couples only to its neighbours along the line. The classic fix is the
//! reverse Cuthill–McKee ordering: a breadth-first relabelling from a
//! peripheral vertex, with neighbours visited in increasing-degree order and
//! the result reversed. For ladder/path-like graphs it recovers a bandwidth
//! that is a small constant, which is what lets the banded solver in
//! [`crate::banded`] replace the dense one.

use std::collections::VecDeque;

/// Computes the reverse Cuthill–McKee permutation of a symmetric sparsity
/// pattern.
///
/// `adjacency[v]` lists the neighbours of vertex `v` (self-loops and
/// duplicates are tolerated). Returns `perm` with `perm[old] = new`: vertex
/// `old` moves to position `new` in the relabelled matrix. Disconnected
/// components are each ordered in turn, so the result is always a complete
/// permutation of `0..n`.
///
/// # Panics
///
/// Panics if `adjacency.len() != n` or a neighbour index is out of range.
pub fn reverse_cuthill_mckee(n: usize, adjacency: &[Vec<usize>]) -> Vec<usize> {
    assert_eq!(adjacency.len(), n, "adjacency list length must equal vertex count");
    let degree: Vec<usize> = adjacency.iter().map(Vec::len).collect();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    let mut neighbours: Vec<usize> = Vec::new();

    for start in pseudo_peripheral_candidates(n, &degree) {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbours.clear();
            for &w in &adjacency[v] {
                assert!(w < n, "adjacency index out of range");
                if !visited[w] {
                    visited[w] = true;
                    neighbours.push(w);
                }
            }
            neighbours.sort_by_key(|&w| degree[w]);
            queue.extend(neighbours.iter().copied());
        }
    }

    // Reverse Cuthill–McKee: reversing the BFS order further reduces the
    // profile without changing the bandwidth.
    order.reverse();
    let mut perm = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old] = new;
    }
    perm
}

/// Start-vertex candidates: every vertex, lowest degree first, so each
/// component's breadth-first search starts from a (pseudo-)peripheral vertex.
fn pseudo_peripheral_candidates(n: usize, degree: &[usize]) -> Vec<usize> {
    let mut candidates: Vec<usize> = (0..n).collect();
    candidates.sort_by_key(|&v| degree[v]);
    candidates
}

/// Scatters a vector into permuted order: `out[perm[i]] = src[i]`.
///
/// # Panics
///
/// Panics if `src.len() != perm.len()`; `perm` must be a permutation of
/// `0..perm.len()`.
pub fn scatter<T: Copy>(perm: &[usize], src: &[T]) -> Vec<T> {
    assert_eq!(src.len(), perm.len(), "vector length must equal permutation length");
    // Seeding with a copy avoids a zero/default bound; every slot is
    // overwritten because `perm` is a bijection.
    let mut out = src.to_vec();
    for (i, &v) in src.iter().enumerate() {
        out[perm[i]] = v;
    }
    out
}

/// Gathers a vector back from permuted order: `out[i] = src[perm[i]]`.
///
/// Inverse of [`scatter`].
///
/// # Panics
///
/// Panics if `src.len() != perm.len()`.
pub fn gather<T: Copy>(perm: &[usize], src: &[T]) -> Vec<T> {
    assert_eq!(src.len(), perm.len(), "vector length must equal permutation length");
    let mut out = src.to_vec();
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = src[perm[i]];
    }
    out
}

/// Computes the lower and upper bandwidth of a pattern under a permutation.
///
/// `entries` iterates the nonzero positions `(row, col)` of the matrix;
/// `perm[old] = new` is the relabelling (use the identity to measure the
/// natural bandwidth). Returns `(kl, ku)`.
pub fn permuted_bandwidth(
    entries: impl IntoIterator<Item = (usize, usize)>,
    perm: &[usize],
) -> (usize, usize) {
    let mut kl = 0usize;
    let mut ku = 0usize;
    for (row, col) in entries {
        let (r, c) = (perm[row], perm[col]);
        if r > c {
            kl = kl.max(r - c);
        } else {
            ku = ku.max(c - r);
        }
    }
    (kl, ku)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(perm: &[usize]) -> bool {
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }

    #[test]
    fn path_graph_keeps_unit_bandwidth() {
        // 0 - 1 - 2 - 3 - 4
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]];
        let perm = reverse_cuthill_mckee(5, &adj);
        assert!(is_permutation(&perm));
        let entries: Vec<(usize, usize)> = (0..4).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
        let (kl, ku) = permuted_bandwidth(entries, &perm);
        assert_eq!((kl, ku), (1, 1));
    }

    #[test]
    fn scrambled_path_is_recovered() {
        // A path whose vertices are labelled badly: 0 - 4 - 2 - 5 - 1 - 3.
        let chain = [0usize, 4, 2, 5, 1, 3];
        let mut adj = vec![Vec::new(); 6];
        for w in chain.windows(2) {
            adj[w[0]].push(w[1]);
            adj[w[1]].push(w[0]);
        }
        let perm = reverse_cuthill_mckee(6, &adj);
        assert!(is_permutation(&perm));
        let entries: Vec<(usize, usize)> =
            chain.windows(2).flat_map(|w| [(w[0], w[1]), (w[1], w[0])]).collect();
        // Natural bandwidth is terrible…
        let identity: Vec<usize> = (0..6).collect();
        let (nkl, _) = permuted_bandwidth(entries.iter().copied(), &identity);
        assert!(nkl >= 3);
        // …but RCM restores the unit band.
        let (kl, ku) = permuted_bandwidth(entries, &perm);
        assert_eq!((kl, ku), (1, 1));
    }

    #[test]
    fn disconnected_components_are_all_ordered() {
        let adj = vec![vec![1], vec![0], vec![3], vec![2], vec![]];
        let perm = reverse_cuthill_mckee(5, &adj);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn empty_pattern_gives_identity_sized_permutation() {
        let adj = vec![Vec::new(); 4];
        let perm = reverse_cuthill_mckee(4, &adj);
        assert!(is_permutation(&perm));
        let (kl, ku) = permuted_bandwidth(std::iter::empty(), &perm);
        assert_eq!((kl, ku), (0, 0));
    }
}
