//! Dense row-major matrices over real or complex scalars.
//!
//! The circuit simulator builds modified-nodal-analysis systems that are small
//! (a few hundred unknowns for a finely segmented line), so a dense
//! representation with LU factorisation is simple and entirely adequate.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::complex::Complex;

/// Scalar types a [`Matrix`] can hold: `f64` or [`Complex`].
///
/// The trait is sealed in practice (only the two impls below exist); it gives
/// the LU factorisation a single generic implementation.
pub trait Scalar:
    Copy
    + PartialEq
    + fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivot selection.
    fn modulus(self) -> f64;
    /// Returns `true` if the value is finite.
    fn is_finite_scalar(self) -> bool;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for Complex {
    #[inline]
    fn zero() -> Self {
        Complex::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex::ONE
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

/// A dense `rows × cols` matrix stored in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data: vec![T::zero(); rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element accessor without bounds-checked tuple indexing sugar.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        self[(row, col)]
    }

    /// Sets a single element.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        self[(row, col)] = value;
    }

    /// Adds `value` to the element at `(row, col)` — the "stamping" operation
    /// used when assembling MNA matrices.
    #[inline]
    pub fn add_at(&mut self, row: usize, col: usize, value: T) {
        let cur = self[(row, col)];
        self[(row, col)] = cur + value;
    }

    /// Fills the whole matrix with zeros, keeping its allocation.
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = T::zero();
        }
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "vector length must equal column count");
        let mut y = vec![T::zero(); self.rows];
        for i in 0..self.rows {
            let mut acc = T::zero();
            for j in 0..self.cols {
                acc = acc + self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn mul_mat(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                for j in 0..other.cols {
                    out[(i, j)] = out[(i, j)] + a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite_scalar())
    }

    /// Maximum element magnitude (infinity norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.modulus()).fold(0.0, f64::max)
    }

    /// Induced ∞-norm `‖A‖∞` — the maximum row sum of moduli.
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)].modulus()).sum())
            .fold(0.0, f64::max)
    }

    /// Induced 1-norm `‖A‖₁` — the maximum column sum of moduli.
    pub fn norm_one(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].modulus()).sum())
            .fold(0.0, f64::max)
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl<T: Scalar> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:?}", self[(i, j)])?;
                if j + 1 < self.cols {
                    write!(f, "  ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::<f64>::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(!m.is_square());
        m[(0, 1)] = 5.0;
        m.set(1, 2, -2.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m[(1, 2)], -2.0);
        m.add_at(0, 1, 1.5);
        assert_eq!(m[(0, 1)], 6.5);
        m.clear();
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let m = Matrix::<f64>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        let _ = Matrix::<f64>::zeros(0, 3);
    }

    #[test]
    fn identity_and_multiplication() {
        let i3 = Matrix::<f64>::identity(3);
        let a = Matrix::from_rows(3, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        assert_eq!(a.mul_mat(&i3), a);
        assert_eq!(i3.mul_mat(&a), a);
        let x = vec![1.0, 0.0, -1.0];
        let y = a.mul_vec(&x);
        assert_eq!(y, vec![-2.0, -2.0, -3.0]);
    }

    #[test]
    fn transpose() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn complex_matrices() {
        let j = Complex::J;
        let a = Matrix::from_rows(2, 2, vec![Complex::ONE, j, -j, Complex::ONE]);
        let v = a.mul_vec(&[Complex::ONE, Complex::ONE]);
        assert_eq!(v[0], Complex::new(1.0, 1.0));
        assert_eq!(v[1], Complex::new(1.0, -1.0));
        assert!(a.is_finite());
        assert!((a.max_abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn finiteness_detection() {
        let mut m = Matrix::<f64>::zeros(2, 2);
        assert!(m.is_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn display_runs() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = format!("{a}");
        assert!(s.contains("1.0"));
        assert!(s.lines().count() >= 2);
    }
}
