//! Small polynomial utilities.
//!
//! Transfer-function denominators truncated to a few terms are low-order
//! polynomials in `s`; this module provides evaluation, differentiation,
//! closed-form roots for the quadratic case (the two-pole approximation used
//! by the analytic step-response model) and general roots via the companion
//! matrix and the [`crate::eig`] QR eigensolver — the path reduced-order
//! denominators of any order take.
//!
//! Repeated and nearly repeated roots are first-class here: a symmetric bus
//! reduces to modal lines whose poles can coincide to many digits, which
//! makes downstream partial-fraction (Vandermonde) solves singular.
//! [`separate_clustered`] applies the standard remedy — a tiny, deterministic
//! relative perturbation that splits each cluster while staying inside the
//! accuracy the roots were computed to.

use crate::complex::Complex;
use crate::eig::{eigenvalues, EigError};
use crate::matrix::Matrix;

/// A polynomial with real coefficients, stored lowest degree first:
/// `coeffs[0] + coeffs[1]·x + coeffs[2]·x² + …`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending-degree order.
    ///
    /// Trailing zero coefficients are trimmed; the zero polynomial keeps a
    /// single zero coefficient.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut c = coeffs;
        while c.len() > 1 && c.last() == Some(&0.0) {
            c.pop();
        }
        if c.is_empty() {
            c.push(0.0);
        }
        Self { coeffs: c }
    }

    /// The constant polynomial `value`.
    pub fn constant(value: f64) -> Self {
        Self::new(vec![value])
    }

    /// Coefficients in ascending-degree order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree of the polynomial (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the polynomial at a real argument using Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates the polynomial at a complex argument.
    pub fn eval_complex(&self, x: Complex) -> Complex {
        self.coeffs.iter().rev().fold(Complex::ZERO, |acc, &c| acc * x + c)
    }

    /// First derivative.
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::constant(0.0);
        }
        let d = self.coeffs.iter().enumerate().skip(1).map(|(i, &c)| c * i as f64).collect();
        Self::new(d)
    }

    /// Roots of a quadratic `c0 + c1 x + c2 x² = 0` as complex numbers.
    ///
    /// Returns `None` if the polynomial is not degree 2.
    pub fn quadratic_roots(&self) -> Option<(Complex, Complex)> {
        if self.degree() != 2 {
            return None;
        }
        let (c, b, a) = (self.coeffs[0], self.coeffs[1], self.coeffs[2]);
        let disc = b * b - 4.0 * a * c;
        if disc >= 0.0 {
            let sq = disc.sqrt();
            // Numerically stable form avoiding cancellation.
            let q = -0.5 * (b + b.signum() * sq);
            let r1 = if a != 0.0 { q / a } else { f64::INFINITY };
            let r2 = if q != 0.0 { c / q } else { 0.0 };
            Some((Complex::from_real(r1), Complex::from_real(r2)))
        } else {
            let sq = (-disc).sqrt();
            let re = -b / (2.0 * a);
            let im = sq / (2.0 * a);
            Some((Complex::new(re, im), Complex::new(re, -im)))
        }
    }

    /// All complex roots of the polynomial, via the companion matrix and the
    /// QR eigensolver.
    ///
    /// Degree 0 returns an empty list; degrees 1 and 2 use closed forms.
    /// Repeated roots are returned with their multiplicity (clustered to the
    /// accuracy the eigensolver achieves — `O(ε^{1/m})` for an `m`-fold root,
    /// the intrinsic conditioning of defective eigenvalues).
    ///
    /// # Errors
    ///
    /// Returns [`EigError::NonFinite`] if any coefficient is non-finite, and
    /// propagates a (pathological) QR convergence failure.
    pub fn roots(&self) -> Result<Vec<Complex>, EigError> {
        if self.coeffs.iter().any(|c| !c.is_finite()) {
            return Err(EigError::NonFinite);
        }
        let n = self.degree();
        if n == 0 {
            return Ok(Vec::new());
        }
        let lead = *self.coeffs.last().expect("non-empty coefficients");
        if n == 1 {
            return Ok(vec![Complex::from_real(-self.coeffs[0] / lead)]);
        }
        if n == 2 {
            let (r1, r2) = self.quadratic_roots().expect("degree checked");
            return Ok(vec![r1, r2]);
        }
        // Companion matrix of the monic polynomial: already upper Hessenberg,
        // so the eigensolver skips straight to the QR iteration.
        let mut companion = Matrix::zeros(n, n);
        for i in 1..n {
            companion[(i, i - 1)] = 1.0;
        }
        for i in 0..n {
            companion[(i, n - 1)] = -self.coeffs[i] / lead;
        }
        eigenvalues(&companion)
    }
}

/// Splits clusters of (nearly) coincident complex values by a deterministic
/// relative perturbation, so downstream partial-fraction / Vandermonde
/// solves stay non-singular.
///
/// Two values belong to the same cluster when their distance is below
/// `rel_tol` times the largest magnitude in the set (with an absolute floor
/// of `rel_tol` for all-zero inputs). Each cluster member `k = 0, 1, 2, …`
/// is nudged by `k · spread` along the real axis, where `spread` is the
/// cluster-splitting distance `rel_tol · scale`. Values already separated
/// are returned untouched.
///
/// The perturbation is the textbook AWE/pole-extraction workaround for
/// defective poles: a shift of the same order as the root-finding error
/// changes nothing physical but makes every pole simple again.
///
/// # Panics
///
/// Panics if `rel_tol` is not a positive finite number.
pub fn separate_clustered(values: &mut [Complex], rel_tol: f64) {
    assert!(rel_tol.is_finite() && rel_tol > 0.0, "cluster tolerance must be positive and finite");
    // The scale must come from the data itself: an absolute floor (e.g. 1.0)
    // would misclassify entire spectra of small-magnitude values — such as
    // circuit time constants in seconds — as one big cluster.
    let max_abs = values.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let scale = if max_abs > 0.0 { max_abs } else { 1.0 };
    let spread = rel_tol * scale;
    let n = values.len();
    // O(n²) pairwise pass: n is a reduction order here (tens at most).
    let mut cluster_rank = vec![0usize; n];
    for i in 0..n {
        for j in 0..i {
            if (values[i] - values[j]).abs() < spread {
                cluster_rank[i] = cluster_rank[i].max(cluster_rank[j] + 1);
            }
        }
    }
    for (v, &rank) in values.iter_mut().zip(cluster_rank.iter()) {
        if rank > 0 {
            *v += Complex::from_real(rank as f64 * spread);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_trims_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(5.0), 0.0);
    }

    #[test]
    fn evaluation() {
        // p(x) = 1 + 2x + 3x²
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 6.0);
        assert_eq!(p.eval(2.0), 17.0);
        let z = p.eval_complex(Complex::J);
        // 1 + 2j + 3(j²) = -2 + 2j
        assert!((z - Complex::new(-2.0, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn derivative() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0, 4.0]);
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[2.0, 6.0, 12.0]);
        assert_eq!(Polynomial::constant(7.0).derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn real_quadratic_roots() {
        // (x-1)(x-3) = 3 - 4x + x²
        let p = Polynomial::new(vec![3.0, -4.0, 1.0]);
        let (r1, r2) = p.quadratic_roots().unwrap();
        let mut roots = [r1.re, r2.re];
        roots.sort_by(f64::total_cmp);
        assert!((roots[0] - 1.0).abs() < 1e-12);
        assert!((roots[1] - 3.0).abs() < 1e-12);
        assert_eq!(r1.im, 0.0);
    }

    #[test]
    fn complex_quadratic_roots() {
        // x² + 2x + 5 → roots -1 ± 2j
        let p = Polynomial::new(vec![5.0, 2.0, 1.0]);
        let (r1, r2) = p.quadratic_roots().unwrap();
        assert!((r1.re + 1.0).abs() < 1e-12);
        assert!((r1.im.abs() - 2.0).abs() < 1e-12);
        assert!((r2 - r1.conj()).abs() < 1e-12);
    }

    #[test]
    fn quadratic_roots_wrong_degree() {
        assert!(Polynomial::new(vec![1.0, 1.0]).quadratic_roots().is_none());
        assert!(Polynomial::new(vec![1.0, 1.0, 1.0, 1.0]).quadratic_roots().is_none());
    }

    #[test]
    fn roots_satisfy_polynomial() {
        let p = Polynomial::new(vec![2.0, -3.0, 4.0]);
        let (r1, r2) = p.quadratic_roots().unwrap();
        for r in [r1, r2] {
            assert!(p.eval_complex(r).abs() < 1e-10);
        }
    }

    #[test]
    fn general_roots_by_companion_matrix() {
        // (x−1)(x−2)(x−3)(x+4) = x⁴ − 2x³ − 13x² + 38x − 24.
        let p = Polynomial::new(vec![-24.0, 38.0, -13.0, -2.0, 1.0]);
        let mut roots = p.roots().unwrap();
        roots.sort_by(|a, b| a.re.total_cmp(&b.re));
        let expected = [-4.0, 1.0, 2.0, 3.0];
        assert_eq!(roots.len(), 4);
        for (r, want) in roots.iter().zip(expected.iter()) {
            assert!((r.re - want).abs() < 1e-9 && r.im.abs() < 1e-9, "{r:?} vs {want}");
        }
    }

    #[test]
    fn low_degree_roots_use_closed_forms() {
        assert!(Polynomial::constant(5.0).roots().unwrap().is_empty());
        let linear = Polynomial::new(vec![6.0, -2.0]);
        let r = linear.roots().unwrap();
        assert_eq!(r.len(), 1);
        assert!((r[0].re - 3.0).abs() < 1e-15);
        let quadratic = Polynomial::new(vec![5.0, 2.0, 1.0]); // roots −1 ± 2i
        let r = quadratic.roots().unwrap();
        assert!((r[0].re + 1.0).abs() < 1e-12 && (r[0].im.abs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn defective_double_root_regression() {
        // (x−1)²: a defective companion matrix. Roots must both land near 1
        // within the O(√ε) conditioning of a double eigenvalue.
        let p = Polynomial::new(vec![1.0, -2.0, 1.0]);
        for r in p.roots().unwrap() {
            assert!((r - Complex::ONE).abs() < 1e-6, "double root drifted: {r:?}");
        }
        // (x−2)³: triple root, O(ε^{1/3}) conditioning.
        let p = Polynomial::new(vec![-8.0, 12.0, -6.0, 1.0]);
        let roots = p.roots().unwrap();
        assert_eq!(roots.len(), 3);
        for r in roots {
            assert!((r - Complex::from_real(2.0)).abs() < 1e-4, "triple root drifted: {r:?}");
        }
    }

    #[test]
    fn near_repeated_roots_regression() {
        // (x − 1)(x − 1.000001): nearly defective; both roots must still be
        // recovered to far better than their separation.
        let a = 1.0;
        let b = 1.000001;
        let p = Polynomial::new(vec![a * b, -(a + b), 1.0]);
        let mut roots = p.roots().unwrap();
        roots.sort_by(|x, y| x.re.total_cmp(&y.re));
        assert!((roots[0].re - a).abs() < 1e-9);
        assert!((roots[1].re - b).abs() < 1e-9);
    }

    #[test]
    fn non_finite_coefficients_are_typed_errors() {
        let p = Polynomial::new(vec![1.0, f64::NAN, 1.0, 2.0]);
        assert!(matches!(p.roots(), Err(EigError::NonFinite)));
    }

    #[test]
    fn separate_clustered_splits_coincident_values() {
        let mut v = vec![
            Complex::from_real(5.0),
            Complex::from_real(5.0),
            Complex::from_real(5.0),
            Complex::from_real(-1.0),
        ];
        separate_clustered(&mut v, 1e-9);
        // Every pair is now distinct…
        for i in 0..v.len() {
            for j in 0..i {
                assert!((v[i] - v[j]).abs() > 0.0, "pair ({i},{j}) still coincident");
            }
        }
        // …but nothing moved more than a few parts in 1e9.
        assert!((v[0] - Complex::from_real(5.0)).abs() < 1e-7);
        assert!((v[2] - Complex::from_real(5.0)).abs() < 1e-7);
        // The isolated value is untouched exactly.
        assert_eq!(v[3], Complex::from_real(-1.0));
    }

    #[test]
    fn separate_clustered_leaves_separated_values_alone() {
        let original =
            vec![Complex::new(1.0, 2.0), Complex::new(-3.0, 0.0), Complex::new(1.0, -2.0)];
        let mut v = original.clone();
        separate_clustered(&mut v, 1e-9);
        assert_eq!(v, original);
    }

    #[test]
    fn separate_clustered_scales_to_small_magnitudes() {
        // Regression: circuit time constants live around 1e-10 s. A spectrum
        // of well-separated tiny values must NOT be treated as one cluster
        // (an absolute scale floor once did exactly that), while true
        // duplicates at that magnitude must still split.
        let original =
            vec![Complex::from_real(1e-10), Complex::from_real(2e-10), Complex::from_real(3e-10)];
        let mut v = original.clone();
        separate_clustered(&mut v, 1e-8);
        assert_eq!(v, original, "well-separated small values must be untouched");
        let mut dup =
            vec![Complex::from_real(1e-10), Complex::from_real(1e-10), Complex::from_real(5e-10)];
        separate_clustered(&mut dup, 1e-8);
        assert!((dup[0] - dup[1]).abs() > 0.0, "tiny duplicates must still split");
        assert!((dup[1] - Complex::from_real(1e-10)).abs() < 1e-16, "split stays proportionate");
    }

    #[test]
    fn separate_clustered_handles_conjugate_pairs() {
        // A nearly repeated complex pair (two identical conjugate pairs, the
        // symmetric-bus stress case): all four must become distinct without
        // breaking which half-plane they sit in.
        let mut v = vec![
            Complex::new(-2.0, 3.0),
            Complex::new(-2.0, -3.0),
            Complex::new(-2.0, 3.0),
            Complex::new(-2.0, -3.0),
        ];
        separate_clustered(&mut v, 1e-8);
        for i in 0..v.len() {
            for j in 0..i {
                assert!((v[i] - v[j]).abs() > 0.0);
            }
        }
        assert!(v.iter().all(|z| z.re < 0.0), "stability must survive the perturbation");
    }
}
