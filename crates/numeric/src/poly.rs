//! Small polynomial utilities.
//!
//! Transfer-function denominators truncated to a few terms are low-order
//! polynomials in `s`; this module provides evaluation, differentiation and
//! closed-form roots for the quadratic case (the two-pole approximation used
//! by the analytic step-response model).

use crate::complex::Complex;

/// A polynomial with real coefficients, stored lowest degree first:
/// `coeffs[0] + coeffs[1]·x + coeffs[2]·x² + …`.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending-degree order.
    ///
    /// Trailing zero coefficients are trimmed; the zero polynomial keeps a
    /// single zero coefficient.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut c = coeffs;
        while c.len() > 1 && c.last() == Some(&0.0) {
            c.pop();
        }
        if c.is_empty() {
            c.push(0.0);
        }
        Self { coeffs: c }
    }

    /// The constant polynomial `value`.
    pub fn constant(value: f64) -> Self {
        Self::new(vec![value])
    }

    /// Coefficients in ascending-degree order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree of the polynomial (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the polynomial at a real argument using Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates the polynomial at a complex argument.
    pub fn eval_complex(&self, x: Complex) -> Complex {
        self.coeffs.iter().rev().fold(Complex::ZERO, |acc, &c| acc * x + c)
    }

    /// First derivative.
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::constant(0.0);
        }
        let d = self.coeffs.iter().enumerate().skip(1).map(|(i, &c)| c * i as f64).collect();
        Self::new(d)
    }

    /// Roots of a quadratic `c0 + c1 x + c2 x² = 0` as complex numbers.
    ///
    /// Returns `None` if the polynomial is not degree 2.
    pub fn quadratic_roots(&self) -> Option<(Complex, Complex)> {
        if self.degree() != 2 {
            return None;
        }
        let (c, b, a) = (self.coeffs[0], self.coeffs[1], self.coeffs[2]);
        let disc = b * b - 4.0 * a * c;
        if disc >= 0.0 {
            let sq = disc.sqrt();
            // Numerically stable form avoiding cancellation.
            let q = -0.5 * (b + b.signum() * sq);
            let r1 = if a != 0.0 { q / a } else { f64::INFINITY };
            let r2 = if q != 0.0 { c / q } else { 0.0 };
            Some((Complex::from_real(r1), Complex::from_real(r2)))
        } else {
            let sq = (-disc).sqrt();
            let re = -b / (2.0 * a);
            let im = sq / (2.0 * a);
            Some((Complex::new(re, im), Complex::new(re, -im)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_trims_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(5.0), 0.0);
    }

    #[test]
    fn evaluation() {
        // p(x) = 1 + 2x + 3x²
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 6.0);
        assert_eq!(p.eval(2.0), 17.0);
        let z = p.eval_complex(Complex::J);
        // 1 + 2j + 3(j²) = -2 + 2j
        assert!((z - Complex::new(-2.0, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn derivative() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0, 4.0]);
        let d = p.derivative();
        assert_eq!(d.coeffs(), &[2.0, 6.0, 12.0]);
        assert_eq!(Polynomial::constant(7.0).derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn real_quadratic_roots() {
        // (x-1)(x-3) = 3 - 4x + x²
        let p = Polynomial::new(vec![3.0, -4.0, 1.0]);
        let (r1, r2) = p.quadratic_roots().unwrap();
        let mut roots = [r1.re, r2.re];
        roots.sort_by(f64::total_cmp);
        assert!((roots[0] - 1.0).abs() < 1e-12);
        assert!((roots[1] - 3.0).abs() < 1e-12);
        assert_eq!(r1.im, 0.0);
    }

    #[test]
    fn complex_quadratic_roots() {
        // x² + 2x + 5 → roots -1 ± 2j
        let p = Polynomial::new(vec![5.0, 2.0, 1.0]);
        let (r1, r2) = p.quadratic_roots().unwrap();
        assert!((r1.re + 1.0).abs() < 1e-12);
        assert!((r1.im.abs() - 2.0).abs() < 1e-12);
        assert!((r2 - r1.conj()).abs() < 1e-12);
    }

    #[test]
    fn quadratic_roots_wrong_degree() {
        assert!(Polynomial::new(vec![1.0, 1.0]).quadratic_roots().is_none());
        assert!(Polynomial::new(vec![1.0, 1.0, 1.0, 1.0]).quadratic_roots().is_none());
    }

    #[test]
    fn roots_satisfy_polynomial() {
        let p = Polynomial::new(vec![2.0, -3.0, 4.0]);
        let (r1, r2) = p.quadratic_roots().unwrap();
        for r in [r1, r2] {
            assert!(p.eval_complex(r).abs() < 1e-10);
        }
    }
}
