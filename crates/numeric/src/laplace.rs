//! Numerical inverse Laplace transforms.
//!
//! The exact transfer function of a lossy transmission line (Eq. (1) of the
//! paper) is easy to evaluate at a complex frequency but has no elementary
//! time-domain form. These routines recover `f(t)` from `F(s)` numerically:
//!
//! * [`talbot`] — the fixed-Talbot contour method of Abate & Valkó. Handles
//!   oscillatory (underdamped) responses well and is the default choice for
//!   evaluating step responses of RLC lines.
//! * [`stehfest`] — the Gaver–Stehfest algorithm. Only real-axis samples of
//!   `F(s)` are needed, but the method silently damps oscillations, so it is
//!   offered mainly as a cross-check for overdamped responses.

use std::error::Error;
use std::fmt;

use crate::complex::Complex;

/// Error returned by the checked inverse-Laplace entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum LaplaceError {
    /// A time argument was NaN or infinite, or the horizon was non-positive.
    InvalidTime {
        /// The offending time value.
        value: f64,
    },
    /// The sampling configuration is unusable (zero samples, too few terms).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for LaplaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidTime { value } => {
                write!(f, "invalid time for Laplace inversion: {value}")
            }
            Self::InvalidConfig { reason } => write!(f, "invalid inversion config: {reason}"),
        }
    }
}

impl Error for LaplaceError {}

/// Inverts a Laplace transform at time `t` using the fixed-Talbot method.
///
/// `transform` evaluates `F(s)` at a complex frequency. `terms` controls the
/// number of contour nodes `M`; 32 is accurate to ~10 significant digits for
/// smooth transforms and is a good default.
///
/// Returns `0.0` for `t <= 0`, consistent with causal transforms.
///
/// # Panics
///
/// Panics if `terms < 2`.
///
/// # Example
///
/// ```
/// use rlckit_numeric::complex::Complex;
/// use rlckit_numeric::laplace::talbot;
///
/// // F(s) = 1 / (s + 1)  ⇒  f(t) = e^{-t}
/// let f = |s: Complex| (s + 1.0).recip();
/// let value = talbot(f, 1.0, 32);
/// assert!((value - (-1.0f64).exp()).abs() < 1e-8);
/// ```
pub fn talbot<F>(transform: F, t: f64, terms: usize) -> f64
where
    F: Fn(Complex) -> Complex,
{
    assert!(terms >= 2, "talbot requires at least 2 terms");
    if t <= 0.0 {
        return 0.0;
    }
    let m = terms;
    let r = 2.0 * m as f64 / (5.0 * t);

    // k = 0 term: s = r (the contour's real-axis crossing).
    let mut sum = 0.5 * (transform(Complex::from_real(r)) * (r * t).exp()).re;

    for k in 1..m {
        let theta = k as f64 * std::f64::consts::PI / m as f64;
        let cot = 1.0 / theta.tan();
        // Talbot contour point s(θ) = r·θ·(cot θ + j).
        let s = Complex::new(r * theta * cot, r * theta);
        // Direction factor σ(θ) = θ + (θ·cot θ − 1)·cot θ.
        let sigma = theta + (theta * cot - 1.0) * cot;
        let term = (s * t).exp() * transform(s) * Complex::new(1.0, sigma);
        sum += term.re;
    }
    r / m as f64 * sum
}

/// Inverts a Laplace transform at time `t` using the Gaver–Stehfest algorithm.
///
/// `terms` must be an even number; 12–16 is typical (larger values amplify
/// rounding error). Only real values of `s` are probed.
///
/// Returns `0.0` for `t <= 0`.
///
/// # Panics
///
/// Panics if `terms` is odd or smaller than 2.
pub fn stehfest<F>(transform: F, t: f64, terms: usize) -> f64
where
    F: Fn(f64) -> f64,
{
    assert!(
        terms >= 2 && terms.is_multiple_of(2),
        "stehfest requires an even number of terms >= 2"
    );
    if t <= 0.0 {
        return 0.0;
    }
    let coeffs = stehfest_coefficients(terms);
    let ln2_over_t = std::f64::consts::LN_2 / t;
    let mut sum = 0.0;
    for (k, vk) in coeffs.iter().enumerate() {
        let s = (k + 1) as f64 * ln2_over_t;
        sum += vk * transform(s);
    }
    ln2_over_t * sum
}

/// Stehfest weights `V_k` for `k = 1..=n`.
fn stehfest_coefficients(n: usize) -> Vec<f64> {
    let half = n / 2;
    let mut v = vec![0.0f64; n];
    for (idx, vk) in v.iter_mut().enumerate() {
        let k = idx + 1;
        let mut sum = 0.0;
        let j_lo = k.div_ceil(2);
        let j_hi = k.min(half);
        for j in j_lo..=j_hi {
            let num = (j as f64).powi(half as i32) * factorial(2 * j);
            let den = factorial(half - j)
                * factorial(j)
                * factorial(j - 1)
                * factorial(k - j)
                * factorial(2 * j - k);
            sum += num / den;
        }
        let sign = if (k + half).is_multiple_of(2) { 1.0 } else { -1.0 };
        *vk = sign * sum;
    }
    v
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|i| i as f64).product()
}

/// Samples the step response `L^{-1}[F(s)/s](t)` of a transfer function on a
/// uniform time grid using the Talbot method.
///
/// This is the bridge between the frequency-domain two-port description of a
/// transmission line and a time-domain waveform: the transfer function is
/// multiplied by `1/s` (a unit step input) and inverted at each sample time.
///
/// Returns `(times, values)` with `samples + 1` points from `0` to `t_end`.
///
/// # Errors
///
/// Returns [`LaplaceError::InvalidTime`] if `t_end` is not a positive finite
/// number (NaN and infinity included — the non-finite-input guard shared by
/// the model-order-reduction entry points) and [`LaplaceError::InvalidConfig`]
/// if `samples == 0` or `terms < 2`.
pub fn step_response_samples<F>(
    transfer: F,
    t_end: f64,
    samples: usize,
    terms: usize,
) -> Result<(Vec<f64>, Vec<f64>), LaplaceError>
where
    F: Fn(Complex) -> Complex,
{
    if !t_end.is_finite() || !(t_end > 0.0) {
        return Err(LaplaceError::InvalidTime { value: t_end });
    }
    if samples == 0 {
        return Err(LaplaceError::InvalidConfig { reason: "at least one sample is required" });
    }
    if terms < 2 {
        return Err(LaplaceError::InvalidConfig { reason: "talbot requires at least 2 terms" });
    }
    let mut times = Vec::with_capacity(samples + 1);
    let mut values = Vec::with_capacity(samples + 1);
    for i in 0..=samples {
        let t = t_end * i as f64 / samples as f64;
        times.push(t);
        if i == 0 {
            values.push(0.0);
        } else {
            let v = talbot(|s| transfer(s) / s, t, terms);
            values.push(v);
        }
    }
    Ok((times, values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn talbot_exponential_decay() {
        let f = |s: Complex| (s + 2.0).recip();
        for &t in &[0.1, 0.5, 1.0, 3.0] {
            let got = talbot(f, t, 32);
            let want = (-2.0 * t).exp();
            assert!((got - want).abs() < 1e-8, "t = {t}: got {got}, want {want}");
        }
    }

    #[test]
    fn talbot_damped_oscillation() {
        // F(s) = ω / ((s+a)² + ω²)  ⇒  f(t) = e^{-a t} sin(ω t)
        let (a, w) = (0.4, 3.0);
        let f = move |s: Complex| {
            let sa = s + a;
            Complex::from_real(w) / (sa * sa + w * w)
        };
        for &t in &[0.2, 0.7, 1.3, 2.9] {
            let got = talbot(f, t, 40);
            let want = (-a * t).exp() * (w * t).sin();
            assert!((got - want).abs() < 1e-7, "t = {t}: got {got}, want {want}");
        }
    }

    #[test]
    fn talbot_second_order_step_underdamped() {
        // Unit step through H(s) = 1/(s² + 2ζs + 1) with ζ = 0.3:
        // y(t) = 1 − e^{−ζt}( cos(ωd t) + ζ/ωd sin(ωd t) ), ωd = sqrt(1−ζ²).
        let zeta: f64 = 0.3;
        let wd = (1.0 - zeta * zeta).sqrt();
        let h = move |s: Complex| (s * s + 2.0 * zeta * s + 1.0).recip();
        for &t in &[0.5, 1.5, 3.0, 6.0, 10.0] {
            let got = talbot(|s| h(s) / s, t, 40);
            let want = 1.0 - (-zeta * t).exp() * ((wd * t).cos() + zeta / wd * (wd * t).sin());
            assert!((got - want).abs() < 1e-6, "t = {t}: got {got}, want {want}");
        }
    }

    #[test]
    fn talbot_at_non_positive_time_is_zero() {
        let f = |s: Complex| s.recip();
        assert_eq!(talbot(f, 0.0, 16), 0.0);
        assert_eq!(talbot(f, -1.0, 16), 0.0);
    }

    #[test]
    #[should_panic]
    fn talbot_too_few_terms_panics() {
        let _ = talbot(|s| s.recip(), 1.0, 1);
    }

    #[test]
    fn stehfest_exponential_decay() {
        let f = |s: f64| 1.0 / (s + 1.0);
        for &t in &[0.3, 1.0, 2.0] {
            let got = stehfest(f, t, 14);
            let want = (-t).exp();
            assert!((got - want).abs() < 1e-4, "t = {t}: got {got}, want {want}");
        }
    }

    #[test]
    fn stehfest_ramp() {
        // F(s) = 1/s²  ⇒  f(t) = t
        let f = |s: f64| 1.0 / (s * s);
        let got = stehfest(f, 2.5, 12);
        assert!((got - 2.5).abs() < 1e-4);
    }

    #[test]
    fn stehfest_zero_time() {
        assert_eq!(stehfest(|s| 1.0 / s, 0.0, 12), 0.0);
    }

    #[test]
    #[should_panic]
    fn stehfest_odd_terms_panics() {
        let _ = stehfest(|s| 1.0 / s, 1.0, 7);
    }

    #[test]
    fn stehfest_coefficients_sum_to_zero() {
        // A classic sanity property: Σ V_k = 0 for the Stehfest weights.
        for n in [8usize, 12, 16] {
            let sum: f64 = stehfest_coefficients(n).iter().sum();
            assert!(sum.abs() < 1e-4, "n = {n}: sum = {sum}");
        }
    }

    #[test]
    fn talbot_and_stehfest_agree_on_smooth_transform() {
        // Overdamped RC-like response where both methods are reliable.
        let fc = |s: Complex| (s * 0.5 + 1.0).recip();
        let fr = |s: f64| 1.0 / (0.5 * s + 1.0);
        for &t in &[0.2, 1.0, 2.0] {
            let a = talbot(|s| fc(s) / s, t, 32);
            let b = stehfest(|s| fr(s) / s, t, 14);
            assert!((a - b).abs() < 1e-4, "t = {t}: talbot {a}, stehfest {b}");
        }
    }

    #[test]
    fn step_response_sampling_monotone_grid() {
        let h = |s: Complex| (s + 1.0).recip();
        let (times, values) = step_response_samples(h, 5.0, 50, 32).unwrap();
        assert_eq!(times.len(), 51);
        assert_eq!(values.len(), 51);
        assert_eq!(times[0], 0.0);
        assert_eq!(values[0], 0.0);
        assert!((times[50] - 5.0).abs() < 1e-12);
        // 1 − e^{−5} ≈ 0.9933
        assert!((values[50] - (1.0 - (-5.0f64).exp())).abs() < 1e-6);
        // Monotone non-decreasing for a first-order lag.
        for w in values.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn step_response_invalid_inputs_are_typed_errors() {
        // Previously these were panics; the satellite hardening turned them
        // into typed errors matching the SourceWaveform::validate convention.
        assert!(matches!(
            step_response_samples(|s| s.recip(), 0.0, 10, 16),
            Err(LaplaceError::InvalidTime { value }) if value == 0.0
        ));
        assert!(matches!(
            step_response_samples(|s| s.recip(), f64::NAN, 10, 16),
            Err(LaplaceError::InvalidTime { .. })
        ));
        assert!(matches!(
            step_response_samples(|s| s.recip(), f64::INFINITY, 10, 16),
            Err(LaplaceError::InvalidTime { .. })
        ));
        assert!(matches!(
            step_response_samples(|s| s.recip(), 1.0, 0, 16),
            Err(LaplaceError::InvalidConfig { .. })
        ));
        assert!(matches!(
            step_response_samples(|s| s.recip(), 1.0, 10, 1),
            Err(LaplaceError::InvalidConfig { .. })
        ));
        let e = LaplaceError::InvalidTime { value: f64::NAN };
        assert!(e.to_string().contains("invalid time"));
        assert!(LaplaceError::InvalidConfig { reason: "x" }.to_string().contains('x'));
    }
}
