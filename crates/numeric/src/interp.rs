//! Interpolation and threshold-crossing search on sampled data.
//!
//! Transient simulation produces waveforms sampled on a time grid; the 50%
//! propagation delay is the time at which the output first crosses half the
//! supply. These helpers perform that search with linear interpolation
//! between samples.

use std::error::Error;
use std::fmt;

/// Error returned by the interpolation helpers.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// The abscissa and ordinate slices have different lengths or are empty.
    LengthMismatch {
        /// Length of the x slice.
        x_len: usize,
        /// Length of the y slice.
        y_len: usize,
    },
    /// The abscissas are not strictly increasing.
    NotIncreasing,
    /// The query lies outside the sampled range.
    OutOfRange {
        /// The query abscissa.
        x: f64,
    },
    /// The requested threshold is never crossed by the samples.
    NoCrossing {
        /// The threshold that was searched for.
        threshold: f64,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { x_len, y_len } => {
                write!(f, "x and y must be non-empty and equal length (got {x_len} and {y_len})")
            }
            Self::NotIncreasing => write!(f, "abscissas must be strictly increasing"),
            Self::OutOfRange { x } => write!(f, "query {x} is outside the sampled range"),
            Self::NoCrossing { threshold } => {
                write!(f, "samples never cross the threshold {threshold}")
            }
        }
    }
}

impl Error for InterpError {}

fn validate(x: &[f64], y: &[f64]) -> Result<(), InterpError> {
    if x.is_empty() || x.len() != y.len() {
        return Err(InterpError::LengthMismatch { x_len: x.len(), y_len: y.len() });
    }
    if x.windows(2).any(|w| w[1] <= w[0]) {
        return Err(InterpError::NotIncreasing);
    }
    Ok(())
}

/// Linearly interpolates `y(xq)` on the sampled curve `(x, y)`.
///
/// # Errors
///
/// Returns [`InterpError`] if the inputs are malformed or `xq` lies outside
/// `[x[0], x[last]]`.
pub fn linear(x: &[f64], y: &[f64], xq: f64) -> Result<f64, InterpError> {
    validate(x, y)?;
    let n = x.len();
    if xq < x[0] || xq > x[n - 1] {
        return Err(InterpError::OutOfRange { x: xq });
    }
    // Binary search for the containing interval.
    let idx = match x.binary_search_by(|v| v.partial_cmp(&xq).expect("finite abscissas")) {
        Ok(i) => return Ok(y[i]),
        Err(i) => i,
    };
    let (x0, x1) = (x[idx - 1], x[idx]);
    let (y0, y1) = (y[idx - 1], y[idx]);
    Ok(y0 + (y1 - y0) * (xq - x0) / (x1 - x0))
}

/// Finds the first upward crossing of `threshold` by the sampled curve,
/// interpolating linearly within the crossing interval.
///
/// "Upward" means the curve moves from below (or at) the threshold to above
/// it. Samples already above the threshold at the first point do not count as
/// a crossing until the curve drops below and rises again.
///
/// # Errors
///
/// Returns [`InterpError::NoCrossing`] if the threshold is never crossed, and
/// the validation errors of [`linear`] for malformed input.
pub fn first_rising_crossing(x: &[f64], y: &[f64], threshold: f64) -> Result<f64, InterpError> {
    validate(x, y)?;
    for i in 1..x.len() {
        let (y0, y1) = (y[i - 1], y[i]);
        if y0 <= threshold && y1 > threshold {
            if (y1 - y0).abs() < f64::EPSILON {
                return Ok(x[i]);
            }
            let frac = (threshold - y0) / (y1 - y0);
            return Ok(x[i - 1] + frac * (x[i] - x[i - 1]));
        }
    }
    Err(InterpError::NoCrossing { threshold })
}

/// Finds the last time the curve is *at or below* `threshold` before staying
/// above it for good — i.e. the final upward crossing.
///
/// Useful for ringing (underdamped) waveforms where the 50% level is crossed
/// several times: the settling-style delay is the last crossing.
///
/// # Errors
///
/// Same conditions as [`first_rising_crossing`].
pub fn last_rising_crossing(x: &[f64], y: &[f64], threshold: f64) -> Result<f64, InterpError> {
    validate(x, y)?;
    let mut last = None;
    for i in 1..x.len() {
        let (y0, y1) = (y[i - 1], y[i]);
        if y0 <= threshold && y1 > threshold {
            let frac =
                if (y1 - y0).abs() < f64::EPSILON { 1.0 } else { (threshold - y0) / (y1 - y0) };
            last = Some(x[i - 1] + frac * (x[i] - x[i - 1]));
        }
    }
    last.ok_or(InterpError::NoCrossing { threshold })
}

/// Peak (maximum) value of the samples and the abscissa where it occurs.
///
/// # Errors
///
/// Returns the validation errors of [`linear`] for malformed input.
pub fn peak(x: &[f64], y: &[f64]) -> Result<(f64, f64), InterpError> {
    validate(x, y)?;
    let mut best = (x[0], y[0]);
    for (xi, yi) in x.iter().zip(y.iter()) {
        if *yi > best.1 {
            best = (*xi, *yi);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolation() {
        let x = [0.0, 1.0, 2.0, 4.0];
        let y = [0.0, 10.0, 20.0, 0.0];
        assert_eq!(linear(&x, &y, 0.5).unwrap(), 5.0);
        assert_eq!(linear(&x, &y, 1.0).unwrap(), 10.0);
        assert_eq!(linear(&x, &y, 3.0).unwrap(), 10.0);
        assert_eq!(linear(&x, &y, 4.0).unwrap(), 0.0);
    }

    #[test]
    fn linear_out_of_range() {
        let x = [0.0, 1.0];
        let y = [0.0, 1.0];
        assert!(matches!(linear(&x, &y, -0.1), Err(InterpError::OutOfRange { .. })));
        assert!(matches!(linear(&x, &y, 1.1), Err(InterpError::OutOfRange { .. })));
    }

    #[test]
    fn malformed_inputs() {
        assert!(matches!(linear(&[], &[], 0.0), Err(InterpError::LengthMismatch { .. })));
        assert!(matches!(
            linear(&[0.0, 1.0], &[0.0], 0.5),
            Err(InterpError::LengthMismatch { .. })
        ));
        assert!(matches!(linear(&[0.0, 0.0], &[0.0, 1.0], 0.0), Err(InterpError::NotIncreasing)));
    }

    #[test]
    fn rising_crossing_simple() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 0.2, 0.8, 1.0];
        let t = first_rising_crossing(&x, &y, 0.5).unwrap();
        assert!((t - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rising_crossing_with_ringing() {
        // Crosses 0.5 upward at t=1, dips below at t=3, crosses again at t=5.
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [0.0, 0.5001, 1.2, 0.4, 0.45, 0.6, 1.0];
        let first = first_rising_crossing(&x, &y, 0.5).unwrap();
        assert!(first < 1.01);
        let last = last_rising_crossing(&x, &y, 0.5).unwrap();
        assert!((last - 4.0 - (0.5 - 0.45) / 0.15).abs() < 1e-9);
        assert!(last > first);
    }

    #[test]
    fn no_crossing_is_an_error() {
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 0.1, 0.2];
        assert!(matches!(first_rising_crossing(&x, &y, 0.5), Err(InterpError::NoCrossing { .. })));
        assert!(matches!(last_rising_crossing(&x, &y, 0.5), Err(InterpError::NoCrossing { .. })));
    }

    #[test]
    fn peak_detection() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 1.4, 1.1, 1.0];
        let (px, pv) = peak(&x, &y).unwrap();
        assert_eq!(px, 1.0);
        assert_eq!(pv, 1.4);
    }

    #[test]
    fn error_display() {
        assert!(InterpError::NoCrossing { threshold: 0.5 }.to_string().contains("0.5"));
        assert!(InterpError::NotIncreasing.to_string().contains("increasing"));
        assert!(InterpError::OutOfRange { x: 3.0 }.to_string().contains("3"));
        assert!(InterpError::LengthMismatch { x_len: 1, y_len: 2 }.to_string().contains("1"));
    }
}
