//! Small dense nonsymmetric eigensolver: Hessenberg reduction followed by
//! the implicitly shifted (Francis double-shift) QR iteration.
//!
//! Model-order reduction needs the eigenvalues of the reduced matrix
//! `Aᵣ = Gᵣ⁻¹Cᵣ` — a dense, nonsymmetric matrix of order `q` (a few dozen at
//! most). The classic EISPACK pipeline is exactly right at this size:
//!
//! 1. [`hessenberg`] — Householder similarity transforms bring the matrix to
//!    upper Hessenberg form in `O(n³)` without changing its eigenvalues;
//! 2. [`hessenberg_eigenvalues`] — the double-shift QR iteration deflates the
//!    Hessenberg matrix into `1×1` (real eigenvalue) and `2×2` (complex pair
//!    or real pair) blocks.
//!
//! [`eigenvalues`] chains the two. Complex eigenvalues of the real input
//! appear in conjugate pairs. The iteration uses the standard exceptional
//! shifts after 10 and 20 stalled sweeps and reports [`EigError::NoConvergence`]
//! after 30 per eigenvalue, which in practice only ever fires on adversarial
//! inputs.

use std::error::Error;
use std::fmt;

use crate::complex::Complex;
use crate::matrix::Matrix;

/// Error returned by the eigensolver.
#[derive(Debug, Clone, PartialEq)]
pub enum EigError {
    /// The input matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// The input contains NaN or infinite entries.
    NonFinite,
    /// The QR iteration failed to converge for some eigenvalue.
    NoConvergence {
        /// Index of the eigenvalue being isolated when iteration stalled.
        remaining: usize,
    },
}

impl fmt::Display for EigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotSquare { rows, cols } => {
                write!(f, "eigensolver requires a square matrix, got {rows}x{cols}")
            }
            Self::NonFinite => write!(f, "eigensolver input contains non-finite entries"),
            Self::NoConvergence { remaining } => {
                write!(f, "QR iteration did not converge ({remaining} eigenvalues unresolved)")
            }
        }
    }
}

impl Error for EigError {}

/// Reduces a square matrix to upper Hessenberg form by Householder
/// similarity transformations (eigenvalues are preserved).
///
/// # Errors
///
/// Returns [`EigError::NotSquare`] or [`EigError::NonFinite`] for invalid
/// input.
pub fn hessenberg(a: &Matrix<f64>) -> Result<Matrix<f64>, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    if !a.is_finite() {
        return Err(EigError::NonFinite);
    }
    let n = a.rows();
    let mut h = a.clone();
    if n < 3 {
        return Ok(h);
    }
    for k in 0..n - 2 {
        // Householder vector annihilating h[k+2.., k].
        let mut alpha = 0.0;
        for i in k + 1..n {
            alpha += h[(i, k)] * h[(i, k)];
        }
        if alpha == 0.0 {
            continue;
        }
        let pivot = h[(k + 1, k)];
        let mut alpha = alpha.sqrt();
        if pivot > 0.0 {
            alpha = -alpha;
        }
        let v0 = pivot - alpha;
        let mut v = vec![0.0; n];
        v[k + 1] = v0;
        for i in k + 2..n {
            v[i] = h[(i, k)];
        }
        let vtv = v.iter().map(|x| x * x).sum::<f64>();
        if vtv == 0.0 {
            continue;
        }
        let beta = 2.0 / vtv;
        // H ← (I − β v vᵀ) H
        for j in 0..n {
            let mut s = 0.0;
            for i in k + 1..n {
                s += v[i] * h[(i, j)];
            }
            let s = beta * s;
            for (i, &vi) in v.iter().enumerate().skip(k + 1) {
                h.add_at(i, j, -s * vi);
            }
        }
        // H ← H (I − β v vᵀ)
        for i in 0..n {
            let mut s = 0.0;
            for j in k + 1..n {
                s += h[(i, j)] * v[j];
            }
            let s = beta * s;
            for (j, &vj) in v.iter().enumerate().skip(k + 1) {
                h.add_at(i, j, -s * vj);
            }
        }
        // Clean the annihilated entries exactly.
        h[(k + 1, k)] = alpha;
        for i in k + 2..n {
            h[(i, k)] = 0.0;
        }
    }
    Ok(h)
}

/// Eigenvalues of an upper Hessenberg matrix via the Francis double-shift QR
/// iteration. Entries below the first subdiagonal are ignored.
///
/// # Errors
///
/// Returns [`EigError`] for invalid input or a (pathological) convergence
/// failure.
pub fn hessenberg_eigenvalues(hess: &Matrix<f64>) -> Result<Vec<Complex>, EigError> {
    if !hess.is_square() {
        return Err(EigError::NotSquare { rows: hess.rows(), cols: hess.cols() });
    }
    if !hess.is_finite() {
        return Err(EigError::NonFinite);
    }
    let n = hess.rows();
    let mut h = hess.clone();
    let mut eig: Vec<Complex> = Vec::with_capacity(n);

    // Norm used to judge negligible subdiagonals when a row pair is zero.
    let mut anorm = 0.0f64;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += h[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        return Ok(vec![Complex::ZERO; n]);
    }

    const EPS: f64 = f64::EPSILON;
    let mut t_shift = 0.0f64; // accumulated exceptional shifts
    let mut nn = n as isize - 1;
    while nn >= 0 {
        let mut its = 0;
        loop {
            // Find the smallest l such that h[l][l-1] is negligible.
            let mut l = nn;
            while l >= 1 {
                let s =
                    h[(l as usize - 1, l as usize - 1)].abs() + h[(l as usize, l as usize)].abs();
                let s = if s == 0.0 { anorm } else { s };
                if h[(l as usize, l as usize - 1)].abs() <= EPS * s {
                    h[(l as usize, l as usize - 1)] = 0.0;
                    break;
                }
                l -= 1;
            }
            let x = h[(nn as usize, nn as usize)];
            if l == nn {
                // One real eigenvalue deflated.
                eig.push(Complex::from_real(x + t_shift));
                nn -= 1;
                break;
            }
            let y = h[(nn as usize - 1, nn as usize - 1)];
            let w = h[(nn as usize, nn as usize - 1)] * h[(nn as usize - 1, nn as usize)];
            if l == nn - 1 {
                // A 2×2 block deflated: real pair or complex conjugate pair.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let z = q.abs().sqrt();
                let x = x + t_shift;
                if q >= 0.0 {
                    let z = p + z.copysign(if p == 0.0 { 1.0 } else { p });
                    eig.push(Complex::from_real(x + z));
                    if z != 0.0 {
                        eig.push(Complex::from_real(x - w / z));
                    } else {
                        eig.push(Complex::from_real(x));
                    }
                } else {
                    eig.push(Complex::new(x + p, z));
                    eig.push(Complex::new(x + p, -z));
                }
                nn -= 2;
                break;
            }
            // No deflation yet: one double-shift QR sweep.
            if its == 30 {
                return Err(EigError::NoConvergence { remaining: nn as usize + 1 });
            }
            let (mut x, mut y, mut w) = (x, y, w);
            if its == 10 || its == 20 {
                // Exceptional shift to break symmetric stalls.
                t_shift += x;
                for i in 0..=nn as usize {
                    h.add_at(i, i, -x);
                }
                let s = h[(nn as usize, nn as usize - 1)].abs()
                    + h[(nn as usize - 1, nn as usize - 2)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;

            // Look for two consecutive small subdiagonal elements.
            let mut m = nn - 2;
            let (mut p, mut q, mut r) = (0.0, 0.0, 0.0);
            while m >= l {
                let mu = m as usize;
                let z = h[(mu, mu)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / h[(mu + 1, mu)] + h[(mu, mu + 1)];
                q = h[(mu + 1, mu + 1)] - z - rr - ss;
                r = h[(mu + 2, mu + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = h[(mu, mu - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (h[(mu - 1, mu - 1)].abs() + z.abs() + h[(mu + 1, mu + 1)].abs());
                if u <= EPS * v {
                    break;
                }
                m -= 1;
            }
            let m = m.max(l) as usize;
            for i in m + 2..=nn as usize {
                h[(i, i - 2)] = 0.0;
                if i > m + 2 {
                    h[(i, i - 3)] = 0.0;
                }
            }
            // The sweep itself: chase the bulge from row m to nn-1.
            let l = l as usize;
            let nnu = nn as usize;
            for k in m..nnu {
                if k != m {
                    p = h[(k, k - 1)];
                    q = h[(k + 1, k - 1)];
                    r = if k != nnu - 1 { h[(k + 2, k - 1)] } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = (p * p + q * q + r * r).sqrt().copysign(if p == 0.0 { 1.0 } else { p });
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if l != m {
                        h[(k, k - 1)] = -h[(k, k - 1)];
                    }
                } else {
                    h[(k, k - 1)] = -s * x;
                }
                p += s;
                let x2 = p / s;
                let y2 = q / s;
                let z2 = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in k..=nnu {
                    let mut pp = h[(k, j)] + q * h[(k + 1, j)];
                    if k != nnu - 1 {
                        pp += r * h[(k + 2, j)];
                        h.add_at(k + 2, j, -pp * z2);
                    }
                    h.add_at(k + 1, j, -pp * y2);
                    h.add_at(k, j, -pp * x2);
                }
                // Column modification.
                let i_hi = nnu.min(k + 3);
                for i in l..=i_hi {
                    let mut pp = x2 * h[(i, k)] + y2 * h[(i, k + 1)];
                    if k != nnu - 1 {
                        pp += z2 * h[(i, k + 2)];
                        h.add_at(i, k + 2, -pp * r);
                    }
                    h.add_at(i, k + 1, -pp * q);
                    h.add_at(i, k, -pp);
                }
            }
        }
    }
    Ok(eig)
}

/// Eigenvalues of a general square real matrix ([`hessenberg`] followed by
/// [`hessenberg_eigenvalues`]).
///
/// The returned order is the deflation order of the QR iteration (not
/// sorted); complex eigenvalues come in conjugate pairs.
///
/// # Errors
///
/// Returns [`EigError`] for invalid input or convergence failure.
pub fn eigenvalues(a: &Matrix<f64>) -> Result<Vec<Complex>, EigError> {
    let h = hessenberg(a)?;
    hessenberg_eigenvalues(&h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_complex(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| a.re.total_cmp(&b.re).then(a.im.total_cmp(&b.im)));
        v
    }

    fn assert_spectrum(a: &Matrix<f64>, expected: &[Complex], tol: f64) {
        let got = sort_complex(eigenvalues(a).unwrap());
        let want = sort_complex(expected.to_vec());
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((*g - *w).abs() < tol, "eigenvalue {g:?} vs expected {w:?}");
        }
    }

    #[test]
    fn diagonal_matrix() {
        let mut a = Matrix::zeros(4, 4);
        for (i, v) in [3.0, -1.0, 0.5, 7.0].iter().enumerate() {
            a[(i, i)] = *v;
        }
        assert_spectrum(
            &a,
            &[
                Complex::from_real(3.0),
                Complex::from_real(-1.0),
                Complex::from_real(0.5),
                Complex::from_real(7.0),
            ],
            1e-12,
        );
    }

    #[test]
    fn rotation_matrix_has_complex_pair() {
        // 90° rotation: eigenvalues ±i.
        let a = Matrix::from_rows(2, 2, vec![0.0, -1.0, 1.0, 0.0]);
        assert_spectrum(&a, &[Complex::J, Complex::new(0.0, -1.0)], 1e-12);
    }

    #[test]
    fn companion_matrix_of_cubic() {
        // p(x) = x³ − 6x² + 11x − 6 = (x−1)(x−2)(x−3); companion matrix.
        let a = Matrix::from_rows(3, 3, vec![0.0, 0.0, 6.0, 1.0, 0.0, -11.0, 0.0, 1.0, 6.0]);
        assert_spectrum(
            &a,
            &[Complex::from_real(1.0), Complex::from_real(2.0), Complex::from_real(3.0)],
            1e-9,
        );
    }

    #[test]
    fn symmetric_matrix_eigenvalues_are_real() {
        // Known spectrum: 2x2 blocks [[2,1],[1,2]] → {1, 3}.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        assert_spectrum(&a, &[Complex::from_real(1.0), Complex::from_real(3.0)], 1e-12);
    }

    #[test]
    fn defective_jordan_block() {
        // Jordan block with eigenvalue 2 (algebraic multiplicity 3): the QR
        // iteration must still report three eigenvalues near 2 (they split by
        // O(eps^{1/3}), the well-known sensitivity of defective eigenvalues).
        let a = Matrix::from_rows(3, 3, vec![2.0, 1.0, 0.0, 0.0, 2.0, 1.0, 0.0, 0.0, 2.0]);
        let eig = eigenvalues(&a).unwrap();
        assert_eq!(eig.len(), 3);
        for e in eig {
            assert!((e - Complex::from_real(2.0)).abs() < 1e-4, "eigenvalue {e:?} far from 2");
        }
    }

    #[test]
    fn trace_and_determinant_are_preserved() {
        // Pseudo-random 6×6 matrix: Σλ = trace, Πλ = det (via char. poly).
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        let mut s = 1234567u64;
        for i in 0..n {
            for j in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                a[(i, j)] = ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        let eig = eigenvalues(&a).unwrap();
        let sum: Complex = eig.iter().fold(Complex::ZERO, |acc, &e| acc + e);
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        assert!((sum.re - trace).abs() < 1e-10, "Σλ {} vs trace {trace}", sum.re);
        assert!(sum.im.abs() < 1e-10, "eigenvalue sum must be real");
        let product: Complex = eig.iter().fold(Complex::ONE, |acc, &e| acc * e);
        let det = crate::lu::LuFactor::new(&a).map(|f| f.determinant()).unwrap_or(0.0);
        assert!((product.re - det).abs() < 1e-9 * det.abs().max(1.0));
    }

    #[test]
    fn hessenberg_preserves_the_spectrum_shape() {
        let a = Matrix::from_rows(
            4,
            4,
            vec![
                4.0, 1.0, -2.0, 2.0, 1.0, 2.0, 0.0, 1.0, -2.0, 0.0, 3.0, -2.0, 2.0, 1.0, -2.0, -1.0,
            ],
        );
        let h = hessenberg(&a).unwrap();
        // Hessenberg: zero below the first subdiagonal.
        for i in 2..4 {
            for j in 0..i - 1 {
                assert_eq!(h[(i, j)], 0.0, "({i},{j}) not annihilated");
            }
        }
        // Similarity: the trace is invariant.
        let ta: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let th: f64 = (0..4).map(|i| h[(i, i)]).sum();
        assert!((ta - th).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let rect = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(eigenvalues(&rect), Err(EigError::NotSquare { rows: 2, cols: 3 })));
        let mut nan = Matrix::<f64>::zeros(2, 2);
        nan[(0, 0)] = f64::NAN;
        assert!(matches!(eigenvalues(&nan), Err(EigError::NonFinite)));
        assert!(EigError::NoConvergence { remaining: 2 }.to_string().contains("converge"));
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::<f64>::zeros(3, 3);
        assert_spectrum(&a, &[Complex::ZERO; 3], 1e-15);
    }

    #[test]
    fn one_by_one() {
        let mut a = Matrix::zeros(1, 1);
        a[(0, 0)] = -4.5;
        assert_spectrum(&a, &[Complex::from_real(-4.5)], 1e-15);
    }
}
