//! Cheap a-posteriori accuracy diagnostics: normwise backward error and the
//! Hager–Higham 1-norm condition estimate.
//!
//! Both quantities are computable from artefacts the solver already has — a
//! retained copy of `A` for the residual, the LU factors for the condition
//! estimate — so they cost `O(nnz)` (one matrix–vector product) and `O(a few
//! solves)` respectively, never a new factorisation. They feed the
//! numerical-health monitors (`rlckit-telemetry`): a solve whose backward
//! error drifts above roundoff, or a factorisation whose condition estimate
//! approaches `1/ε`, is flagged long before the paper-level delay metrics
//! silently degrade.

use crate::matrix::Scalar;

/// Warning threshold for the per-solve backward error: a backward-stable
/// LU solve sits at a small multiple of `ε ≈ 2.2e-16`, so 1e-10 already
/// marks a solve that lost ~6 decades of stability headroom.
pub const BACKWARD_ERROR_WARN: f64 = 1e-10;
/// Error threshold for the per-solve backward error: at 1e-6 the computed
/// solution no longer solves anything close to the assembled system.
pub const BACKWARD_ERROR_ERROR: f64 = 1e-6;
/// Warning threshold for the 1-norm condition estimate: past 1e12 fewer
/// than four correct decimal digits survive a double-precision solve.
pub const CONDEST_WARN: f64 = 1e12;
/// Error threshold for the 1-norm condition estimate: past 1e15 the solve
/// is numerically meaningless in double precision.
pub const CONDEST_ERROR: f64 = 1e15;
/// Warning threshold for the pivot growth `max|U| / max|A|`.
pub const PIVOT_GROWTH_WARN: f64 = 1e6;
/// Error threshold for the pivot growth `max|U| / max|A|`.
pub const PIVOT_GROWTH_ERROR: f64 = 1e12;
/// Warning threshold for the near-singularity proxy `ε·max|uᵢᵢ|/min|uᵢᵢ|`
/// (a lower bound on `ε·cond(A)` computable from the factors alone).
pub const NEAR_SINGULAR_WARN: f64 = 1e-8;
/// Error threshold for the near-singularity proxy: at 1e-2 the diagonal of
/// `U` spans nearly the whole dynamic range of `f64`.
pub const NEAR_SINGULAR_ERROR: f64 = 1e-2;
/// Warning threshold for the transient step-residual spot check
/// `‖A·x − b‖∞ / max(‖A·x‖∞, ‖b‖∞)`.
pub const STEP_RESIDUAL_WARN: f64 = 1e-9;
/// Error threshold for the transient step-residual spot check.
pub const STEP_RESIDUAL_ERROR: f64 = 1e-5;

/// Normwise backward error `‖A·x − b‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` of an
/// approximate solution `x` to `A·x = b`, given the precomputed product
/// `ax = A·x` and the matrix norm `‖A‖∞`.
///
/// This is the smallest relative perturbation of `(A, b)` (measured in the
/// ∞-norm) for which `x` is an *exact* solution — the standard Oettli–Prager
/// style residual test. A backward-stable solve keeps it within a modest
/// multiple of machine epsilon regardless of conditioning. Returns `0.0`
/// when the denominator vanishes (only possible for `b = 0` solved exactly
/// by `x = 0`), and infinity/NaN propagate so non-finite solves are caught.
///
/// # Panics
///
/// Panics if the slice lengths disagree.
pub fn backward_error<T: Scalar>(norm_a_inf: f64, ax: &[T], x: &[T], b: &[T]) -> f64 {
    assert_eq!(ax.len(), b.len(), "product and right-hand side lengths must agree");
    assert_eq!(x.len(), b.len(), "solution and right-hand side lengths must agree");
    let residual_inf =
        ax.iter().zip(b.iter()).map(|(&axi, &bi)| (axi - bi).modulus()).fold(0.0, f64::max);
    let denominator = norm_a_inf * vec_norm_inf(x) + vec_norm_inf(b);
    if denominator == 0.0 {
        if residual_inf == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        residual_inf / denominator
    }
}

/// `‖v‖∞` — the largest modulus.
pub fn vec_norm_inf<T: Scalar>(v: &[T]) -> f64 {
    v.iter().map(|x| x.modulus()).fold(0.0, f64::max)
}

/// `‖v‖₁` — the sum of moduli.
pub fn vec_norm_one<T: Scalar>(v: &[T]) -> f64 {
    v.iter().map(|x| x.modulus()).sum()
}

/// Estimates `‖A⁻¹‖₁` with the Hager–Higham iteration, given solve closures
/// against an existing factorisation: `solve(b) = A⁻¹·b` and
/// `solve_transpose(b) = A⁻ᵀ·b`.
///
/// The iteration maximises `‖A⁻¹·x‖₁` over the cross-polytope: starting from
/// the uniform vector, each step evaluates the subgradient (a solve with the
/// sign pattern of the current image, against `Aᵀ`) and jumps to the unit
/// vector of its largest component, converging in 2–4 iterations in
/// practice. A final sweep with LAPACK `dlacn2`'s alternating test vector
/// guards against the rare patterns the greedy ascent misses. The result is
/// a **lower bound** of the true norm, almost always within a small factor
/// (the classic 10× estimator band); multiply by `‖A‖₁` for a condition
/// estimate.
pub fn invnorm1_estimate(
    n: usize,
    mut solve: impl FnMut(&[f64]) -> Vec<f64>,
    mut solve_transpose: impl FnMut(&[f64]) -> Vec<f64>,
) -> f64 {
    assert!(n > 0, "estimator dimension must be non-zero");
    let mut x = vec![1.0 / n as f64; n];
    let mut est = 0.0_f64;
    for iteration in 0..5 {
        let y = solve(&x);
        let y_norm = vec_norm_one(&y);
        if !y_norm.is_finite() {
            return y_norm;
        }
        if iteration > 0 && y_norm <= est {
            // The ascent stalled; the previous estimate stands.
            break;
        }
        est = est.max(y_norm);
        let xi: Vec<f64> = y.iter().map(|&v| if v < 0.0 { -1.0 } else { 1.0 }).collect();
        let z = solve_transpose(&xi);
        let (mut best, mut z_max) = (0usize, 0.0_f64);
        for (j, &zj) in z.iter().enumerate() {
            if zj.abs() > z_max {
                z_max = zj.abs();
                best = j;
            }
        }
        let z_dot_x: f64 = z.iter().zip(x.iter()).map(|(&zj, &xj)| zj * xj).sum();
        if z_max <= z_dot_x {
            // Optimality condition: no unit vector improves on the current x.
            break;
        }
        x.iter_mut().for_each(|v| *v = 0.0);
        x[best] = 1.0;
    }
    // dlacn2-style alternating-vector guard.
    let alt: Vec<f64> = (0..n)
        .map(|i| {
            let ramp = if n > 1 { 1.0 + i as f64 / (n - 1) as f64 } else { 1.0 };
            if i % 2 == 0 {
                ramp
            } else {
                -ramp
            }
        })
        .collect();
    let y = solve(&alt);
    est.max(2.0 * vec_norm_one(&y) / (3.0 * n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::lu::LuFactor;
    use crate::matrix::Matrix;

    #[test]
    fn backward_error_is_zero_for_exact_solves_and_scales_with_residual() {
        // A = 2·I, x = [1, 2], b = [2, 4]: exact.
        let ax = [2.0, 4.0];
        let x = [1.0, 2.0];
        let b = [2.0, 4.0];
        assert_eq!(backward_error(2.0, &ax, &x, &b), 0.0);
        // Perturb b by 1e-8: error = 1e-8 / (2·2 + ‖b‖∞).
        let b2 = [2.0, 4.0 + 1e-8];
        let be = backward_error(2.0, &ax, &x, &b2);
        let expected = 1e-8 / (2.0 * 2.0 + (4.0 + 1e-8));
        assert!((be - expected).abs() < 1e-6 * expected, "got {be}, expected {expected}");
        // Zero everything: defined as 0, not NaN.
        assert_eq!(backward_error(0.0, &[0.0], &[0.0], &[0.0]), 0.0);
        // Complex scalars run through the same formula.
        let caz = [Complex::new(0.0, 1.0)];
        let cx = [Complex::ONE];
        let cb = [Complex::new(0.0, 1.0)];
        assert_eq!(backward_error(1.0, &caz, &cx, &cb), 0.0);
    }

    #[test]
    fn vector_norms() {
        assert_eq!(vec_norm_inf(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(vec_norm_one(&[1.0, -3.0, 2.0]), 6.0);
        assert_eq!(vec_norm_inf::<f64>(&[]), 0.0);
    }

    /// Exact `‖A⁻¹‖₁` by inverting column by column through the factors.
    fn exact_invnorm1(f: &LuFactor<f64>, n: usize) -> f64 {
        let mut worst = 0.0_f64;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            worst = worst.max(vec_norm_one(&f.solve(&e)));
        }
        worst
    }

    #[test]
    fn estimate_is_a_tight_lower_bound_on_small_dense_systems() {
        let mut state = 0xC0FFEEu64;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        for trial in 0..10 {
            let n = 3 + trial;
            let mut a = Matrix::<f64>::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = lcg();
                }
                // Vary the dominance so conditioning spans a few decades.
                a[(i, i)] += 1.0 + trial as f64;
            }
            let f = LuFactor::new(&a).unwrap();
            let at = a.transpose();
            let ft = LuFactor::new(&at).unwrap();
            let est = invnorm1_estimate(n, |b| f.solve(b), |b| ft.solve(b));
            let exact = exact_invnorm1(&f, n);
            assert!(est <= exact * (1.0 + 1e-12), "estimate {est} exceeds exact {exact}");
            assert!(est >= exact / 10.0, "estimate {est} below the 10x band of exact {exact}");
        }
    }

    #[test]
    fn estimate_handles_dimension_one() {
        let est = invnorm1_estimate(1, |b| vec![b[0] / 4.0], |b| vec![b[0] / 4.0]);
        assert!((est - 0.25).abs() < 1e-15);
    }
}
