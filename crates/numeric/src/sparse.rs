//! Compressed-sparse-column matrices and fill-reducing sparse LU.
//!
//! The banded kernel of [`crate::banded`] wins only when a bandwidth-reducing
//! permutation exists — true for ladders and buses, false for branching
//! trees, whose MNA matrices have `Ω(n/log n)` bandwidth under *any*
//! ordering. This module provides the general-purpose third backend:
//!
//! * [`CscMatrix`] — compressed-sparse-column storage built from triplet
//!   stamps, `O(nnz)` memory regardless of bandwidth;
//! * [`minimum_degree`] — a fill-reducing elimination ordering on the
//!   symmetrised pattern (the classical minimum-degree heuristic, the greedy
//!   core of AMD);
//! * [`SparseSymbolic`] — the reusable symbolic phase: the fill-reducing
//!   column order computed once per sparsity pattern and shared by every
//!   numeric factorisation of that pattern (DC, transient and each AC
//!   frequency point factor different matrices with the *same* pattern);
//! * [`SparseLuFactor`] — the numeric phase: a left-looking Gilbert–Peierls
//!   LU with partial pivoting, `O(nnz(L) + nnz(U))` storage and
//!   `O(flops(L·U))` time, generic over real and complex scalars.
//!
//! On an RLC tree with `n` unknowns the factors stay `O(n)` (elimination of a
//! tree in leaf-to-root order creates no fill), so factorisation and each
//! solve are `O(n)` against the dense `O(n³)`/`O(n²)`.

use crate::banded::BandedMatrix;
use crate::lu::{FactorizeError, SINGULARITY_THRESHOLD};
use crate::matrix::{Matrix, Scalar};

/// Sentinel for "row not yet pivotal" during factorisation.
const UNSET: usize = usize::MAX;

/// A square sparse matrix in compressed-sparse-column form.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T: Scalar = f64> {
    n: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes the entries of column `j`.
    col_ptr: Vec<usize>,
    /// Row index of every entry, sorted within each column.
    row_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Builds an `n × n` matrix from additive triplets `(row, col, value)`.
    ///
    /// Duplicate positions are summed — exactly the MNA stamping convention —
    /// and explicit zeros (including stamps that cancel) are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or any index is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, T)]) -> Self {
        assert!(n > 0, "sparse matrix dimension must be non-zero");
        let mut cols: Vec<Vec<(usize, T)>> = vec![Vec::new(); n];
        for &(r, c, v) in triplets {
            assert!(r < n && c < n, "triplet index ({r}, {c}) out of bounds for dimension {n}");
            cols[c].push((r, v));
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        col_ptr.push(0);
        for col in &mut cols {
            col.sort_unstable_by_key(|&(r, _)| r);
            let mut iter = col.iter().copied().peekable();
            while let Some((r, mut v)) = iter.next() {
                while iter.peek().is_some_and(|&(r2, _)| r2 == r) {
                    v = v + iter.next().expect("peeked").1;
                }
                if v != T::zero() {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Self { n, col_ptr, row_idx, values }
    }

    /// Builds a sparse copy of a banded matrix, dropping stored zeros.
    pub fn from_banded(a: &BandedMatrix<T>) -> Self {
        let n = a.dim();
        let mut triplets = Vec::new();
        for i in 0..n {
            let lo = i.saturating_sub(a.lower_bandwidth());
            let hi = (i + a.upper_bandwidth()).min(n - 1);
            for j in lo..=hi {
                let v = a.get(i, j);
                if v != T::zero() {
                    triplets.push((i, j, v));
                }
            }
        }
        Self::from_triplets(n, &triplets)
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// The values of column `j`, parallel to [`CscMatrix::col_rows`].
    #[inline]
    pub fn col_values(&self, j: usize) -> &[T] {
        &self.values[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Element accessor; absent entries read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.n && col < self.n, "sparse matrix index out of bounds");
        match self.col_rows(col).binary_search(&row) {
            Ok(k) => self.col_values(col)[k],
            Err(_) => T::zero(),
        }
    }

    /// Matrix–vector product `A·x` in `O(nnz)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n, "vector length must equal matrix dimension");
        let mut y = vec![T::zero(); self.n];
        for (j, &xj) in x.iter().enumerate() {
            if xj != T::zero() {
                for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                    y[i] = y[i] + v * xj;
                }
            }
        }
        y
    }

    /// Expands to a dense [`Matrix`] (tests and small-system fallbacks).
    pub fn to_dense(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.n, self.n);
        for j in 0..self.n {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.n).flat_map(move |j| {
            self.col_rows(j).iter().zip(self.col_values(j)).map(move |(&i, &v)| (i, j, v))
        })
    }
}

/// Computes a fill-reducing elimination ordering of a symmetric sparsity
/// pattern with the classical minimum-degree heuristic.
///
/// `adjacency[i]` lists the neighbours of unknown `i` (self-loops ignored).
/// Returns `perm` with `perm[logical] = position`: the unknown eliminated
/// first has position 0 — the same convention as
/// [`crate::ordering::reverse_cuthill_mckee`]. Ties break on the smallest
/// index, so the ordering is deterministic.
///
/// Eliminating a vertex joins its remaining neighbours into a clique (the
/// fill its pivot would create); always eliminating a currently
/// minimum-degree vertex keeps those cliques — and therefore the LU fill —
/// small. On trees it reproduces a perfect (zero-fill) leaf-to-root order.
pub fn minimum_degree(n: usize, adjacency: &[Vec<usize>]) -> Vec<usize> {
    assert_eq!(adjacency.len(), n, "adjacency list length must equal dimension");
    use std::collections::BTreeSet;
    let mut adj: Vec<BTreeSet<usize>> = adjacency
        .iter()
        .enumerate()
        .map(|(i, list)| list.iter().copied().filter(|&j| j != i && j < n).collect())
        .collect();
    let mut alive = vec![true; n];
    let mut perm = vec![0usize; n];
    for k in 0..n {
        // Smallest degree, smallest index first: deterministic and cheap.
        let mut best = UNSET;
        let mut best_degree = usize::MAX;
        for (v, a) in adj.iter().enumerate() {
            if alive[v] && a.len() < best_degree {
                best_degree = a.len();
                best = v;
            }
        }
        let v = best;
        perm[v] = k;
        alive[v] = false;
        let neighbours: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &neighbours {
            adj[u].remove(&v);
            for &w in &neighbours {
                if w != u {
                    adj[u].insert(w);
                }
            }
        }
        adj[v].clear();
    }
    perm
}

/// The symbolic phase of a sparse factorisation: the fill-reducing column
/// order of one sparsity pattern.
///
/// Computed once per pattern ([`SparseSymbolic::analyze`]) and reused by
/// every [`SparseLuFactor`] of a matrix with that pattern — the DC, transient
/// and AC analyses of one circuit all factor `gs·G + cs·C` for different
/// scalars, so they share one symbolic object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseSymbolic {
    n: usize,
    /// `order[k]` = logical column eliminated at step `k`.
    order: Vec<usize>,
    /// Inverse of `order`: `perm[logical] = position`.
    perm: Vec<usize>,
}

impl SparseSymbolic {
    /// Analyses a sparsity pattern given as `(row, col)` pairs.
    ///
    /// The pattern is symmetrised (`A + Aᵀ`), as usual for LU with partial
    /// pivoting on structurally symmetric MNA systems.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or any index is out of range.
    pub fn analyze(n: usize, pattern: impl IntoIterator<Item = (usize, usize)>) -> Self {
        assert!(n > 0, "symbolic dimension must be non-zero");
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (r, c) in pattern {
            assert!(r < n && c < n, "pattern index ({r}, {c}) out of bounds for dimension {n}");
            if r != c {
                adjacency[r].push(c);
                adjacency[c].push(r);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        let perm = minimum_degree(n, &adjacency);
        let mut order = vec![0usize; n];
        for (logical, &position) in perm.iter().enumerate() {
            order[position] = logical;
        }
        Self { n, order, perm }
    }

    /// The natural (identity) ordering — no fill reduction.
    pub fn natural(n: usize) -> Self {
        assert!(n > 0, "symbolic dimension must be non-zero");
        Self { n, order: (0..n).collect(), perm: (0..n).collect() }
    }

    /// Dimension of the analysed pattern.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The elimination order: `order()[k]` is the logical column eliminated
    /// at step `k`.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The permutation in `perm[logical] = position` convention.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }
}

/// A sparse LU factorisation `P·A·Q = L·U` (left-looking Gilbert–Peierls with
/// partial pivoting).
///
/// `Q` is the fill-reducing column order from a [`SparseSymbolic`]; `P` is
/// chosen during elimination for stability. `L` is unit lower triangular with
/// the unit diagonal stored first in each column, `U` is upper triangular
/// with the diagonal stored last — both in compressed-column form, so a solve
/// is one sparse forward and one sparse backward substitution.
#[derive(Debug, Clone)]
pub struct SparseLuFactor<T: Scalar = f64> {
    n: usize,
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<T>,
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<T>,
    /// `pinv[old_row] = pivotal position`.
    pinv: Vec<usize>,
    /// `order[k]` = logical column eliminated at step `k` (from the symbolic).
    order: Vec<usize>,
}

impl<T: Scalar> SparseLuFactor<T> {
    /// Factorises `a` under the column order of `symbolic`.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::Singular`] if no acceptable pivot exists in
    /// some column (reported with the *logical* column index).
    ///
    /// # Panics
    ///
    /// Panics if `symbolic.dim() != a.dim()`.
    pub fn factor(a: &CscMatrix<T>, symbolic: &SparseSymbolic) -> Result<Self, FactorizeError> {
        let n = a.dim();
        assert_eq!(symbolic.dim(), n, "symbolic and matrix dimensions must agree");

        let mut pinv = vec![UNSET; n];
        // Dense workspaces indexed by old row: the current column's values,
        // a visited flag for the DFS, and the DFS stacks.
        let mut x = vec![T::zero(); n];
        let mut visited = vec![false; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut node_stack: Vec<usize> = Vec::with_capacity(n);
        let mut edge_stack: Vec<usize> = Vec::with_capacity(n);

        let mut l_colptr = Vec::with_capacity(n + 1);
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        let mut u_colptr = Vec::with_capacity(n + 1);
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();
        l_colptr.push(0);
        u_colptr.push(0);

        for k in 0..n {
            let col = symbolic.order[k];

            // Symbolic step: reachability of A(:, col) through the computed L
            // columns, producing the fill pattern in topological order
            // (reverse DFS completion order). Graph edges run from a pivotal
            // row `i` to the rows of L column `pinv[i]`, i.e. along the
            // updates the numeric pass must apply in sequence.
            topo.clear();
            for &start in a.col_rows(col) {
                if visited[start] {
                    continue;
                }
                node_stack.push(start);
                edge_stack.push(0);
                visited[start] = true;
                while let Some(&i) = node_stack.last() {
                    let children: &[usize] = match pinv[i] {
                        UNSET => &[],
                        j => &l_rows[l_colptr[j]..l_colptr[j + 1]],
                    };
                    let e = edge_stack.last_mut().expect("stacks stay in lockstep");
                    let mut descended = false;
                    while *e < children.len() {
                        let child = children[*e];
                        *e += 1;
                        if !visited[child] {
                            visited[child] = true;
                            node_stack.push(child);
                            edge_stack.push(0);
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        topo.push(i);
                        node_stack.pop();
                        edge_stack.pop();
                    }
                }
            }
            // Reverse completion order = topological order over update edges.
            topo.reverse();

            // Numeric step: scatter A(:, col), then run the sparse triangular
            // solve x ← L⁻¹·A(:, col) over the pattern.
            for (&i, &v) in a.col_rows(col).iter().zip(a.col_values(col)) {
                x[i] = v;
            }
            for &j in &topo {
                let pj = pinv[j];
                if pj == UNSET {
                    continue;
                }
                let xj = x[j];
                if xj != T::zero() {
                    // Skip the leading unit-diagonal entry of L column pj.
                    for p in (l_colptr[pj] + 1)..l_colptr[pj + 1] {
                        x[l_rows[p]] = x[l_rows[p]] - l_vals[p] * xj;
                    }
                }
            }

            // Pivot search over the not-yet-pivotal rows of the pattern.
            let mut pivot_row = UNSET;
            let mut pivot_mag = 0.0;
            for &i in &topo {
                if pinv[i] == UNSET {
                    let mag = x[i].modulus();
                    if mag > pivot_mag {
                        pivot_mag = mag;
                        pivot_row = i;
                    }
                }
            }
            if pivot_row == UNSET || !(pivot_mag > SINGULARITY_THRESHOLD) {
                // Clean the workspaces before reporting, for reuse safety.
                for &i in &topo {
                    x[i] = T::zero();
                    visited[i] = false;
                }
                return Err(FactorizeError::Singular { column: col });
            }
            let pivot = x[pivot_row];

            // Emit U column k: the already-pivotal pattern rows, diagonal last.
            for &i in &topo {
                if pinv[i] != UNSET {
                    u_rows.push(pinv[i]);
                    u_vals.push(x[i]);
                }
            }
            u_rows.push(k);
            u_vals.push(pivot);
            u_colptr.push(u_rows.len());

            // Emit L column k: unit diagonal first, then the below-diagonal
            // multipliers. Rows stay in *old* indices until the final remap.
            pinv[pivot_row] = k;
            l_rows.push(pivot_row);
            l_vals.push(T::one());
            for &i in &topo {
                if pinv[i] == UNSET {
                    l_rows.push(i);
                    l_vals.push(x[i] / pivot);
                }
            }
            l_colptr.push(l_rows.len());

            for &i in &topo {
                x[i] = T::zero();
                visited[i] = false;
            }
        }

        // Remap L's rows from old indices to pivotal positions.
        for r in &mut l_rows {
            *r = pinv[*r];
        }

        Ok(Self {
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            pinv,
            order: symbolic.order.clone(),
        })
    }

    /// Factorises with a freshly analysed symbolic phase (convenience for
    /// one-off factorisations; reuse a [`SparseSymbolic`] when factoring many
    /// matrices with one pattern).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SparseLuFactor::factor`].
    pub fn factor_auto(a: &CscMatrix<T>) -> Result<Self, FactorizeError> {
        let symbolic = SparseSymbolic::analyze(a.dim(), a.triplets().map(|(r, c, _)| (r, c)));
        Self::factor(a, &symbolic)
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in the `L` factor (including the unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l_rows.len()
    }

    /// Stored entries in the `U` factor (including the diagonal).
    pub fn u_nnz(&self) -> usize {
        self.u_rows.len()
    }

    /// Solves `A·x = b` with the stored factors in `O(nnz(L) + nnz(U))`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.n, "right-hand side length must equal matrix dimension");
        // Row permutation: position k of the permuted system holds b[i] for
        // the row i pivotal at step k.
        let mut x = vec![T::zero(); self.n];
        for (i, &bi) in b.iter().enumerate() {
            x[self.pinv[i]] = bi;
        }
        // Forward substitution with unit-lower L (diagonal stored first).
        for j in 0..self.n {
            let xj = x[j];
            if xj != T::zero() {
                for p in (self.l_colptr[j] + 1)..self.l_colptr[j + 1] {
                    x[self.l_rows[p]] = x[self.l_rows[p]] - self.l_vals[p] * xj;
                }
            }
        }
        // Backward substitution with U (diagonal stored last).
        for j in (0..self.n).rev() {
            let d = self.u_vals[self.u_colptr[j + 1] - 1];
            let xj = x[j] / d;
            x[j] = xj;
            if xj != T::zero() {
                for p in self.u_colptr[j]..(self.u_colptr[j + 1] - 1) {
                    x[self.u_rows[p]] = x[self.u_rows[p]] - self.u_vals[p] * xj;
                }
            }
        }
        // Column permutation: solution position k belongs to logical
        // unknown order[k].
        let mut out = vec![T::zero(); self.n];
        for (k, &logical) in self.order.iter().enumerate() {
            out[logical] = x[k];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::lu::LuFactor;

    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    /// A random symmetric-pattern sparse matrix shaped like a tree MNA
    /// system: parent/child couplings of a random tree plus a dominant
    /// diagonal.
    fn random_tree_matrix(n: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 4.0 + lcg(&mut state).abs()));
            if i > 0 {
                // Pick a random earlier node as parent.
                let parent = (((lcg(&mut state) + 0.5) * i as f64) as usize).min(i - 1);
                let v = lcg(&mut state);
                triplets.push((i, parent, v));
                triplets.push((parent, i, v * 0.5 - 0.7));
            }
        }
        CscMatrix::from_triplets(n, &triplets)
    }

    #[test]
    fn from_triplets_sums_duplicates_and_drops_zeros() {
        let a = CscMatrix::from_triplets(
            3,
            &[(0, 0, 1.0), (0, 0, 2.0), (1, 2, 5.0), (1, 2, -5.0), (2, 1, -1.0)],
        );
        assert_eq!(a.dim(), 3);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 2), 0.0); // cancelled stamp is dropped
        assert_eq!(a.get(2, 1), -1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn mul_vec_and_to_dense_agree() {
        let a = random_tree_matrix(17, 0xFEED);
        let x: Vec<f64> = (0..17).map(|i| (i as f64 * 0.31).sin()).collect();
        let ys = a.mul_vec(&x);
        let yd = a.to_dense().mul_vec(&x);
        for (s, d) in ys.iter().zip(yd.iter()) {
            assert!((s - d).abs() < 1e-14);
        }
    }

    #[test]
    fn from_banded_round_trips() {
        let mut b = BandedMatrix::<f64>::zeros(5, 1, 1);
        for i in 0..5 {
            b.set(i, i, 2.0);
            if i + 1 < 5 {
                b.set(i, i + 1, -1.0);
            }
        }
        let a = CscMatrix::from_banded(&b);
        assert_eq!(a.nnz(), 9);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }

    #[test]
    fn minimum_degree_is_a_bijection_and_orders_leaves_first() {
        // Star graph: centre 0 with 4 leaves. Leaves have degree 1 and must
        // all be eliminated before the centre.
        let adjacency = vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]];
        let perm = minimum_degree(5, &adjacency);
        let mut seen = [false; 5];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        // Degree-1 leaves go first; the hub only becomes eligible once its
        // degree has dropped to match theirs (after 3 of 4 leaves are gone).
        assert!(perm[0] >= 3, "the hub must wait until the leaves shrink it, got {}", perm[0]);
    }

    #[test]
    fn symbolic_order_inverts_its_permutation() {
        let a = random_tree_matrix(12, 3);
        let sym = SparseSymbolic::analyze(12, a.triplets().map(|(r, c, _)| (r, c)));
        assert_eq!(sym.dim(), 12);
        for (logical, &position) in sym.permutation().iter().enumerate() {
            assert_eq!(sym.order()[position], logical);
        }
        let natural = SparseSymbolic::natural(4);
        assert_eq!(natural.order(), &[0, 1, 2, 3]);
    }

    #[test]
    fn sparse_solve_matches_dense_on_tree_matrices() {
        for seed in [1u64, 2, 3] {
            let n = 60;
            let a = random_tree_matrix(n, seed);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
            let xs = SparseLuFactor::factor_auto(&a).unwrap().solve(&b);
            let xd = LuFactor::new(&a.to_dense()).unwrap().solve(&b);
            for (s, d) in xs.iter().zip(xd.iter()) {
                assert!((s - d).abs() < 1e-10, "sparse {s} vs dense {d}");
            }
        }
    }

    #[test]
    fn tree_factorisation_has_no_fill() {
        // Eliminating a tree leaf-to-root creates no fill: nnz(L) + nnz(U)
        // equals nnz(A) + n (the unit diagonal of L).
        let n = 200;
        let a = random_tree_matrix(n, 7);
        let f = SparseLuFactor::factor_auto(&a).unwrap();
        assert_eq!(f.l_nnz() + f.u_nnz(), a.nnz() + n, "min-degree must keep trees fill-free");
    }

    #[test]
    fn symbolic_phase_is_reused_across_numeric_factorisations() {
        // Two matrices with the same pattern, different values (the DC and
        // transient matrices of one circuit): one analyze, two factors.
        let n = 40;
        let a = random_tree_matrix(n, 11);
        let sym = SparseSymbolic::analyze(n, a.triplets().map(|(r, c, _)| (r, c)));
        let scaled = CscMatrix::from_triplets(
            n,
            &a.triplets().map(|(r, c, v)| (r, c, 2.5 * v)).collect::<Vec<_>>(),
        );
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x1 = SparseLuFactor::factor(&a, &sym).unwrap().solve(&b);
        let x2 = SparseLuFactor::factor(&scaled, &sym).unwrap().solve(&b);
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - 2.5 * v).abs() < 1e-10, "scaling the matrix scales the solution down");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = CscMatrix::from_triplets(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let x = SparseLuFactor::factor_auto(&a).unwrap().solve(&[3.0, 5.0]);
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrices_are_reported() {
        // Zero column.
        let a = CscMatrix::from_triplets(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 0, 1.0)]);
        match SparseLuFactor::factor_auto(&a) {
            Err(FactorizeError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
        // Linearly dependent rows.
        let b = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
        match SparseLuFactor::factor_auto(&b) {
            Err(FactorizeError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn complex_sparse_system() {
        let a = CscMatrix::from_triplets(
            2,
            &[
                (0, 0, Complex::new(1.0, 1.0)),
                (0, 1, Complex::ONE),
                (1, 0, Complex::ONE),
                (1, 1, -Complex::ONE),
            ],
        );
        let x =
            SparseLuFactor::factor_auto(&a).unwrap().solve(&[Complex::new(2.0, 0.0), Complex::J]);
        assert!((x[0] - Complex::ONE).abs() < 1e-12);
        assert!((x[1] - Complex::new(1.0, -1.0)).abs() < 1e-12);
    }

    #[test]
    fn residuals_stay_small_on_random_banded_patterns() {
        // Not a tree: a pentadiagonal pattern exercises genuine fill.
        let n: usize = 50;
        let mut state = 0xBADC0FFEu64;
        let mut triplets = Vec::new();
        for i in 0..n {
            for j in i.saturating_sub(2)..(i + 3).min(n) {
                triplets.push((i, j, lcg(&mut state)));
            }
            triplets.push((i, i, 6.0));
        }
        let a = CscMatrix::from_triplets(n, &triplets);
        let b: Vec<f64> = (0..n).map(|i| lcg(&mut { state + i as u64 })).collect();
        let f = SparseLuFactor::factor_auto(&a).unwrap();
        assert_eq!(f.dim(), n);
        let x = f.solve(&b);
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(b.iter()) {
            assert!((ri - bi).abs() < 1e-10, "residual {}", (ri - bi).abs());
        }
    }

    #[test]
    #[should_panic]
    fn solve_with_wrong_rhs_length_panics() {
        let a = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let f = SparseLuFactor::factor_auto(&a).unwrap();
        let _ = f.solve(&[1.0]);
    }
}
