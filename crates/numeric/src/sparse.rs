//! Compressed-sparse-column matrices and fill-reducing sparse LU.
//!
//! The banded kernel of [`crate::banded`] wins only when a bandwidth-reducing
//! permutation exists — true for ladders and buses, false for branching
//! trees, whose MNA matrices have `Ω(n/log n)` bandwidth under *any*
//! ordering. This module provides the general-purpose third backend:
//!
//! * [`CscMatrix`] — compressed-sparse-column storage built from triplet
//!   stamps, `O(nnz)` memory regardless of bandwidth;
//! * [`approximate_minimum_degree`] — the AMD fill-reducing elimination
//!   ordering on the symmetrised pattern (quotient graph, approximate
//!   external degrees), near-linear and therefore viable at 10⁵–10⁶
//!   unknowns; [`minimum_degree`] keeps the classical quadratic heuristic
//!   around as the fill-quality reference;
//! * [`SparseSymbolic`] — the reusable symbolic phase: the fill-reducing
//!   column order computed once per sparsity pattern and shared by every
//!   numeric factorisation of that pattern (DC, transient and each AC
//!   frequency point factor different matrices with the *same* pattern);
//! * [`SparseLuFactor`] — the numeric phase: a left-looking Gilbert–Peierls
//!   LU with partial pivoting, `O(nnz(L) + nnz(U))` storage and
//!   `O(flops(L·U))` time, generic over real and complex scalars. A factor
//!   additionally supports value-only **refactorisation**
//!   ([`SparseLuFactor::refactor`] — same pattern, new values, frozen pivot
//!   sequence, no symbolic work and no allocation of factor storage) and
//!   blocked multi-right-hand-side solves ([`SparseLuFactor::solve_many`]).
//!
//! On an RLC tree with `n` unknowns the factors stay `O(n)` (elimination of a
//! tree in leaf-to-root order creates no fill), so factorisation and each
//! solve are `O(n)` against the dense `O(n³)`/`O(n²)`.

use crate::banded::BandedMatrix;
use crate::lu::{FactorizeError, SINGULARITY_THRESHOLD};
use crate::matrix::{Matrix, Scalar};

/// Sentinel for "row not yet pivotal" during factorisation.
const UNSET: usize = usize::MAX;

/// A square sparse matrix in compressed-sparse-column form.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<T: Scalar = f64> {
    n: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes the entries of column `j`.
    col_ptr: Vec<usize>,
    /// Row index of every entry, sorted within each column.
    row_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CscMatrix<T> {
    /// Builds an `n × n` matrix from additive triplets `(row, col, value)`.
    ///
    /// Duplicate positions are summed — exactly the MNA stamping convention —
    /// and explicit zeros (including stamps that cancel) are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or any index is out of range.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, T)]) -> Self {
        assert!(n > 0, "sparse matrix dimension must be non-zero");
        let mut cols: Vec<Vec<(usize, T)>> = vec![Vec::new(); n];
        for &(r, c, v) in triplets {
            assert!(r < n && c < n, "triplet index ({r}, {c}) out of bounds for dimension {n}");
            cols[c].push((r, v));
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        col_ptr.push(0);
        for col in &mut cols {
            col.sort_unstable_by_key(|&(r, _)| r);
            let mut iter = col.iter().copied().peekable();
            while let Some((r, mut v)) = iter.next() {
                while iter.peek().is_some_and(|&(r2, _)| r2 == r) {
                    v = v + iter.next().expect("peeked").1;
                }
                if v != T::zero() {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Self { n, col_ptr, row_idx, values }
    }

    /// Builds a sparse copy of a banded matrix, dropping stored zeros.
    pub fn from_banded(a: &BandedMatrix<T>) -> Self {
        let n = a.dim();
        let mut triplets = Vec::new();
        for i in 0..n {
            let lo = i.saturating_sub(a.lower_bandwidth());
            let hi = (i + a.upper_bandwidth()).min(n - 1);
            for j in lo..=hi {
                let v = a.get(i, j);
                if v != T::zero() {
                    triplets.push((i, j, v));
                }
            }
        }
        Self::from_triplets(n, &triplets)
    }

    /// Builds a matrix directly from compressed-sparse-column arrays.
    ///
    /// Unlike [`CscMatrix::from_triplets`] this keeps explicitly stored
    /// zeros. Callers that reuse one pattern with changing values — the
    /// scatter-map assembly feeding [`SparseLuFactor::refactor`] — need the
    /// pattern to stay identical no matter which values happen to cancel.
    ///
    /// # Panics
    ///
    /// Panics unless the arrays form a well-formed CSC structure: `col_ptr`
    /// has length `n + 1`, starts at 0, ends at `row_idx.len()` and is
    /// non-decreasing; each column's row indices are strictly increasing and
    /// in range; `values` parallels `row_idx`.
    pub fn from_parts(n: usize, col_ptr: Vec<usize>, row_idx: Vec<usize>, values: Vec<T>) -> Self {
        assert!(n > 0, "sparse matrix dimension must be non-zero");
        assert_eq!(col_ptr.len(), n + 1, "col_ptr length must be dimension + 1");
        assert_eq!(col_ptr[0], 0, "col_ptr must start at zero");
        assert_eq!(*col_ptr.last().expect("non-empty"), row_idx.len(), "col_ptr must end at nnz");
        assert_eq!(values.len(), row_idx.len(), "values must parallel row_idx");
        for j in 0..n {
            assert!(col_ptr[j] <= col_ptr[j + 1], "col_ptr must be non-decreasing");
            let rows = &row_idx[col_ptr[j]..col_ptr[j + 1]];
            for pair in rows.windows(2) {
                assert!(pair[0] < pair[1], "row indices of column {j} must strictly increase");
            }
            if let Some(&last) = rows.last() {
                assert!(last < n, "row index {last} out of bounds for dimension {n}");
            }
        }
        Self { n, col_ptr, row_idx, values }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The row indices of column `j`.
    #[inline]
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// The values of column `j`, parallel to [`CscMatrix::col_rows`].
    #[inline]
    pub fn col_values(&self, j: usize) -> &[T] {
        &self.values[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Element accessor; absent entries read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.n && col < self.n, "sparse matrix index out of bounds");
        match self.col_rows(col).binary_search(&row) {
            Ok(k) => self.col_values(col)[k],
            Err(_) => T::zero(),
        }
    }

    /// Matrix–vector product `A·x` in `O(nnz)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n, "vector length must equal matrix dimension");
        let mut y = vec![T::zero(); self.n];
        for (j, &xj) in x.iter().enumerate() {
            if xj != T::zero() {
                for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                    y[i] = y[i] + v * xj;
                }
            }
        }
        y
    }

    /// Expands to a dense [`Matrix`] (tests and small-system fallbacks).
    pub fn to_dense(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.n, self.n);
        for j in 0..self.n {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Induced ∞-norm `‖A‖∞` — the maximum row sum of moduli, `O(nnz)`.
    pub fn norm_inf(&self) -> f64 {
        let mut row_sums = vec![0.0_f64; self.n];
        for (&i, &v) in self.row_idx.iter().zip(self.values.iter()) {
            row_sums[i] += v.modulus();
        }
        row_sums.into_iter().fold(0.0, f64::max)
    }

    /// Induced 1-norm `‖A‖₁` — the maximum column sum of moduli, `O(nnz)`.
    pub fn norm_one(&self) -> f64 {
        (0..self.n)
            .map(|j| self.col_values(j).iter().map(|v| v.modulus()).sum())
            .fold(0.0, f64::max)
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.n).flat_map(move |j| {
            self.col_rows(j).iter().zip(self.col_values(j)).map(move |(&i, &v)| (i, j, v))
        })
    }

    /// The column-pointer array of the CSC structure (`n + 1` entries).
    #[inline]
    pub fn col_ptr_slice(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row-index array of the CSC structure, parallel per column to the
    /// stored values.
    #[inline]
    pub fn row_idx_slice(&self) -> &[usize] {
        &self.row_idx
    }

    /// A stable 64-bit FNV-1a content hash of the **sparsity pattern alone**
    /// (dimension, column pointers, row indices — no values).
    ///
    /// Two matrices share a pattern key exactly when they share their stored
    /// structure, which is the precondition for reusing a
    /// [`SparseSymbolic`] and for value-only
    /// [`SparseLuFactor::refactor`]-style factor reuse. The hash is
    /// process-independent (no randomised state), so it can key cross-run
    /// caches. Equivalent to [`csc_pattern_key`] over this matrix's arrays.
    pub fn pattern_key(&self) -> u64 {
        csc_pattern_key(self.n, &self.col_ptr, &self.row_idx)
    }
}

/// The stable pattern hash behind [`CscMatrix::pattern_key`], usable by
/// callers that hold raw CSC structure arrays without a materialised matrix
/// (e.g. a cached assembly scatter map).
pub fn csc_pattern_key(n: usize, col_ptr: &[usize], row_idx: &[usize]) -> u64 {
    let mut h = PatternHash::new();
    h.write_u64(n as u64);
    for &p in col_ptr {
        h.write_u64(p as u64);
    }
    for &r in row_idx {
        h.write_u64(r as u64);
    }
    h.finish()
}

impl CscMatrix<f64> {
    /// A stable 64-bit FNV-1a hash of the stored **values' bit patterns**
    /// (pattern not included). Combined with [`CscMatrix::pattern_key`] it
    /// identifies a matrix bit-exactly: same pattern key and same value key
    /// means byte-identical storage.
    pub fn value_key(&self) -> u64 {
        let mut h = PatternHash::new();
        for &v in &self.values {
            h.write_u64(v.to_bits());
        }
        h.finish()
    }
}

/// Minimal FNV-1a hasher behind [`CscMatrix::pattern_key`] /
/// [`CscMatrix::value_key`] — deliberately independent of `std`'s randomised
/// `DefaultHasher` so keys are stable across processes and runs.
struct PatternHash {
    state: u64,
}

impl PatternHash {
    fn new() -> Self {
        Self { state: 0xCBF2_9CE4_8422_2325 }
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x1_0000_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// Computes a fill-reducing elimination ordering of a symmetric sparsity
/// pattern with the classical minimum-degree heuristic.
///
/// `adjacency[i]` lists the neighbours of unknown `i` (self-loops ignored).
/// Returns `perm` with `perm[logical] = position`: the unknown eliminated
/// first has position 0 — the same convention as
/// [`crate::ordering::reverse_cuthill_mckee`]. Ties break on the smallest
/// index, so the ordering is deterministic.
///
/// Eliminating a vertex joins its remaining neighbours into a clique (the
/// fill its pivot would create); always eliminating a currently
/// minimum-degree vertex keeps those cliques — and therefore the LU fill —
/// small. On trees it reproduces a perfect (zero-fill) leaf-to-root order.
pub fn minimum_degree(n: usize, adjacency: &[Vec<usize>]) -> Vec<usize> {
    assert_eq!(adjacency.len(), n, "adjacency list length must equal dimension");
    use std::collections::BTreeSet;
    let mut adj: Vec<BTreeSet<usize>> = adjacency
        .iter()
        .enumerate()
        .map(|(i, list)| list.iter().copied().filter(|&j| j != i && j < n).collect())
        .collect();
    let mut alive = vec![true; n];
    let mut perm = vec![0usize; n];
    for k in 0..n {
        // Smallest degree, smallest index first: deterministic and cheap.
        let mut best = UNSET;
        let mut best_degree = usize::MAX;
        for (v, a) in adj.iter().enumerate() {
            if alive[v] && a.len() < best_degree {
                best_degree = a.len();
                best = v;
            }
        }
        let v = best;
        perm[v] = k;
        alive[v] = false;
        let neighbours: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &neighbours {
            adj[u].remove(&v);
            for &w in &neighbours {
                if w != u {
                    adj[u].insert(w);
                }
            }
        }
        adj[v].clear();
    }
    perm
}

/// Computes a fill-reducing elimination ordering with the **approximate
/// minimum degree** (AMD) heuristic of Amestoy, Davis and Duff.
///
/// Same contract as [`minimum_degree`] — `adjacency[i]` lists the neighbours
/// of unknown `i`, the result is `perm[logical] = position`, ties break on
/// the smallest index so the ordering is deterministic — but where the
/// classical algorithm materialises every fill clique and rescans all
/// degrees per pivot (quadratic, hopeless past ~10⁴ unknowns), AMD works on
/// the *quotient graph*: an eliminated vertex becomes an *element* that
/// stands for its clique by reference, overlapping elements are absorbed
/// into one another, and external degrees are tracked through an
/// upper-bound approximation `d̂ᵢ ≥ dᵢ` that one pass over the pivot's
/// front can maintain. A lazy priority queue replaces the min-degree scan.
///
/// The approximation is exact whenever a vertex touches at most two
/// elements — always true while the graph is a forest — so AMD reproduces
/// the classical zero-fill leaf-to-root order on trees, while staying
/// near-linear in `nnz` on meshes and other fill-heavy patterns.
pub fn approximate_minimum_degree(n: usize, adjacency: &[Vec<usize>]) -> Vec<usize> {
    assert_eq!(adjacency.len(), n, "adjacency list length must equal dimension");
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Node {
        Variable,
        Element,
        Absorbed,
    }

    // Quotient-graph state. A live variable i keeps its remaining direct
    // neighbours (`adj_vars[i]`) and the elements whose cliques contain it
    // (`adj_elems[i]`); an element e (slot reused from the variable
    // eliminated there) keeps its boundary `elem_vars[e]` — the live
    // variables of its clique. Dead entries are pruned lazily against
    // `state`, so no list is ever rebuilt wholesale.
    let mut adj_vars: Vec<Vec<usize>> = adjacency
        .iter()
        .enumerate()
        .map(|(i, list)| {
            let mut l: Vec<usize> = list.iter().copied().filter(|&j| j != i && j < n).collect();
            l.sort_unstable();
            l.dedup();
            l
        })
        .collect();
    let mut adj_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elem_vars: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut degree: Vec<usize> = adj_vars.iter().map(Vec::len).collect();
    let mut state = vec![Node::Variable; n];
    let mut perm = vec![0usize; n];

    // Lazy min-heap over (degree, index): entries go stale when a degree
    // changes and are skipped on pop; the index component gives the
    // smallest-index tie-break.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|i| Reverse((degree[i], i))).collect();

    // Stamped marker arrays (no clearing between pivots):
    // `in_front[v] == stamp` ⇔ v ∈ Lp ∪ {p}; `seen_elem[e] == stamp` ⇔
    // `excess[e]` currently holds |Le \ Lp| for this pivot.
    let mut in_front = vec![0u64; n];
    let mut seen_elem = vec![0u64; n];
    let mut excess = vec![0usize; n];
    let mut stamp = 0u64;
    let mut front: Vec<usize> = Vec::new();

    for k in 0..n {
        let p = loop {
            let Reverse((d, v)) = heap.pop().expect("every live variable has a valid heap entry");
            if state[v] == Node::Variable && degree[v] == d {
                break v;
            }
        };
        perm[p] = k;
        state[p] = Node::Element;
        stamp += 1;
        in_front[p] = stamp;

        // The pivot front Lp: p's live direct neighbours plus the boundaries
        // of every element containing p. Those elements merge into the new
        // element p and disappear.
        front.clear();
        for &v in &adj_vars[p] {
            if state[v] == Node::Variable && in_front[v] != stamp {
                in_front[v] = stamp;
                front.push(v);
            }
        }
        let merged = std::mem::take(&mut adj_elems[p]);
        for &e in &merged {
            if state[e] != Node::Element {
                continue;
            }
            let vars = std::mem::take(&mut elem_vars[e]);
            for &v in &vars {
                if state[v] == Node::Variable && in_front[v] != stamp {
                    in_front[v] = stamp;
                    front.push(v);
                }
            }
            state[e] = Node::Absorbed;
        }
        front.sort_unstable();
        elem_vars[p] = front.clone();
        adj_vars[p] = Vec::new();
        adj_elems[p] = Vec::new();

        // One pass over the front counts |Le \ Lp| for every surviving
        // element e touching it: start from |Le| and subtract one per front
        // variable that lists e.
        for &i in &front {
            for &e in &adj_elems[i] {
                if state[e] != Node::Element {
                    continue;
                }
                if seen_elem[e] != stamp {
                    seen_elem[e] = stamp;
                    excess[e] = elem_vars[e].len();
                }
                excess[e] -= 1;
            }
        }
        // Aggressive absorption: a clique entirely inside the new one adds
        // no information and would only slow later passes down.
        for &i in &front {
            for &e in &adj_elems[i] {
                if state[e] == Node::Element && seen_elem[e] == stamp && excess[e] == 0 {
                    state[e] = Node::Absorbed;
                    elem_vars[e].clear();
                }
            }
        }

        // Rebuild each front variable's lists and recompute its approximate
        // external degree d̂ᵢ = min(n−k−1, d̂ᵢ + |Lp∖i|, |Aᵢ∖Lp| + |Lp∖i| +
        // Σ_{e∈Eᵢ∖p} |Le∖Lp|) — the AMD bound.
        let front_minus = front.len().saturating_sub(1);
        for &i in &front {
            adj_elems[i].retain(|&e| state[e] == Node::Element);
            let mut clique_sum = 0usize;
            for &e in &adj_elems[i] {
                clique_sum += excess[e];
            }
            adj_elems[i].push(p);
            // Neighbours inside the front are now reached through element p;
            // drop them (and dead vertices) from the direct list.
            adj_vars[i].retain(|&v| state[v] == Node::Variable && in_front[v] != stamp);
            let exact_part = adj_vars[i].len() + front_minus;
            let amd_bound = degree[i] + front_minus;
            let clique_bound = exact_part + clique_sum;
            degree[i] = (n - k - 1).min(amd_bound).min(clique_bound);
            heap.push(Reverse((degree[i], i)));
        }
    }
    perm
}

/// The symbolic phase of a sparse factorisation: the fill-reducing column
/// order of one sparsity pattern.
///
/// Computed once per pattern ([`SparseSymbolic::analyze`]) and reused by
/// every [`SparseLuFactor`] of a matrix with that pattern — the DC, transient
/// and AC analyses of one circuit all factor `gs·G + cs·C` for different
/// scalars, so they share one symbolic object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseSymbolic {
    n: usize,
    /// `order[k]` = logical column eliminated at step `k`.
    order: Vec<usize>,
    /// Inverse of `order`: `perm[logical] = position`.
    perm: Vec<usize>,
}

impl SparseSymbolic {
    /// Analyses a sparsity pattern given as `(row, col)` pairs.
    ///
    /// The pattern is symmetrised (`A + Aᵀ`), as usual for LU with partial
    /// pivoting on structurally symmetric MNA systems, and ordered with
    /// [`approximate_minimum_degree`] — near-linear in `nnz`, so the
    /// symbolic phase stays off the critical path even at 10⁵–10⁶ unknowns.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or any index is out of range.
    pub fn analyze(n: usize, pattern: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let _span = rlckit_telemetry::span("sparse.symbolic");
        assert!(n > 0, "symbolic dimension must be non-zero");
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (r, c) in pattern {
            assert!(r < n && c < n, "pattern index ({r}, {c}) out of bounds for dimension {n}");
            if r != c {
                adjacency[r].push(c);
                adjacency[c].push(r);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        let perm = approximate_minimum_degree(n, &adjacency);
        let mut order = vec![0usize; n];
        for (logical, &position) in perm.iter().enumerate() {
            order[position] = logical;
        }
        Self { n, order, perm }
    }

    /// The natural (identity) ordering — no fill reduction.
    pub fn natural(n: usize) -> Self {
        assert!(n > 0, "symbolic dimension must be non-zero");
        Self { n, order: (0..n).collect(), perm: (0..n).collect() }
    }

    /// Wraps an externally computed elimination order given in
    /// `perm[logical] = position` convention (the convention of
    /// [`minimum_degree`] and [`approximate_minimum_degree`]), so ordering
    /// heuristics can be compared through the same factorisation kernel.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n` or `n` is zero.
    pub fn from_permutation(n: usize, perm: Vec<usize>) -> Self {
        assert!(n > 0, "symbolic dimension must be non-zero");
        assert_eq!(perm.len(), n, "permutation length must match the dimension");
        let mut order = vec![usize::MAX; n];
        for (logical, &position) in perm.iter().enumerate() {
            assert!(position < n, "permutation entry {position} out of range");
            assert_eq!(order[position], usize::MAX, "permutation must be a bijection");
            order[position] = logical;
        }
        Self { n, order, perm }
    }

    /// Dimension of the analysed pattern.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The elimination order: `order()[k]` is the logical column eliminated
    /// at step `k`.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The permutation in `perm[logical] = position` convention.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }
}

/// A sparse LU factorisation `P·A·Q = L·U` (left-looking Gilbert–Peierls with
/// partial pivoting).
///
/// `Q` is the fill-reducing column order from a [`SparseSymbolic`]; `P` is
/// chosen during elimination for stability. `L` is unit lower triangular with
/// the unit diagonal stored first in each column, `U` is upper triangular
/// with the diagonal stored last — both in compressed-column form, so a solve
/// is one sparse forward and one sparse backward substitution.
#[derive(Debug, Clone)]
pub struct SparseLuFactor<T: Scalar = f64> {
    n: usize,
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<T>,
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<T>,
    /// `pinv[old_row] = pivotal position`.
    pinv: Vec<usize>,
    /// `order[k]` = logical column eliminated at step `k` (from the symbolic).
    order: Vec<usize>,
}

impl<T: Scalar> SparseLuFactor<T> {
    /// Factorises `a` under the column order of `symbolic`.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::Singular`] if no acceptable pivot exists in
    /// some column (reported with the *logical* column index).
    ///
    /// # Panics
    ///
    /// Panics if `symbolic.dim() != a.dim()`.
    pub fn factor(a: &CscMatrix<T>, symbolic: &SparseSymbolic) -> Result<Self, FactorizeError> {
        let _span = rlckit_telemetry::span("sparse.factor");
        let n = a.dim();
        assert_eq!(symbolic.dim(), n, "symbolic and matrix dimensions must agree");

        let mut pinv = vec![UNSET; n];
        // Dense workspaces indexed by old row: the current column's values,
        // a visited flag for the DFS, and the DFS stacks.
        let mut x = vec![T::zero(); n];
        let mut visited = vec![false; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut node_stack: Vec<usize> = Vec::with_capacity(n);
        let mut edge_stack: Vec<usize> = Vec::with_capacity(n);

        let mut l_colptr = Vec::with_capacity(n + 1);
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        let mut u_colptr = Vec::with_capacity(n + 1);
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();
        l_colptr.push(0);
        u_colptr.push(0);

        for k in 0..n {
            let col = symbolic.order[k];

            // Symbolic step: reachability of A(:, col) through the computed L
            // columns, producing the fill pattern in topological order
            // (reverse DFS completion order). Graph edges run from a pivotal
            // row `i` to the rows of L column `pinv[i]`, i.e. along the
            // updates the numeric pass must apply in sequence.
            topo.clear();
            for &start in a.col_rows(col) {
                if visited[start] {
                    continue;
                }
                node_stack.push(start);
                edge_stack.push(0);
                visited[start] = true;
                while let Some(&i) = node_stack.last() {
                    let children: &[usize] = match pinv[i] {
                        UNSET => &[],
                        j => &l_rows[l_colptr[j]..l_colptr[j + 1]],
                    };
                    let e = edge_stack.last_mut().expect("stacks stay in lockstep");
                    let mut descended = false;
                    while *e < children.len() {
                        let child = children[*e];
                        *e += 1;
                        if !visited[child] {
                            visited[child] = true;
                            node_stack.push(child);
                            edge_stack.push(0);
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        topo.push(i);
                        node_stack.pop();
                        edge_stack.pop();
                    }
                }
            }
            // Reverse completion order = topological order over update edges.
            topo.reverse();

            // Numeric step: scatter A(:, col), then run the sparse triangular
            // solve x ← L⁻¹·A(:, col) over the pattern.
            for (&i, &v) in a.col_rows(col).iter().zip(a.col_values(col)) {
                x[i] = v;
            }
            for &j in &topo {
                let pj = pinv[j];
                if pj == UNSET {
                    continue;
                }
                let xj = x[j];
                if xj != T::zero() {
                    // Skip the leading unit-diagonal entry of L column pj.
                    for p in (l_colptr[pj] + 1)..l_colptr[pj + 1] {
                        x[l_rows[p]] = x[l_rows[p]] - l_vals[p] * xj;
                    }
                }
            }

            // Pivot search over the not-yet-pivotal rows of the pattern.
            let mut pivot_row = UNSET;
            let mut pivot_mag = 0.0;
            for &i in &topo {
                if pinv[i] == UNSET {
                    let mag = x[i].modulus();
                    if mag > pivot_mag {
                        pivot_mag = mag;
                        pivot_row = i;
                    }
                }
            }
            if pivot_row == UNSET || !(pivot_mag > SINGULARITY_THRESHOLD) {
                // Clean the workspaces before reporting, for reuse safety.
                for &i in &topo {
                    x[i] = T::zero();
                    visited[i] = false;
                }
                return Err(FactorizeError::Singular { column: col });
            }
            let pivot = x[pivot_row];

            // Emit U column k: the already-pivotal pattern rows, diagonal last.
            for &i in &topo {
                if pinv[i] != UNSET {
                    u_rows.push(pinv[i]);
                    u_vals.push(x[i]);
                }
            }
            u_rows.push(k);
            u_vals.push(pivot);
            u_colptr.push(u_rows.len());

            // Emit L column k: unit diagonal first, then the below-diagonal
            // multipliers. Rows stay in *old* indices until the final remap.
            pinv[pivot_row] = k;
            l_rows.push(pivot_row);
            l_vals.push(T::one());
            for &i in &topo {
                if pinv[i] == UNSET {
                    l_rows.push(i);
                    l_vals.push(x[i] / pivot);
                }
            }
            l_colptr.push(l_rows.len());

            for &i in &topo {
                x[i] = T::zero();
                visited[i] = false;
            }
        }

        // Remap L's rows from old indices to pivotal positions.
        for r in &mut l_rows {
            *r = pinv[*r];
        }

        // Sort every U column ascending by row. Ascending pivotal order is a
        // valid topological order of the update dependencies (L is strictly
        // lower triangular in pivotal indices), which is what the value-only
        // refactorisation walks; the diagonal — the largest row of its
        // column — stays last, which `solve` relies on.
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for j in 0..n {
            let lo = u_colptr[j];
            let hi = u_colptr[j + 1];
            scratch.clear();
            scratch.extend(u_rows[lo..hi].iter().copied().zip(u_vals[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(r, _)| r);
            for (off, &(r, v)) in scratch.iter().enumerate() {
                u_rows[lo + off] = r;
                u_vals[lo + off] = v;
            }
        }

        // Factor-quality gauges, computed only under an active profiler: the
        // max-ratio scan over U and A is O(nnz) work the cold path skips.
        if rlckit_telemetry::enabled() {
            let nnz = a.nnz() as f64;
            rlckit_telemetry::gauge_set("sparse.l_nnz", l_rows.len() as f64);
            rlckit_telemetry::gauge_set("sparse.u_nnz", u_rows.len() as f64);
            rlckit_telemetry::gauge_set(
                "sparse.fill_ratio",
                (l_rows.len() + u_rows.len()) as f64 / nnz.max(1.0),
            );
            let max_u = u_vals.iter().map(|v| v.modulus()).fold(0.0, f64::max);
            let max_a =
                (0..n).flat_map(|j| a.col_values(j)).map(|v| v.modulus()).fold(0.0, f64::max);
            if max_a > 0.0 {
                let growth = max_u / max_a;
                rlckit_telemetry::gauge_set("sparse.pivot_growth", growth);
                rlckit_telemetry::check_metric(
                    "sparse.factor",
                    "pivot_growth",
                    growth,
                    crate::condition::PIVOT_GROWTH_WARN,
                    crate::condition::PIVOT_GROWTH_ERROR,
                );
            }
            // Near-singularity proxy from the U diagonal (see lu.rs): the
            // diagonal sits last in every U column.
            let mut max_d = 0.0_f64;
            let mut min_d = f64::INFINITY;
            for j in 0..n {
                let m = u_vals[u_colptr[j + 1] - 1].modulus();
                max_d = max_d.max(m);
                min_d = min_d.min(m);
            }
            rlckit_telemetry::check_metric(
                "sparse.factor",
                "near_singularity",
                f64::EPSILON * max_d / min_d,
                crate::condition::NEAR_SINGULAR_WARN,
                crate::condition::NEAR_SINGULAR_ERROR,
            );
        }

        Ok(Self {
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            pinv,
            order: symbolic.order.clone(),
        })
    }

    /// Factorises with a freshly analysed symbolic phase (convenience for
    /// one-off factorisations; reuse a [`SparseSymbolic`] when factoring many
    /// matrices with one pattern).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SparseLuFactor::factor`].
    pub fn factor_auto(a: &CscMatrix<T>) -> Result<Self, FactorizeError> {
        let symbolic = SparseSymbolic::analyze(a.dim(), a.triplets().map(|(r, c, _)| (r, c)));
        Self::factor(a, &symbolic)
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in the `L` factor (including the unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l_rows.len()
    }

    /// Stored entries in the `U` factor (including the diagonal).
    pub fn u_nnz(&self) -> usize {
        self.u_rows.len()
    }

    /// Recomputes the numeric values of the factors for a matrix with the
    /// same sparsity pattern as (or a sub-pattern of) the one originally
    /// factored, reusing the symbolic order, the pivot sequence **and** the
    /// fill pattern discovered by [`SparseLuFactor::factor`].
    ///
    /// This is the warm path for re-solving one circuit with new element
    /// values: no reachability DFS, no per-column pivot search, no growth of
    /// factor storage — just the sparse triangular-solve flops, column by
    /// column over the frozen pattern. Entries the new matrix lacks are
    /// treated as stored zeros.
    ///
    /// Because the pivot sequence is frozen, stability is inherited from the
    /// original pivot choice. That is the right trade for the intended
    /// caller — MNA matrices `gs·G + cs·C` re-evaluated for new scalars or
    /// perturbed element values keep their diagonal character — and a pivot
    /// that the new values do break shows up as an error, never silently.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::Singular`] if a frozen pivot becomes
    /// numerically zero under the new values (reported with the logical
    /// column index).
    ///
    /// # Panics
    ///
    /// Panics if `a.dim()` differs from the factored dimension, or if `a`
    /// has an entry outside the factored fill pattern (refactor a changed
    /// pattern with a fresh [`SparseLuFactor::factor`] instead).
    pub fn refactor(&mut self, a: &CscMatrix<T>) -> Result<(), FactorizeError> {
        let _span = rlckit_telemetry::span("sparse.refactor");
        assert_eq!(a.dim(), self.n, "refactor dimension must match the factored matrix");
        let n = self.n;
        let mut x = vec![T::zero(); n];
        // `in_pattern[pos] == k` ⇔ pivotal position `pos` belongs to column
        // k's frozen pattern (stamp scheme, never cleared).
        let mut in_pattern = vec![UNSET; n];
        for k in 0..n {
            let col = self.order[k];
            // Column k's pattern in pivotal positions: the U rows (all < k,
            // plus the trailing diagonal k) and the below-diagonal L rows.
            for p in self.u_colptr[k]..self.u_colptr[k + 1] {
                let r = self.u_rows[p];
                x[r] = T::zero();
                in_pattern[r] = k;
            }
            for p in (self.l_colptr[k] + 1)..self.l_colptr[k + 1] {
                let r = self.l_rows[p];
                x[r] = T::zero();
                in_pattern[r] = k;
            }
            for (&i, &v) in a.col_rows(col).iter().zip(a.col_values(col)) {
                let pos = self.pinv[i];
                assert_eq!(
                    in_pattern[pos], k,
                    "refactor pattern mismatch: entry ({i}, {col}) is outside the factored fill pattern"
                );
                x[pos] = v;
            }
            // Sparse triangular solve over the frozen pattern. U rows are
            // sorted ascending — a topological order of the updates — and
            // every row an applied L column touches is inside the pattern
            // (the fill-path property that created those entries).
            let diag = self.u_colptr[k + 1] - 1;
            for p in self.u_colptr[k]..diag {
                let j = self.u_rows[p];
                let xj = x[j];
                self.u_vals[p] = xj;
                if xj != T::zero() {
                    for q in (self.l_colptr[j] + 1)..self.l_colptr[j + 1] {
                        x[self.l_rows[q]] = x[self.l_rows[q]] - self.l_vals[q] * xj;
                    }
                }
            }
            let pivot = x[k];
            if !(pivot.modulus() > SINGULARITY_THRESHOLD) {
                return Err(FactorizeError::Singular { column: col });
            }
            self.u_vals[diag] = pivot;
            for q in (self.l_colptr[k] + 1)..self.l_colptr[k + 1] {
                self.l_vals[q] = x[self.l_rows[q]] / pivot;
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` with the stored factors in `O(nnz(L) + nnz(U))`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let _span = rlckit_telemetry::span("sparse.solve");
        assert_eq!(b.len(), self.n, "right-hand side length must equal matrix dimension");
        // Row permutation: position k of the permuted system holds b[i] for
        // the row i pivotal at step k.
        let mut x = vec![T::zero(); self.n];
        for (i, &bi) in b.iter().enumerate() {
            x[self.pinv[i]] = bi;
        }
        // Forward substitution with unit-lower L (diagonal stored first).
        for j in 0..self.n {
            let xj = x[j];
            if xj != T::zero() {
                for p in (self.l_colptr[j] + 1)..self.l_colptr[j + 1] {
                    x[self.l_rows[p]] = x[self.l_rows[p]] - self.l_vals[p] * xj;
                }
            }
        }
        // Backward substitution with U (diagonal stored last).
        for j in (0..self.n).rev() {
            let d = self.u_vals[self.u_colptr[j + 1] - 1];
            let xj = x[j] / d;
            x[j] = xj;
            if xj != T::zero() {
                for p in self.u_colptr[j]..(self.u_colptr[j + 1] - 1) {
                    x[self.u_rows[p]] = x[self.u_rows[p]] - self.u_vals[p] * xj;
                }
            }
        }
        // Column permutation: solution position k belongs to logical
        // unknown order[k].
        let mut out = vec![T::zero(); self.n];
        for (k, &logical) in self.order.iter().enumerate() {
            out[logical] = x[k];
        }
        out
    }

    /// Solves the transposed system `Aᵀ·x = b` with the same stored factors
    /// in `O(nnz(L) + nnz(U))`.
    ///
    /// With `P·A·Q = L·U` the transpose factors as `Aᵀ = Q·Uᵀ·Lᵀ·P`, so the
    /// permutations swap roles (the column order applies to the input, the
    /// pivot order to the output) and each substitution runs in dot-product
    /// form over the stored columns read as rows. Fuel for the Hager–Higham
    /// condition estimator ([`crate::condition::invnorm1_estimate`]).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve_transpose(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.n, "right-hand side length must equal matrix dimension");
        // Column permutation on the input side: position k takes the logical
        // unknown eliminated at step k.
        let mut z = vec![T::zero(); self.n];
        for (k, &logical) in self.order.iter().enumerate() {
            z[k] = b[logical];
        }
        // Forward substitution with Uᵀ: row j of Uᵀ is U's column j, whose
        // off-diagonal entries (rows < j) precede the trailing diagonal.
        for j in 0..self.n {
            let diag = self.u_colptr[j + 1] - 1;
            let mut acc = z[j];
            for p in self.u_colptr[j]..diag {
                acc = acc - self.u_vals[p] * z[self.u_rows[p]];
            }
            z[j] = acc / self.u_vals[diag];
        }
        // Backward substitution with the unit-diagonal Lᵀ.
        for j in (0..self.n).rev() {
            let mut acc = z[j];
            for p in (self.l_colptr[j] + 1)..self.l_colptr[j + 1] {
                acc = acc - self.l_vals[p] * z[self.l_rows[p]];
            }
            z[j] = acc;
        }
        // Row permutation on the output side: x = Pᵀ·z.
        let mut out = vec![T::zero(); self.n];
        for (i, out_i) in out.iter_mut().enumerate() {
            *out_i = z[self.pinv[i]];
        }
        out
    }

    /// Solves `A·X = B` for many right-hand sides with the one stored
    /// factorisation, `O(m·(nnz(L) + nnz(U)))` for `m` columns.
    ///
    /// Equivalent to calling [`SparseLuFactor::solve`] per column, but
    /// blocked the other way round: each `L`/`U` column is applied to every
    /// right-hand side while it is hot, so the factor streams through cache
    /// once per block instead of once per column — the win grows with `m`
    /// (MIMO ports, sweep cells, AC excitations).
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side's length differs from the dimension.
    pub fn solve_many(&self, rhs: &[Vec<T>]) -> Vec<Vec<T>> {
        let _span = rlckit_telemetry::span("sparse.solve_many");
        let n = self.n;
        let mut work: Vec<Vec<T>> = rhs
            .iter()
            .map(|b| {
                assert_eq!(b.len(), n, "right-hand side length must equal matrix dimension");
                let mut x = vec![T::zero(); n];
                for (i, &bi) in b.iter().enumerate() {
                    x[self.pinv[i]] = bi;
                }
                x
            })
            .collect();
        for j in 0..n {
            let rows = &self.l_rows[(self.l_colptr[j] + 1)..self.l_colptr[j + 1]];
            let vals = &self.l_vals[(self.l_colptr[j] + 1)..self.l_colptr[j + 1]];
            for x in &mut work {
                let xj = x[j];
                if xj != T::zero() {
                    for (&r, &v) in rows.iter().zip(vals) {
                        x[r] = x[r] - v * xj;
                    }
                }
            }
        }
        for j in (0..n).rev() {
            let diag = self.u_colptr[j + 1] - 1;
            let d = self.u_vals[diag];
            let rows = &self.u_rows[self.u_colptr[j]..diag];
            let vals = &self.u_vals[self.u_colptr[j]..diag];
            for x in &mut work {
                let xj = x[j] / d;
                x[j] = xj;
                if xj != T::zero() {
                    for (&r, &v) in rows.iter().zip(vals) {
                        x[r] = x[r] - v * xj;
                    }
                }
            }
        }
        work.iter()
            .map(|x| {
                let mut out = vec![T::zero(); n];
                for (k, &logical) in self.order.iter().enumerate() {
                    out[logical] = x[k];
                }
                out
            })
            .collect()
    }
}

impl SparseLuFactor<f64> {
    /// Hager–Higham estimate of `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁` from the stored
    /// factors, given the 1-norm of the original matrix
    /// ([`CscMatrix::norm_one`]). A handful of extra `O(nnz)` solves, no
    /// re-factorisation; a lower bound of the true condition number.
    pub fn condest(&self, norm_one_a: f64) -> f64 {
        norm_one_a
            * crate::condition::invnorm1_estimate(
                self.dim(),
                |b| self.solve(b),
                |b| self.solve_transpose(b),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::lu::LuFactor;

    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    /// A random symmetric-pattern sparse matrix shaped like a tree MNA
    /// system: parent/child couplings of a random tree plus a dominant
    /// diagonal.
    fn random_tree_matrix(n: usize, seed: u64) -> CscMatrix<f64> {
        let mut state = seed;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 4.0 + lcg(&mut state).abs()));
            if i > 0 {
                // Pick a random earlier node as parent.
                let parent = (((lcg(&mut state) + 0.5) * i as f64) as usize).min(i - 1);
                let v = lcg(&mut state);
                triplets.push((i, parent, v));
                triplets.push((parent, i, v * 0.5 - 0.7));
            }
        }
        CscMatrix::from_triplets(n, &triplets)
    }

    #[test]
    fn from_triplets_sums_duplicates_and_drops_zeros() {
        let a = CscMatrix::from_triplets(
            3,
            &[(0, 0, 1.0), (0, 0, 2.0), (1, 2, 5.0), (1, 2, -5.0), (2, 1, -1.0)],
        );
        assert_eq!(a.dim(), 3);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 2), 0.0); // cancelled stamp is dropped
        assert_eq!(a.get(2, 1), -1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn mul_vec_and_to_dense_agree() {
        let a = random_tree_matrix(17, 0xFEED);
        let x: Vec<f64> = (0..17).map(|i| (i as f64 * 0.31).sin()).collect();
        let ys = a.mul_vec(&x);
        let yd = a.to_dense().mul_vec(&x);
        for (s, d) in ys.iter().zip(yd.iter()) {
            assert!((s - d).abs() < 1e-14);
        }
    }

    #[test]
    fn from_banded_round_trips() {
        let mut b = BandedMatrix::<f64>::zeros(5, 1, 1);
        for i in 0..5 {
            b.set(i, i, 2.0);
            if i + 1 < 5 {
                b.set(i, i + 1, -1.0);
            }
        }
        let a = CscMatrix::from_banded(&b);
        assert_eq!(a.nnz(), 9);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }

    #[test]
    fn minimum_degree_is_a_bijection_and_orders_leaves_first() {
        // Star graph: centre 0 with 4 leaves. Leaves have degree 1 and must
        // all be eliminated before the centre.
        let adjacency = vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]];
        let perm = minimum_degree(5, &adjacency);
        let mut seen = [false; 5];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        // Degree-1 leaves go first; the hub only becomes eligible once its
        // degree has dropped to match theirs (after 3 of 4 leaves are gone).
        assert!(perm[0] >= 3, "the hub must wait until the leaves shrink it, got {}", perm[0]);
    }

    #[test]
    fn symbolic_order_inverts_its_permutation() {
        let a = random_tree_matrix(12, 3);
        let sym = SparseSymbolic::analyze(12, a.triplets().map(|(r, c, _)| (r, c)));
        assert_eq!(sym.dim(), 12);
        for (logical, &position) in sym.permutation().iter().enumerate() {
            assert_eq!(sym.order()[position], logical);
        }
        let natural = SparseSymbolic::natural(4);
        assert_eq!(natural.order(), &[0, 1, 2, 3]);
    }

    #[test]
    fn sparse_solve_matches_dense_on_tree_matrices() {
        for seed in [1u64, 2, 3] {
            let n = 60;
            let a = random_tree_matrix(n, seed);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
            let xs = SparseLuFactor::factor_auto(&a).unwrap().solve(&b);
            let xd = LuFactor::new(&a.to_dense()).unwrap().solve(&b);
            for (s, d) in xs.iter().zip(xd.iter()) {
                assert!((s - d).abs() < 1e-10, "sparse {s} vs dense {d}");
            }
        }
    }

    #[test]
    fn tree_factorisation_has_no_fill() {
        // Eliminating a tree leaf-to-root creates no fill: nnz(L) + nnz(U)
        // equals nnz(A) + n (the unit diagonal of L).
        let n = 200;
        let a = random_tree_matrix(n, 7);
        let f = SparseLuFactor::factor_auto(&a).unwrap();
        assert_eq!(f.l_nnz() + f.u_nnz(), a.nnz() + n, "min-degree must keep trees fill-free");
    }

    #[test]
    fn symbolic_phase_is_reused_across_numeric_factorisations() {
        // Two matrices with the same pattern, different values (the DC and
        // transient matrices of one circuit): one analyze, two factors.
        let n = 40;
        let a = random_tree_matrix(n, 11);
        let sym = SparseSymbolic::analyze(n, a.triplets().map(|(r, c, _)| (r, c)));
        let scaled = CscMatrix::from_triplets(
            n,
            &a.triplets().map(|(r, c, v)| (r, c, 2.5 * v)).collect::<Vec<_>>(),
        );
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x1 = SparseLuFactor::factor(&a, &sym).unwrap().solve(&b);
        let x2 = SparseLuFactor::factor(&scaled, &sym).unwrap().solve(&b);
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - 2.5 * v).abs() < 1e-10, "scaling the matrix scales the solution down");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = CscMatrix::from_triplets(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let x = SparseLuFactor::factor_auto(&a).unwrap().solve(&[3.0, 5.0]);
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrices_are_reported() {
        // Zero column.
        let a = CscMatrix::from_triplets(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 0, 1.0)]);
        match SparseLuFactor::factor_auto(&a) {
            Err(FactorizeError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
        // Linearly dependent rows.
        let b = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
        match SparseLuFactor::factor_auto(&b) {
            Err(FactorizeError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn complex_sparse_system() {
        let a = CscMatrix::from_triplets(
            2,
            &[
                (0, 0, Complex::new(1.0, 1.0)),
                (0, 1, Complex::ONE),
                (1, 0, Complex::ONE),
                (1, 1, -Complex::ONE),
            ],
        );
        let x =
            SparseLuFactor::factor_auto(&a).unwrap().solve(&[Complex::new(2.0, 0.0), Complex::J]);
        assert!((x[0] - Complex::ONE).abs() < 1e-12);
        assert!((x[1] - Complex::new(1.0, -1.0)).abs() < 1e-12);
    }

    #[test]
    fn residuals_stay_small_on_random_banded_patterns() {
        // Not a tree: a pentadiagonal pattern exercises genuine fill.
        let n: usize = 50;
        let mut state = 0xBADC0FFEu64;
        let mut triplets = Vec::new();
        for i in 0..n {
            for j in i.saturating_sub(2)..(i + 3).min(n) {
                triplets.push((i, j, lcg(&mut state)));
            }
            triplets.push((i, i, 6.0));
        }
        let a = CscMatrix::from_triplets(n, &triplets);
        let b: Vec<f64> = (0..n).map(|i| lcg(&mut { state + i as u64 })).collect();
        let f = SparseLuFactor::factor_auto(&a).unwrap();
        assert_eq!(f.dim(), n);
        let x = f.solve(&b);
        let r = a.mul_vec(&x);
        for (ri, bi) in r.iter().zip(b.iter()) {
            assert!((ri - bi).abs() < 1e-10, "residual {}", (ri - bi).abs());
        }
    }

    #[test]
    #[should_panic]
    fn solve_with_wrong_rhs_length_panics() {
        let a = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let f = SparseLuFactor::factor_auto(&a).unwrap();
        let _ = f.solve(&[1.0]);
    }

    /// A diagonally dominant matrix on a `rows × cols` grid graph — the
    /// power-mesh pattern that defeats both banded storage and the zero-fill
    /// tree path.
    fn grid_matrix(rows: usize, cols: usize, seed: u64) -> CscMatrix<f64> {
        let n = rows * cols;
        let mut state = seed;
        let mut triplets = Vec::new();
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                let i = idx(r, c);
                triplets.push((i, i, 8.0 + lcg(&mut state).abs()));
                if c + 1 < cols {
                    let v = 1.0 + 0.5 * lcg(&mut state);
                    triplets.push((i, idx(r, c + 1), -v));
                    triplets.push((idx(r, c + 1), i, -v));
                }
                if r + 1 < rows {
                    let v = 1.0 + 0.5 * lcg(&mut state);
                    triplets.push((i, idx(r + 1, c), -v));
                    triplets.push((idx(r + 1, c), i, -v));
                }
            }
        }
        CscMatrix::from_triplets(n, &triplets)
    }

    fn grid_adjacency(rows: usize, cols: usize) -> Vec<Vec<usize>> {
        let a = grid_matrix(rows, cols, 1);
        let n = a.dim();
        let mut adjacency = vec![Vec::new(); n];
        for (r, c, _) in a.triplets() {
            if r != c {
                adjacency[r].push(c);
            }
        }
        adjacency
    }

    fn fill_under(a: &CscMatrix<f64>, perm: Vec<usize>) -> usize {
        let n = a.dim();
        let mut order = vec![0usize; n];
        for (logical, &position) in perm.iter().enumerate() {
            order[position] = logical;
        }
        let sym = SparseSymbolic { n, order, perm };
        let f = SparseLuFactor::factor(a, &sym).unwrap();
        f.l_nnz() + f.u_nnz()
    }

    #[test]
    fn amd_is_a_bijection_and_orders_leaves_first() {
        let adjacency = vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]];
        let perm = approximate_minimum_degree(5, &adjacency);
        let mut seen = [false; 5];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(perm[0] >= 3, "the hub must wait until the leaves shrink it, got {}", perm[0]);
    }

    #[test]
    fn amd_keeps_trees_fill_free() {
        // AMD degrees are exact on forests, so it must reproduce the
        // classical zero-fill leaf-to-root elimination.
        let n = 300;
        let a = random_tree_matrix(n, 21);
        let mut adjacency = vec![Vec::new(); n];
        for (r, c, _) in a.triplets() {
            if r != c {
                adjacency[r].push(c);
            }
        }
        let fill = fill_under(&a, approximate_minimum_degree(n, &adjacency));
        assert_eq!(fill, a.nnz() + n, "AMD must keep trees fill-free");
    }

    #[test]
    fn amd_fill_is_competitive_with_classical_minimum_degree_on_grids() {
        for (rows, cols) in [(7usize, 9usize), (10, 10), (12, 8)] {
            let a = grid_matrix(rows, cols, 0xA11CE);
            let n = a.dim();
            let adjacency = grid_adjacency(rows, cols);
            let amd_fill = fill_under(&a, approximate_minimum_degree(n, &adjacency));
            let md_fill = fill_under(&a, minimum_degree(n, &adjacency));
            assert!(
                amd_fill <= 2 * md_fill,
                "{rows}x{cols} grid: AMD fill {amd_fill} vs classical {md_fill}"
            );
        }
    }

    #[test]
    fn from_parts_round_trips_and_keeps_explicit_zeros() {
        let a = grid_matrix(4, 4, 3);
        let mut values: Vec<f64> = Vec::new();
        for j in 0..a.dim() {
            values.extend_from_slice(a.col_values(j));
        }
        let b = CscMatrix::from_parts(a.dim(), a.col_ptr.clone(), a.row_idx.clone(), values);
        assert_eq!(a, b);
        // Explicit zeros stay stored: the pattern is value-independent.
        let z = CscMatrix::from_parts(2, vec![0, 1, 2], vec![0, 1], vec![0.0, 1.0]);
        assert_eq!(z.nnz(), 2);
        assert_eq!(z.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_unsorted_rows() {
        let _ = CscMatrix::from_parts(2, vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn refactor_matches_fresh_factor_on_trees_and_grids() {
        let patterns: Vec<CscMatrix<f64>> = vec![random_tree_matrix(80, 13), grid_matrix(9, 9, 17)];
        for a in patterns {
            let n = a.dim();
            let mut f = SparseLuFactor::factor_auto(&a).unwrap();
            let mut state = 0xD1CEu64;
            for round in 0..3 {
                // Perturb every value but keep the pattern byte-identical.
                let perturbed: Vec<(usize, usize, f64)> = a
                    .triplets()
                    .map(|(r, c, v)| (r, c, v * (1.0 + 0.2 * lcg(&mut state))))
                    .collect();
                let b = CscMatrix::from_triplets(n, &perturbed);
                f.refactor(&b).unwrap();
                let fresh = SparseLuFactor::factor_auto(&b).unwrap();
                let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7 + round as f64).sin()).collect();
                let xw = f.solve(&rhs);
                let xf = fresh.solve(&rhs);
                for (w, fr) in xw.iter().zip(xf.iter()) {
                    assert!((w - fr).abs() < 1e-12, "refactor {w} vs fresh {fr}");
                }
            }
        }
    }

    #[test]
    fn refactor_accepts_a_sub_pattern() {
        // Missing entries read as stored zeros — a transient matrix with a
        // dropped coupling still refactors against the wider pattern.
        let a = grid_matrix(5, 5, 29);
        let mut f = SparseLuFactor::factor_auto(&a).unwrap();
        let sub: Vec<(usize, usize, f64)> =
            a.triplets().filter(|&(r, c, _)| r == c || (r + c) % 3 != 0).collect();
        let b = CscMatrix::from_triplets(a.dim(), &sub);
        f.refactor(&b).unwrap();
        let rhs: Vec<f64> = (0..a.dim()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let xw = f.solve(&rhs);
        let xf = SparseLuFactor::factor_auto(&b).unwrap().solve(&rhs);
        for (w, fr) in xw.iter().zip(xf.iter()) {
            assert!((w - fr).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn refactor_rejects_entries_outside_the_pattern() {
        let a = CscMatrix::from_triplets(3, &[(0, 0, 2.0), (1, 1, 2.0), (2, 2, 2.0), (1, 0, 1.0)]);
        let mut f = SparseLuFactor::factor_auto(&a).unwrap();
        let b = CscMatrix::from_triplets(3, &[(0, 0, 2.0), (1, 1, 2.0), (2, 2, 2.0), (2, 0, 1.0)]);
        let _ = f.refactor(&b);
    }

    #[test]
    fn refactor_reports_a_broken_pivot_as_singular() {
        let a = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let mut f = SparseLuFactor::factor_auto(&a).unwrap();
        let b = CscMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 0.0)]);
        // from_triplets drops the explicit zero, so (1,1) is simply absent —
        // a sub-pattern whose frozen pivot is now exactly zero.
        match f.refactor(&b) {
            Err(FactorizeError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn refactor_with_complex_values() {
        let a = CscMatrix::from_triplets(
            2,
            &[
                (0, 0, Complex::new(1.0, 1.0)),
                (0, 1, Complex::ONE),
                (1, 0, Complex::ONE),
                (1, 1, -Complex::ONE),
            ],
        );
        let mut f = SparseLuFactor::factor_auto(&a).unwrap();
        let scaled = CscMatrix::from_triplets(
            2,
            &a.triplets().map(|(r, c, v)| (r, c, v * Complex::new(0.0, 2.0))).collect::<Vec<_>>(),
        );
        f.refactor(&scaled).unwrap();
        let b = [Complex::new(2.0, 0.0), Complex::J];
        let xw = f.solve(&b);
        let xf = SparseLuFactor::factor_auto(&scaled).unwrap().solve(&b);
        for (w, fr) in xw.iter().zip(xf.iter()) {
            assert!((*w - *fr).abs() < 1e-12);
        }
    }

    #[test]
    fn pattern_and_value_keys_separate_structure_from_values() {
        let a = grid_matrix(6, 5, 0xAB);
        let same_pattern = CscMatrix::from_parts(
            a.dim(),
            a.col_ptr.clone(),
            a.row_idx.clone(),
            a.values.iter().map(|v| v * 1.5).collect(),
        );
        // Identical structure, different values: pattern keys agree, value
        // keys differ.
        assert_eq!(a.pattern_key(), same_pattern.pattern_key());
        assert_ne!(a.value_key(), same_pattern.value_key());
        // Identical everything: both keys agree (and are deterministic).
        assert_eq!(a.value_key(), a.clone().value_key());
        // A different structure moves the pattern key.
        let other = grid_matrix(5, 6, 0xAB);
        assert_ne!(a.pattern_key(), other.pattern_key());
        // Accessors expose the raw CSC arrays consistently.
        assert_eq!(a.col_ptr_slice().len(), a.dim() + 1);
        assert_eq!(a.row_idx_slice().len(), a.nnz());
    }

    #[test]
    fn solve_many_matches_repeated_solve() {
        let a = grid_matrix(8, 7, 0xBEEF);
        let n = a.dim();
        let f = SparseLuFactor::factor_auto(&a).unwrap();
        let rhs: Vec<Vec<f64>> =
            (0..5).map(|k| (0..n).map(|i| ((i + 3 * k) as f64 * 0.13).cos()).collect()).collect();
        let many = f.solve_many(&rhs);
        assert_eq!(many.len(), rhs.len());
        for (b, x) in rhs.iter().zip(many.iter()) {
            let one = f.solve(b);
            for (m, o) in x.iter().zip(one.iter()) {
                assert!((m - o).abs() < 1e-14, "solve_many {m} vs solve {o}");
            }
        }
        assert!(f.solve_many(&[]).is_empty());
    }
}
