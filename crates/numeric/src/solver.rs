//! Pluggable linear-solver backends: dense, bandwidth-aware or sparse LU.
//!
//! Every analysis in the circuit simulator reduces to "factorise a constant
//! matrix once, then solve against many right-hand sides". This module makes
//! the factorisation kernel a policy choice:
//!
//! * [`SolverBackend::Dense`] — the classic `O(n³)`/`O(n²)` path of
//!   [`crate::lu::LuFactor`], always applicable;
//! * [`SolverBackend::Banded`] — the `O(n·b²)`/`O(n·b)` path of
//!   [`crate::banded::BandedLuFactor`], a large win whenever the matrix is
//!   narrowly banded (every RLC-ladder MNA system is, after reverse
//!   Cuthill–McKee reordering);
//! * [`SolverBackend::Sparse`] — the fill-reducing
//!   [`crate::sparse::SparseLuFactor`], the general-purpose kernel for
//!   matrices that are sparse but not banded (branching RLC *trees* have
//!   `Ω(n/log n)` bandwidth under any ordering, yet factor with `O(n)` fill
//!   under a minimum-degree order);
//! * [`SolverBackend::Auto`] — picks among them from the matrix dimension
//!   and bandwidths, so callers get the right kernel without opting in.
//!
//! [`FactoredSolver`] is the backend-erased factorisation: callers assemble a
//! [`BandedMatrix`] (a degenerate full band is fine) or a [`CscMatrix`], call
//! [`FactoredSolver::factor`] / [`FactoredSolver::factor_csc`], and solve
//! without caring which kernel ran.

use crate::banded::{BandedLuFactor, BandedMatrix};
use crate::condition;
use crate::lu::{FactorizeError, LuFactor};
use crate::matrix::Scalar;
use crate::sparse::{CscMatrix, SparseLuFactor};

/// Widest factored band (`2·kl + ku + 1`) the automatic policy still hands to
/// the banded kernel; anything wider (but still under the full dimension)
/// goes to the sparse kernel instead.
pub const AUTO_BAND_LIMIT: usize = 64;

/// Which LU kernel to use for a factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Choose automatically from the matrix dimension and bandwidths.
    #[default]
    Auto,
    /// Force the dense kernel.
    Dense,
    /// Force the bandwidth-aware kernel.
    Banded,
    /// Force the fill-reducing sparse kernel.
    Sparse,
}

impl SolverBackend {
    /// Resolves `Auto` against a concrete matrix shape.
    ///
    /// The banded kernel stores `kl + min(kl+ku, n-1) + 1` diagonals, so it
    /// only pays off while that stays well below the full dimension; a narrow
    /// band (≤ [`AUTO_BAND_LIMIT`]) takes the banded kernel, a wide band on a
    /// large system takes the sparse kernel, and everything else — tiny
    /// systems and genuinely full matrices — takes the dense kernel.
    pub fn resolve(self, n: usize, kl: usize, ku: usize) -> ResolvedBackend {
        match self {
            Self::Dense => ResolvedBackend::Dense,
            Self::Banded => ResolvedBackend::Banded,
            Self::Sparse => ResolvedBackend::Sparse,
            Self::Auto => {
                let factored_width = 2 * kl + ku + 1;
                if factored_width >= n {
                    ResolvedBackend::Dense
                } else if factored_width <= AUTO_BAND_LIMIT {
                    ResolvedBackend::Banded
                } else {
                    ResolvedBackend::Sparse
                }
            }
        }
    }
}

/// The concrete kernel chosen after resolving [`SolverBackend::Auto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Dense LU with partial pivoting.
    Dense,
    /// Banded LU with partial pivoting.
    Banded,
    /// Sparse LU with fill-reducing ordering and partial pivoting.
    Sparse,
}

impl ResolvedBackend {
    /// Human-readable kernel name (used in reports and examples).
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Banded => "banded",
            Self::Sparse => "sparse",
        }
    }
}

/// A backend-erased LU factorisation.
///
/// When the profiler is enabled at factor time ([`rlckit_telemetry::enabled`])
/// the solver additionally retains a CSC copy of the assembled matrix and its
/// norms. The retained copy powers the numerical-health monitors: every
/// subsequent [`FactoredSolver::solve`] computes the normwise backward error
/// `‖A·x − b‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞)` from one `O(nnz)` matrix–vector
/// product and feeds it to [`rlckit_telemetry::check_metric`], and
/// [`FactoredSolver::condest`] reuses the factors for a Hager–Higham 1-norm
/// condition estimate. With the profiler disabled nothing is retained and
/// solves carry zero extra cost.
#[derive(Debug, Clone)]
pub struct FactoredSolver<T: Scalar = f64> {
    kernel: FactorKernel<T>,
    retained: Option<RetainedMatrix<T>>,
}

/// The kernel-specific factors behind a [`FactoredSolver`].
#[derive(Debug, Clone)]
enum FactorKernel<T: Scalar> {
    Dense(LuFactor<T>),
    Banded(BandedLuFactor<T>),
    Sparse(SparseLuFactor<T>),
}

/// Profiler-gated copy of the assembled matrix, kept alongside the factors so
/// backward errors and condition estimates never need the caller's matrix.
#[derive(Debug, Clone)]
struct RetainedMatrix<T: Scalar> {
    a: CscMatrix<T>,
    norm_inf: f64,
    norm_one: f64,
}

impl<T: Scalar> RetainedMatrix<T> {
    fn new(a: CscMatrix<T>) -> Self {
        let norm_inf = a.norm_inf();
        let norm_one = a.norm_one();
        Self { a, norm_inf, norm_one }
    }

    /// Retains `a` only while the profiler is enabled.
    fn when_enabled(a: &CscMatrix<T>) -> Option<Self> {
        rlckit_telemetry::enabled().then(|| Self::new(a.clone()))
    }
}

impl<T: Scalar> FactoredSolver<T> {
    /// Factorises `a` with the requested backend.
    ///
    /// The input is band-form; a matrix with no useful structure is simply a
    /// full band, which the dense kernel receives via
    /// [`BandedMatrix::to_dense`] and the sparse kernel via
    /// [`CscMatrix::from_banded`].
    ///
    /// # Errors
    ///
    /// Propagates [`FactorizeError`] from the chosen kernel.
    pub fn factor(a: &BandedMatrix<T>, backend: SolverBackend) -> Result<Self, FactorizeError> {
        let resolved = backend.resolve(a.dim(), a.lower_bandwidth(), a.upper_bandwidth());
        let kernel = match resolved {
            ResolvedBackend::Dense => FactorKernel::Dense(LuFactor::new(&a.to_dense())?),
            ResolvedBackend::Banded => FactorKernel::Banded(BandedLuFactor::new(a)?),
            ResolvedBackend::Sparse => {
                FactorKernel::Sparse(SparseLuFactor::factor_auto(&CscMatrix::from_banded(a))?)
            }
        };
        let retained =
            rlckit_telemetry::enabled().then(|| RetainedMatrix::new(CscMatrix::from_banded(a)));
        Ok(Self { kernel, retained })
    }

    /// Factorises a compressed-sparse-column matrix with the requested
    /// backend (`Auto` resolves against the pattern's bandwidth).
    ///
    /// # Errors
    ///
    /// Propagates [`FactorizeError`] from the chosen kernel.
    pub fn factor_csc(a: &CscMatrix<T>, backend: SolverBackend) -> Result<Self, FactorizeError> {
        let (mut kl, mut ku) = (0usize, 0usize);
        for (r, c, _) in a.triplets() {
            if r > c {
                kl = kl.max(r - c);
            } else {
                ku = ku.max(c - r);
            }
        }
        let resolved = backend.resolve(a.dim(), kl, ku);
        let kernel = match resolved {
            ResolvedBackend::Sparse => FactorKernel::Sparse(SparseLuFactor::factor_auto(a)?),
            ResolvedBackend::Dense => FactorKernel::Dense(LuFactor::new(&a.to_dense())?),
            ResolvedBackend::Banded => {
                let mut band = BandedMatrix::zeros(a.dim(), kl, ku);
                for (r, c, v) in a.triplets() {
                    band.set(r, c, v);
                }
                FactorKernel::Banded(BandedLuFactor::new(&band)?)
            }
        };
        Ok(Self { kernel, retained: RetainedMatrix::when_enabled(a) })
    }

    /// Wraps an already-computed sparse factorisation (used by callers that
    /// manage their own [`crate::sparse::SparseSymbolic`] reuse).
    ///
    /// No matrix is retained, so the health monitors stay silent on this
    /// solver; prefer [`FactoredSolver::from_sparse_with_matrix`] when the
    /// assembled matrix is still in scope.
    pub fn from_sparse(factor: SparseLuFactor<T>) -> Self {
        Self { kernel: FactorKernel::Sparse(factor), retained: None }
    }

    /// Wraps an already-computed sparse factorisation together with the
    /// matrix it factored, so backward-error monitoring and
    /// [`FactoredSolver::condest`] work when the profiler is enabled.
    pub fn from_sparse_with_matrix(factor: SparseLuFactor<T>, a: &CscMatrix<T>) -> Self {
        Self { kernel: FactorKernel::Sparse(factor), retained: RetainedMatrix::when_enabled(a) }
    }

    /// Runs the kernel substitution without health bookkeeping (shared by
    /// the public solve paths and the condition estimator, whose probe
    /// solves must not pollute the backward-error statistics).
    fn kernel_solve(&self, b: &[T]) -> Vec<T> {
        match &self.kernel {
            FactorKernel::Dense(f) => f.solve(b),
            FactorKernel::Banded(f) => f.solve(b),
            FactorKernel::Sparse(f) => f.solve(b),
        }
    }

    /// Computes and records the backward error of a completed solve when the
    /// profiler is enabled and a matrix was retained at factor time.
    fn emit_backward_error(&self, b: &[T], x: &[T]) {
        if !rlckit_telemetry::enabled() {
            return;
        }
        let Some(retained) = &self.retained else { return };
        let ax = retained.a.mul_vec(x);
        let be = condition::backward_error(retained.norm_inf, &ax, x, b);
        rlckit_telemetry::check_metric(
            self.solve_site(),
            "backward_error",
            be,
            condition::BACKWARD_ERROR_WARN,
            condition::BACKWARD_ERROR_ERROR,
        );
    }

    /// Health-event site for this solver's solve path.
    fn solve_site(&self) -> &'static str {
        match self.kernel {
            FactorKernel::Dense(_) => "dense.solve",
            FactorKernel::Banded(_) => "banded.solve",
            FactorKernel::Sparse(_) => "sparse.solve",
        }
    }

    /// Health-event site for this solver's factorisation path.
    fn factor_site(&self) -> &'static str {
        match self.kernel {
            FactorKernel::Dense(_) => "dense.factor",
            FactorKernel::Banded(_) => "banded.factor",
            FactorKernel::Sparse(_) => "sparse.factor",
        }
    }

    /// Solves `A·x = b` with the stored factors.
    ///
    /// With the profiler enabled and a retained matrix, also records the
    /// normwise backward error of the computed solution as a health metric
    /// at site `"<kernel>.solve"`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let x = self.kernel_solve(b);
        self.emit_backward_error(b, &x);
        x
    }

    /// Solves `Aᵀ·x = b` with the stored factors (no re-factorisation).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve_transpose(&self, b: &[T]) -> Vec<T> {
        match &self.kernel {
            FactorKernel::Dense(f) => f.solve_transpose(b),
            FactorKernel::Banded(f) => f.solve_transpose(b),
            FactorKernel::Sparse(f) => f.solve_transpose(b),
        }
    }

    /// Solves `A·X = B` for many right-hand sides with the one stored
    /// factorisation.
    ///
    /// The sparse kernel runs its blocked substitution
    /// ([`SparseLuFactor::solve_many`] — each factor column applied to every
    /// right-hand side while hot); the dense and banded kernels, whose
    /// factors are contiguous anyway, simply loop.
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side's length differs from the dimension.
    pub fn solve_many(&self, rhs: &[Vec<T>]) -> Vec<Vec<T>> {
        match &self.kernel {
            FactorKernel::Sparse(f) => {
                let xs = f.solve_many(rhs);
                for (b, x) in rhs.iter().zip(xs.iter()) {
                    self.emit_backward_error(b, x);
                }
                xs
            }
            _ => rhs.iter().map(|b| self.solve(b)).collect(),
        }
    }

    /// Re-derives the factors for a matrix with the same sparsity pattern as
    /// the one originally factored, staying on the same kernel.
    ///
    /// On the sparse kernel this is the value-only warm path
    /// ([`SparseLuFactor::refactor`]): frozen pivot sequence and fill
    /// pattern, no symbolic work, no allocation. The dense and banded
    /// kernels have no symbolic phase to reuse, so they factor afresh.
    ///
    /// # Errors
    ///
    /// Propagates [`FactorizeError`] from the kernel; on an error the
    /// previous factors must be considered lost.
    ///
    /// # Panics
    ///
    /// Panics (sparse kernel) if `a` has an entry outside the originally
    /// factored fill pattern.
    pub fn refactor_csc(&mut self, a: &CscMatrix<T>) -> Result<(), FactorizeError> {
        match &mut self.kernel {
            FactorKernel::Sparse(f) => f.refactor(a)?,
            FactorKernel::Dense(_) => *self = Self::factor_csc(a, SolverBackend::Dense)?,
            FactorKernel::Banded(_) => *self = Self::factor_csc(a, SolverBackend::Banded)?,
        }
        // Refresh (or drop) the retained copy so health metrics always refer
        // to the values currently factored.
        self.retained = RetainedMatrix::when_enabled(a);
        Ok(())
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        match &self.kernel {
            FactorKernel::Dense(f) => f.dim(),
            FactorKernel::Banded(f) => f.dim(),
            FactorKernel::Sparse(f) => f.dim(),
        }
    }

    /// Which kernel this factorisation uses.
    pub fn backend(&self) -> ResolvedBackend {
        match self.kernel {
            FactorKernel::Dense(_) => ResolvedBackend::Dense,
            FactorKernel::Banded(_) => ResolvedBackend::Banded,
            FactorKernel::Sparse(_) => ResolvedBackend::Sparse,
        }
    }

    /// Whether a matrix copy was retained at factor time (i.e. whether the
    /// health monitors can observe this solver).
    pub fn has_retained_matrix(&self) -> bool {
        self.retained.is_some()
    }
}

impl FactoredSolver<f64> {
    /// Hager–Higham estimate of the 1-norm condition number `κ₁(A) =
    /// ‖A‖₁·‖A⁻¹‖₁`, reusing the stored factors (a handful of extra solves,
    /// no re-factorisation).
    ///
    /// Returns `None` when no matrix was retained at factor time (profiler
    /// disabled, or [`FactoredSolver::from_sparse`] construction). The
    /// estimate is a lower bound of the true condition number, almost always
    /// within the classic 10× estimator band.
    pub fn condest(&self) -> Option<f64> {
        let retained = self.retained.as_ref()?;
        let inv_norm = condition::invnorm1_estimate(
            self.dim(),
            |b| self.kernel_solve(b),
            |b| self.solve_transpose(b),
        );
        Some(retained.norm_one * inv_norm)
    }

    /// Runs [`FactoredSolver::condest`] and feeds the estimate to the health
    /// monitors: gauge `"solver.condest"` plus a `"condest"` health metric at
    /// site `"<kernel>.factor"`.
    ///
    /// Returns the estimate, or `None` when no matrix was retained.
    pub fn condest_health(&self) -> Option<f64> {
        let estimate = self.condest()?;
        rlckit_telemetry::gauge_set("solver.condest", estimate);
        rlckit_telemetry::check_metric(
            self.factor_site(),
            "condest",
            estimate,
            condition::CONDEST_WARN,
            condition::CONDEST_ERROR,
        );
        Some(estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiagonal(n: usize) -> BandedMatrix<f64> {
        let mut a = BandedMatrix::zeros(n, 1, 1);
        for i in 0..n {
            a.set(i, i, 4.0);
            if i + 1 < n {
                a.set(i, i + 1, -1.0);
                a.set(i + 1, i, -1.0);
            }
        }
        a
    }

    #[test]
    fn auto_picks_banded_for_narrow_bands() {
        assert_eq!(SolverBackend::Auto.resolve(100, 2, 2), ResolvedBackend::Banded);
        assert_eq!(SolverBackend::Auto.resolve(100, 99, 99), ResolvedBackend::Dense);
        // Tiny systems: the full band is not narrower than the matrix.
        assert_eq!(SolverBackend::Auto.resolve(3, 1, 1), ResolvedBackend::Dense);
    }

    #[test]
    fn auto_picks_sparse_for_wide_bands_on_large_systems() {
        // A tree-shaped MNA pattern: bandwidth grows with the system, so the
        // factored width blows past the banded limit long before it reaches
        // the dimension.
        assert_eq!(SolverBackend::Auto.resolve(1000, 100, 100), ResolvedBackend::Sparse);
        // Just at the limit stays banded.
        let w = (AUTO_BAND_LIMIT - 1) / 3;
        assert_eq!(SolverBackend::Auto.resolve(1000, w, w), ResolvedBackend::Banded);
    }

    #[test]
    fn forced_backends_are_respected() {
        let a = tridiagonal(20);
        let dense = FactoredSolver::factor(&a, SolverBackend::Dense).unwrap();
        let banded = FactoredSolver::factor(&a, SolverBackend::Banded).unwrap();
        let sparse = FactoredSolver::factor(&a, SolverBackend::Sparse).unwrap();
        assert_eq!(dense.backend(), ResolvedBackend::Dense);
        assert_eq!(banded.backend(), ResolvedBackend::Banded);
        assert_eq!(sparse.backend(), ResolvedBackend::Sparse);
        assert_eq!(dense.backend().name(), "dense");
        assert_eq!(banded.backend().name(), "banded");
        assert_eq!(sparse.backend().name(), "sparse");
        assert_eq!(dense.dim(), 20);
        assert_eq!(banded.dim(), 20);
        assert_eq!(sparse.dim(), 20);
    }

    #[test]
    fn backends_agree_on_the_solution() {
        let a = tridiagonal(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).cos()).collect();
        let dense = FactoredSolver::factor(&a, SolverBackend::Dense).unwrap().solve(&b);
        let banded = FactoredSolver::factor(&a, SolverBackend::Banded).unwrap().solve(&b);
        let sparse = FactoredSolver::factor(&a, SolverBackend::Sparse).unwrap().solve(&b);
        let auto = FactoredSolver::factor(&a, SolverBackend::Auto).unwrap().solve(&b);
        for (((d, bd), sp), au) in
            dense.iter().zip(banded.iter()).zip(sparse.iter()).zip(auto.iter())
        {
            assert!((d - bd).abs() < 1e-13);
            assert!((d - sp).abs() < 1e-13);
            assert!((d - au).abs() < 1e-13);
        }
    }

    #[test]
    fn csc_input_dispatches_each_backend() {
        let a = CscMatrix::from_banded(&tridiagonal(30));
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut solutions = Vec::new();
        for (backend, resolved) in [
            (SolverBackend::Dense, ResolvedBackend::Dense),
            (SolverBackend::Banded, ResolvedBackend::Banded),
            (SolverBackend::Sparse, ResolvedBackend::Sparse),
        ] {
            let f = FactoredSolver::factor_csc(&a, backend).unwrap();
            assert_eq!(f.backend(), resolved);
            solutions.push(f.solve(&b));
        }
        for s in &solutions[1..] {
            for (u, v) in solutions[0].iter().zip(s.iter()) {
                assert!((u - v).abs() < 1e-12);
            }
        }
        // Auto on a tridiagonal pattern resolves to banded.
        let auto = FactoredSolver::factor_csc(&a, SolverBackend::Auto).unwrap();
        assert_eq!(auto.backend(), ResolvedBackend::Banded);
        // from_sparse wraps a hand-built factorisation.
        let wrapped =
            FactoredSolver::from_sparse(crate::sparse::SparseLuFactor::factor_auto(&a).unwrap());
        assert_eq!(wrapped.backend(), ResolvedBackend::Sparse);
    }

    #[test]
    fn default_backend_is_auto() {
        assert_eq!(SolverBackend::default(), SolverBackend::Auto);
    }

    #[test]
    fn solve_many_matches_solve_on_every_backend() {
        let a = CscMatrix::from_banded(&tridiagonal(25));
        let rhs: Vec<Vec<f64>> =
            (0..4).map(|k| (0..25).map(|i| ((i + k) as f64 * 0.3).sin()).collect()).collect();
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let f = FactoredSolver::factor_csc(&a, backend).unwrap();
            let many = f.solve_many(&rhs);
            for (b, x) in rhs.iter().zip(many.iter()) {
                let one = f.solve(b);
                for (m, o) in x.iter().zip(one.iter()) {
                    assert!((m - o).abs() < 1e-14);
                }
            }
        }
    }

    fn asymmetric_tridiagonal(n: usize) -> BandedMatrix<f64> {
        let mut a = BandedMatrix::zeros(n, 1, 1);
        for i in 0..n {
            a.set(i, i, 4.0 + 0.1 * i as f64);
            if i + 1 < n {
                a.set(i, i + 1, -1.0);
                a.set(i + 1, i, 2.0);
            }
        }
        a
    }

    #[test]
    fn solve_transpose_agrees_with_the_transposed_dense_system() {
        let band = asymmetric_tridiagonal(40);
        let at = band.to_dense().transpose();
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.17).sin()).collect();
        let reference = crate::lu::solve(&at, &b).unwrap();
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let f = FactoredSolver::factor(&band, backend).unwrap();
            let x = f.solve_transpose(&b);
            for (u, v) in x.iter().zip(reference.iter()) {
                assert!((u - v).abs() < 1e-12, "{backend:?}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn nothing_is_retained_while_profiling_is_disabled() {
        let _serial = rlckit_telemetry::test_support::lock();
        let _off = rlckit_telemetry::Collector::disable();
        let a = tridiagonal(10);
        let f = FactoredSolver::factor(&a, SolverBackend::Auto).unwrap();
        assert!(!f.has_retained_matrix());
        assert!(f.condest().is_none());
        assert!(f.condest_health().is_none());
    }

    #[test]
    fn profiling_retains_the_matrix_and_records_backward_error_and_condest() {
        let _serial = rlckit_telemetry::test_support::lock();
        let collector = rlckit_telemetry::Collector::enable();
        rlckit_telemetry::Collector::reset();
        let a = asymmetric_tridiagonal(30);
        let csc = CscMatrix::from_banded(&a);
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.11).cos()).collect();
        // Exact condition number for the accuracy check.
        let dense = a.to_dense();
        let f_exact = crate::lu::LuFactor::new(&dense).unwrap();
        let exact = {
            let n = dense.rows();
            let mut inv_norm = 0.0_f64;
            for j in 0..n {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                inv_norm = inv_norm.max(f_exact.solve(&e).iter().map(|v| v.abs()).sum::<f64>());
            }
            dense.norm_one() * inv_norm
        };
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let f = FactoredSolver::factor_csc(&csc, backend).unwrap();
            assert!(f.has_retained_matrix());
            let _x = f.solve(&b);
            let est = f.condest_health().expect("matrix retained, condest available");
            assert!(est <= exact * (1.0 + 1e-12), "estimate {est} above exact {exact}");
            assert!(est >= exact / 10.0, "estimate {est} below 10x band of exact {exact}");
        }
        let snapshot = rlckit_telemetry::Collector::snapshot();
        for site in ["dense.solve", "banded.solve", "sparse.solve"] {
            let stat = snapshot
                .health
                .site(site, "backward_error")
                .unwrap_or_else(|| panic!("missing backward_error at {site}"));
            assert_eq!(stat.severity, rlckit_telemetry::Severity::Info, "{site}");
            assert!(stat.worst_value < 1e-12, "{site}: backward error {}", stat.worst_value);
        }
        assert!(snapshot.health.site("dense.factor", "condest").is_some());
        assert!(snapshot.gauge("solver.condest").is_some());
        drop(collector);
    }

    #[test]
    fn refactor_csc_stays_on_kernel_and_tracks_new_values() {
        let a = CscMatrix::from_banded(&tridiagonal(30));
        let scaled = CscMatrix::from_triplets(
            30,
            &a.triplets().map(|(r, c, v)| (r, c, 1.5 * v)).collect::<Vec<_>>(),
        );
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).cos()).collect();
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let mut f = FactoredSolver::factor_csc(&a, backend).unwrap();
            let kernel = f.backend();
            f.refactor_csc(&scaled).unwrap();
            assert_eq!(f.backend(), kernel, "refactor must not change kernel");
            let warm = f.solve(&b);
            let fresh = FactoredSolver::factor_csc(&scaled, backend).unwrap().solve(&b);
            for (w, fr) in warm.iter().zip(fresh.iter()) {
                assert!((w - fr).abs() < 1e-12);
            }
        }
    }
}
