//! Pluggable linear-solver backends: dense or bandwidth-aware LU.
//!
//! Every analysis in the circuit simulator reduces to "factorise a constant
//! matrix once, then solve against many right-hand sides". This module makes
//! the factorisation kernel a policy choice:
//!
//! * [`SolverBackend::Dense`] — the classic `O(n³)`/`O(n²)` path of
//!   [`crate::lu::LuFactor`], always applicable;
//! * [`SolverBackend::Banded`] — the `O(n·b²)`/`O(n·b)` path of
//!   [`crate::banded::BandedLuFactor`], a large win whenever the matrix is
//!   narrowly banded (every RLC-ladder MNA system is, after reverse
//!   Cuthill–McKee reordering);
//! * [`SolverBackend::Auto`] — picks between them from the matrix dimension
//!   and bandwidths, so callers get the banded speedup without opting in.
//!
//! [`FactoredSolver`] is the backend-erased factorisation: callers assemble a
//! [`BandedMatrix`] (a degenerate full band is fine), call
//! [`FactoredSolver::factor`], and solve without caring which kernel ran.

use crate::banded::{BandedLuFactor, BandedMatrix};
use crate::lu::{FactorizeError, LuFactor};
use crate::matrix::Scalar;

/// Which LU kernel to use for a factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Choose automatically from the matrix dimension and bandwidths.
    #[default]
    Auto,
    /// Force the dense kernel.
    Dense,
    /// Force the bandwidth-aware kernel.
    Banded,
}

impl SolverBackend {
    /// Resolves `Auto` against a concrete matrix shape.
    ///
    /// The banded kernel stores `kl + min(kl+ku, n-1) + 1` diagonals, so it
    /// only pays off while that stays below the full dimension; otherwise the
    /// dense kernel's simpler inner loops win.
    pub fn resolve(self, n: usize, kl: usize, ku: usize) -> ResolvedBackend {
        match self {
            Self::Dense => ResolvedBackend::Dense,
            Self::Banded => ResolvedBackend::Banded,
            Self::Auto => {
                let factored_width = 2 * kl + ku + 1;
                if factored_width < n {
                    ResolvedBackend::Banded
                } else {
                    ResolvedBackend::Dense
                }
            }
        }
    }
}

/// The concrete kernel chosen after resolving [`SolverBackend::Auto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Dense LU with partial pivoting.
    Dense,
    /// Banded LU with partial pivoting.
    Banded,
}

impl ResolvedBackend {
    /// Human-readable kernel name (used in reports and examples).
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Banded => "banded",
        }
    }
}

/// A backend-erased LU factorisation.
#[derive(Debug, Clone)]
pub enum FactoredSolver<T: Scalar = f64> {
    /// Factors held by the dense kernel.
    Dense(LuFactor<T>),
    /// Factors held by the banded kernel.
    Banded(BandedLuFactor<T>),
}

impl<T: Scalar> FactoredSolver<T> {
    /// Factorises `a` with the requested backend.
    ///
    /// The input is always band-form; a matrix with no useful structure is
    /// simply a full band, which the dense kernel receives via
    /// [`BandedMatrix::to_dense`].
    ///
    /// # Errors
    ///
    /// Propagates [`FactorizeError`] from the chosen kernel.
    pub fn factor(a: &BandedMatrix<T>, backend: SolverBackend) -> Result<Self, FactorizeError> {
        let resolved = backend.resolve(a.dim(), a.lower_bandwidth(), a.upper_bandwidth());
        match resolved {
            ResolvedBackend::Dense => Ok(Self::Dense(LuFactor::new(&a.to_dense())?)),
            ResolvedBackend::Banded => Ok(Self::Banded(BandedLuFactor::new(a)?)),
        }
    }

    /// Solves `A·x = b` with the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        match self {
            Self::Dense(f) => f.solve(b),
            Self::Banded(f) => f.solve(b),
        }
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        match self {
            Self::Dense(f) => f.dim(),
            Self::Banded(f) => f.dim(),
        }
    }

    /// Which kernel this factorisation uses.
    pub fn backend(&self) -> ResolvedBackend {
        match self {
            Self::Dense(_) => ResolvedBackend::Dense,
            Self::Banded(_) => ResolvedBackend::Banded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiagonal(n: usize) -> BandedMatrix<f64> {
        let mut a = BandedMatrix::zeros(n, 1, 1);
        for i in 0..n {
            a.set(i, i, 4.0);
            if i + 1 < n {
                a.set(i, i + 1, -1.0);
                a.set(i + 1, i, -1.0);
            }
        }
        a
    }

    #[test]
    fn auto_picks_banded_for_narrow_bands() {
        assert_eq!(SolverBackend::Auto.resolve(100, 2, 2), ResolvedBackend::Banded);
        assert_eq!(SolverBackend::Auto.resolve(100, 99, 99), ResolvedBackend::Dense);
        // Tiny systems: the full band is not narrower than the matrix.
        assert_eq!(SolverBackend::Auto.resolve(3, 1, 1), ResolvedBackend::Dense);
    }

    #[test]
    fn forced_backends_are_respected() {
        let a = tridiagonal(20);
        let dense = FactoredSolver::factor(&a, SolverBackend::Dense).unwrap();
        let banded = FactoredSolver::factor(&a, SolverBackend::Banded).unwrap();
        assert_eq!(dense.backend(), ResolvedBackend::Dense);
        assert_eq!(banded.backend(), ResolvedBackend::Banded);
        assert_eq!(dense.backend().name(), "dense");
        assert_eq!(banded.backend().name(), "banded");
        assert_eq!(dense.dim(), 20);
        assert_eq!(banded.dim(), 20);
    }

    #[test]
    fn backends_agree_on_the_solution() {
        let a = tridiagonal(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).cos()).collect();
        let dense = FactoredSolver::factor(&a, SolverBackend::Dense).unwrap().solve(&b);
        let banded = FactoredSolver::factor(&a, SolverBackend::Banded).unwrap().solve(&b);
        let auto = FactoredSolver::factor(&a, SolverBackend::Auto).unwrap().solve(&b);
        for ((d, bd), au) in dense.iter().zip(banded.iter()).zip(auto.iter()) {
            assert!((d - bd).abs() < 1e-13);
            assert!((d - au).abs() < 1e-13);
        }
    }

    #[test]
    fn default_backend_is_auto() {
        assert_eq!(SolverBackend::default(), SolverBackend::Auto);
    }
}
