//! Pluggable linear-solver backends: dense, bandwidth-aware or sparse LU.
//!
//! Every analysis in the circuit simulator reduces to "factorise a constant
//! matrix once, then solve against many right-hand sides". This module makes
//! the factorisation kernel a policy choice:
//!
//! * [`SolverBackend::Dense`] — the classic `O(n³)`/`O(n²)` path of
//!   [`crate::lu::LuFactor`], always applicable;
//! * [`SolverBackend::Banded`] — the `O(n·b²)`/`O(n·b)` path of
//!   [`crate::banded::BandedLuFactor`], a large win whenever the matrix is
//!   narrowly banded (every RLC-ladder MNA system is, after reverse
//!   Cuthill–McKee reordering);
//! * [`SolverBackend::Sparse`] — the fill-reducing
//!   [`crate::sparse::SparseLuFactor`], the general-purpose kernel for
//!   matrices that are sparse but not banded (branching RLC *trees* have
//!   `Ω(n/log n)` bandwidth under any ordering, yet factor with `O(n)` fill
//!   under a minimum-degree order);
//! * [`SolverBackend::Auto`] — picks among them from the matrix dimension
//!   and bandwidths, so callers get the right kernel without opting in.
//!
//! [`FactoredSolver`] is the backend-erased factorisation: callers assemble a
//! [`BandedMatrix`] (a degenerate full band is fine) or a [`CscMatrix`], call
//! [`FactoredSolver::factor`] / [`FactoredSolver::factor_csc`], and solve
//! without caring which kernel ran.

use crate::banded::{BandedLuFactor, BandedMatrix};
use crate::lu::{FactorizeError, LuFactor};
use crate::matrix::Scalar;
use crate::sparse::{CscMatrix, SparseLuFactor};

/// Widest factored band (`2·kl + ku + 1`) the automatic policy still hands to
/// the banded kernel; anything wider (but still under the full dimension)
/// goes to the sparse kernel instead.
pub const AUTO_BAND_LIMIT: usize = 64;

/// Which LU kernel to use for a factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Choose automatically from the matrix dimension and bandwidths.
    #[default]
    Auto,
    /// Force the dense kernel.
    Dense,
    /// Force the bandwidth-aware kernel.
    Banded,
    /// Force the fill-reducing sparse kernel.
    Sparse,
}

impl SolverBackend {
    /// Resolves `Auto` against a concrete matrix shape.
    ///
    /// The banded kernel stores `kl + min(kl+ku, n-1) + 1` diagonals, so it
    /// only pays off while that stays well below the full dimension; a narrow
    /// band (≤ [`AUTO_BAND_LIMIT`]) takes the banded kernel, a wide band on a
    /// large system takes the sparse kernel, and everything else — tiny
    /// systems and genuinely full matrices — takes the dense kernel.
    pub fn resolve(self, n: usize, kl: usize, ku: usize) -> ResolvedBackend {
        match self {
            Self::Dense => ResolvedBackend::Dense,
            Self::Banded => ResolvedBackend::Banded,
            Self::Sparse => ResolvedBackend::Sparse,
            Self::Auto => {
                let factored_width = 2 * kl + ku + 1;
                if factored_width >= n {
                    ResolvedBackend::Dense
                } else if factored_width <= AUTO_BAND_LIMIT {
                    ResolvedBackend::Banded
                } else {
                    ResolvedBackend::Sparse
                }
            }
        }
    }
}

/// The concrete kernel chosen after resolving [`SolverBackend::Auto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Dense LU with partial pivoting.
    Dense,
    /// Banded LU with partial pivoting.
    Banded,
    /// Sparse LU with fill-reducing ordering and partial pivoting.
    Sparse,
}

impl ResolvedBackend {
    /// Human-readable kernel name (used in reports and examples).
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Banded => "banded",
            Self::Sparse => "sparse",
        }
    }
}

/// A backend-erased LU factorisation.
#[derive(Debug, Clone)]
pub enum FactoredSolver<T: Scalar = f64> {
    /// Factors held by the dense kernel.
    Dense(LuFactor<T>),
    /// Factors held by the banded kernel.
    Banded(BandedLuFactor<T>),
    /// Factors held by the sparse kernel.
    Sparse(SparseLuFactor<T>),
}

impl<T: Scalar> FactoredSolver<T> {
    /// Factorises `a` with the requested backend.
    ///
    /// The input is band-form; a matrix with no useful structure is simply a
    /// full band, which the dense kernel receives via
    /// [`BandedMatrix::to_dense`] and the sparse kernel via
    /// [`CscMatrix::from_banded`].
    ///
    /// # Errors
    ///
    /// Propagates [`FactorizeError`] from the chosen kernel.
    pub fn factor(a: &BandedMatrix<T>, backend: SolverBackend) -> Result<Self, FactorizeError> {
        let resolved = backend.resolve(a.dim(), a.lower_bandwidth(), a.upper_bandwidth());
        match resolved {
            ResolvedBackend::Dense => Ok(Self::Dense(LuFactor::new(&a.to_dense())?)),
            ResolvedBackend::Banded => Ok(Self::Banded(BandedLuFactor::new(a)?)),
            ResolvedBackend::Sparse => {
                Ok(Self::Sparse(SparseLuFactor::factor_auto(&CscMatrix::from_banded(a))?))
            }
        }
    }

    /// Factorises a compressed-sparse-column matrix with the requested
    /// backend (`Auto` resolves against the pattern's bandwidth).
    ///
    /// # Errors
    ///
    /// Propagates [`FactorizeError`] from the chosen kernel.
    pub fn factor_csc(a: &CscMatrix<T>, backend: SolverBackend) -> Result<Self, FactorizeError> {
        let (mut kl, mut ku) = (0usize, 0usize);
        for (r, c, _) in a.triplets() {
            if r > c {
                kl = kl.max(r - c);
            } else {
                ku = ku.max(c - r);
            }
        }
        let resolved = backend.resolve(a.dim(), kl, ku);
        match resolved {
            ResolvedBackend::Sparse => Ok(Self::Sparse(SparseLuFactor::factor_auto(a)?)),
            ResolvedBackend::Dense => Ok(Self::Dense(LuFactor::new(&a.to_dense())?)),
            ResolvedBackend::Banded => {
                let mut band = BandedMatrix::zeros(a.dim(), kl, ku);
                for (r, c, v) in a.triplets() {
                    band.set(r, c, v);
                }
                Ok(Self::Banded(BandedLuFactor::new(&band)?))
            }
        }
    }

    /// Wraps an already-computed sparse factorisation (used by callers that
    /// manage their own [`crate::sparse::SparseSymbolic`] reuse).
    pub fn from_sparse(factor: SparseLuFactor<T>) -> Self {
        Self::Sparse(factor)
    }

    /// Solves `A·x = b` with the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        match self {
            Self::Dense(f) => f.solve(b),
            Self::Banded(f) => f.solve(b),
            Self::Sparse(f) => f.solve(b),
        }
    }

    /// Solves `A·X = B` for many right-hand sides with the one stored
    /// factorisation.
    ///
    /// The sparse kernel runs its blocked substitution
    /// ([`SparseLuFactor::solve_many`] — each factor column applied to every
    /// right-hand side while hot); the dense and banded kernels, whose
    /// factors are contiguous anyway, simply loop.
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side's length differs from the dimension.
    pub fn solve_many(&self, rhs: &[Vec<T>]) -> Vec<Vec<T>> {
        match self {
            Self::Sparse(f) => f.solve_many(rhs),
            _ => rhs.iter().map(|b| self.solve(b)).collect(),
        }
    }

    /// Re-derives the factors for a matrix with the same sparsity pattern as
    /// the one originally factored, staying on the same kernel.
    ///
    /// On the sparse kernel this is the value-only warm path
    /// ([`SparseLuFactor::refactor`]): frozen pivot sequence and fill
    /// pattern, no symbolic work, no allocation. The dense and banded
    /// kernels have no symbolic phase to reuse, so they factor afresh.
    ///
    /// # Errors
    ///
    /// Propagates [`FactorizeError`] from the kernel; on an error the
    /// previous factors must be considered lost.
    ///
    /// # Panics
    ///
    /// Panics (sparse kernel) if `a` has an entry outside the originally
    /// factored fill pattern.
    pub fn refactor_csc(&mut self, a: &CscMatrix<T>) -> Result<(), FactorizeError> {
        match self {
            Self::Sparse(f) => f.refactor(a),
            Self::Dense(_) => {
                *self = Self::factor_csc(a, SolverBackend::Dense)?;
                Ok(())
            }
            Self::Banded(_) => {
                *self = Self::factor_csc(a, SolverBackend::Banded)?;
                Ok(())
            }
        }
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        match self {
            Self::Dense(f) => f.dim(),
            Self::Banded(f) => f.dim(),
            Self::Sparse(f) => f.dim(),
        }
    }

    /// Which kernel this factorisation uses.
    pub fn backend(&self) -> ResolvedBackend {
        match self {
            Self::Dense(_) => ResolvedBackend::Dense,
            Self::Banded(_) => ResolvedBackend::Banded,
            Self::Sparse(_) => ResolvedBackend::Sparse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiagonal(n: usize) -> BandedMatrix<f64> {
        let mut a = BandedMatrix::zeros(n, 1, 1);
        for i in 0..n {
            a.set(i, i, 4.0);
            if i + 1 < n {
                a.set(i, i + 1, -1.0);
                a.set(i + 1, i, -1.0);
            }
        }
        a
    }

    #[test]
    fn auto_picks_banded_for_narrow_bands() {
        assert_eq!(SolverBackend::Auto.resolve(100, 2, 2), ResolvedBackend::Banded);
        assert_eq!(SolverBackend::Auto.resolve(100, 99, 99), ResolvedBackend::Dense);
        // Tiny systems: the full band is not narrower than the matrix.
        assert_eq!(SolverBackend::Auto.resolve(3, 1, 1), ResolvedBackend::Dense);
    }

    #[test]
    fn auto_picks_sparse_for_wide_bands_on_large_systems() {
        // A tree-shaped MNA pattern: bandwidth grows with the system, so the
        // factored width blows past the banded limit long before it reaches
        // the dimension.
        assert_eq!(SolverBackend::Auto.resolve(1000, 100, 100), ResolvedBackend::Sparse);
        // Just at the limit stays banded.
        let w = (AUTO_BAND_LIMIT - 1) / 3;
        assert_eq!(SolverBackend::Auto.resolve(1000, w, w), ResolvedBackend::Banded);
    }

    #[test]
    fn forced_backends_are_respected() {
        let a = tridiagonal(20);
        let dense = FactoredSolver::factor(&a, SolverBackend::Dense).unwrap();
        let banded = FactoredSolver::factor(&a, SolverBackend::Banded).unwrap();
        let sparse = FactoredSolver::factor(&a, SolverBackend::Sparse).unwrap();
        assert_eq!(dense.backend(), ResolvedBackend::Dense);
        assert_eq!(banded.backend(), ResolvedBackend::Banded);
        assert_eq!(sparse.backend(), ResolvedBackend::Sparse);
        assert_eq!(dense.backend().name(), "dense");
        assert_eq!(banded.backend().name(), "banded");
        assert_eq!(sparse.backend().name(), "sparse");
        assert_eq!(dense.dim(), 20);
        assert_eq!(banded.dim(), 20);
        assert_eq!(sparse.dim(), 20);
    }

    #[test]
    fn backends_agree_on_the_solution() {
        let a = tridiagonal(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).cos()).collect();
        let dense = FactoredSolver::factor(&a, SolverBackend::Dense).unwrap().solve(&b);
        let banded = FactoredSolver::factor(&a, SolverBackend::Banded).unwrap().solve(&b);
        let sparse = FactoredSolver::factor(&a, SolverBackend::Sparse).unwrap().solve(&b);
        let auto = FactoredSolver::factor(&a, SolverBackend::Auto).unwrap().solve(&b);
        for (((d, bd), sp), au) in
            dense.iter().zip(banded.iter()).zip(sparse.iter()).zip(auto.iter())
        {
            assert!((d - bd).abs() < 1e-13);
            assert!((d - sp).abs() < 1e-13);
            assert!((d - au).abs() < 1e-13);
        }
    }

    #[test]
    fn csc_input_dispatches_each_backend() {
        let a = CscMatrix::from_banded(&tridiagonal(30));
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut solutions = Vec::new();
        for (backend, resolved) in [
            (SolverBackend::Dense, ResolvedBackend::Dense),
            (SolverBackend::Banded, ResolvedBackend::Banded),
            (SolverBackend::Sparse, ResolvedBackend::Sparse),
        ] {
            let f = FactoredSolver::factor_csc(&a, backend).unwrap();
            assert_eq!(f.backend(), resolved);
            solutions.push(f.solve(&b));
        }
        for s in &solutions[1..] {
            for (u, v) in solutions[0].iter().zip(s.iter()) {
                assert!((u - v).abs() < 1e-12);
            }
        }
        // Auto on a tridiagonal pattern resolves to banded.
        let auto = FactoredSolver::factor_csc(&a, SolverBackend::Auto).unwrap();
        assert_eq!(auto.backend(), ResolvedBackend::Banded);
        // from_sparse wraps a hand-built factorisation.
        let wrapped =
            FactoredSolver::from_sparse(crate::sparse::SparseLuFactor::factor_auto(&a).unwrap());
        assert_eq!(wrapped.backend(), ResolvedBackend::Sparse);
    }

    #[test]
    fn default_backend_is_auto() {
        assert_eq!(SolverBackend::default(), SolverBackend::Auto);
    }

    #[test]
    fn solve_many_matches_solve_on_every_backend() {
        let a = CscMatrix::from_banded(&tridiagonal(25));
        let rhs: Vec<Vec<f64>> =
            (0..4).map(|k| (0..25).map(|i| ((i + k) as f64 * 0.3).sin()).collect()).collect();
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let f = FactoredSolver::factor_csc(&a, backend).unwrap();
            let many = f.solve_many(&rhs);
            for (b, x) in rhs.iter().zip(many.iter()) {
                let one = f.solve(b);
                for (m, o) in x.iter().zip(one.iter()) {
                    assert!((m - o).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn refactor_csc_stays_on_kernel_and_tracks_new_values() {
        let a = CscMatrix::from_banded(&tridiagonal(30));
        let scaled = CscMatrix::from_triplets(
            30,
            &a.triplets().map(|(r, c, v)| (r, c, 1.5 * v)).collect::<Vec<_>>(),
        );
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).cos()).collect();
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let mut f = FactoredSolver::factor_csc(&a, backend).unwrap();
            let kernel = f.backend();
            f.refactor_csc(&scaled).unwrap();
            assert_eq!(f.backend(), kernel, "refactor must not change kernel");
            let warm = f.solve(&b);
            let fresh = FactoredSolver::factor_csc(&scaled, backend).unwrap().solve(&b);
            for (w, fr) in warm.iter().zip(fresh.iter()) {
                assert!((w - fr).abs() < 1e-12);
            }
        }
    }
}
