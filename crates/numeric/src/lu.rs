//! LU factorisation with partial pivoting and linear-system solving.
//!
//! The MNA matrix of a linear circuit with a fixed timestep is constant, so
//! the transient solver factorises once and performs only forward/backward
//! substitution at every timestep. [`LuFactor`] keeps the factors and the
//! permutation around for exactly that reuse pattern.

use std::error::Error;
use std::fmt;

use crate::matrix::{Matrix, Scalar};

/// Error returned when a matrix cannot be factorised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorizeError {
    /// The matrix is not square.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A pivot smaller than the singularity threshold was encountered.
    Singular {
        /// Column at which elimination broke down.
        column: usize,
    },
}

impl fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotSquare { rows, cols } => {
                write!(f, "cannot factorise a non-square {rows}x{cols} matrix")
            }
            Self::Singular { column } => {
                write!(f, "matrix is singular to working precision at column {column}")
            }
        }
    }
}

impl Error for FactorizeError {}

/// An LU factorisation `P·A = L·U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuFactor<T: Scalar = f64> {
    lu: Matrix<T>,
    perm: Vec<usize>,
    num_swaps: usize,
}

/// Pivot magnitudes below this threshold are treated as singular — shared by
/// the dense, banded and sparse kernels so their singularity behaviour can
/// never desynchronise.
pub(crate) const SINGULARITY_THRESHOLD: f64 = 1e-300;

impl<T: Scalar> LuFactor<T> {
    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::NotSquare`] for rectangular input and
    /// [`FactorizeError::Singular`] if elimination encounters a pivot that is
    /// numerically zero.
    pub fn new(a: &Matrix<T>) -> Result<Self, FactorizeError> {
        let _span = rlckit_telemetry::span("dense.factor");
        if !a.is_square() {
            return Err(FactorizeError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut num_swaps = 0;

        for k in 0..n {
            // Partial pivoting: pick the row with the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_mag = lu[(k, k)].modulus();
            for i in (k + 1)..n {
                let mag = lu[(i, k)].modulus();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if !(pivot_mag > SINGULARITY_THRESHOLD) {
                return Err(FactorizeError::Singular { column: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                num_swaps += 1;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let sub = factor * lu[(k, j)];
                    let cur = lu[(i, j)];
                    lu[(i, j)] = cur - sub;
                }
            }
        }

        // Health check, only under an active profiler: ε·max|uᵢᵢ|/min|uᵢᵢ|
        // is a cheap lower-bound proxy for ε·cond(A) — near 1 the factors
        // carry no correct digits.
        if rlckit_telemetry::enabled() {
            let mut max_d = 0.0_f64;
            let mut min_d = f64::INFINITY;
            for i in 0..n {
                let m = lu[(i, i)].modulus();
                max_d = max_d.max(m);
                min_d = min_d.min(m);
            }
            rlckit_telemetry::check_metric(
                "dense.factor",
                "near_singularity",
                f64::EPSILON * max_d / min_d,
                crate::condition::NEAR_SINGULAR_WARN,
                crate::condition::NEAR_SINGULAR_ERROR,
            );
        }

        Ok(Self { lu, perm, num_swaps })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let _span = rlckit_telemetry::span("dense.solve");
        let n = self.dim();
        assert_eq!(b.len(), n, "right-hand side length must equal matrix dimension");

        // Apply the permutation, then forward substitution (L has unit diagonal).
        let mut y = vec![T::zero(); n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc = acc - self.lu[(i, j)] * yj;
            }
            y[i] = acc;
        }
        // Backward substitution with U.
        let mut x = vec![T::zero(); n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc = acc - self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Solves the transposed system `Aᵀ·x = b` using the same stored factors.
    ///
    /// With `P·A = L·U` the transpose factors as `Aᵀ = Uᵀ·Lᵀ·P`, so the
    /// substitution order flips: a forward sweep with `Uᵀ` (lower
    /// triangular), a backward sweep with the unit-diagonal `Lᵀ`, then the
    /// permutation applied to the *output*. One factorisation thus serves
    /// both orientations — which is what the Hager–Higham condition
    /// estimator ([`crate::condition::invnorm1_estimate`]) needs.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve_transpose(&self, b: &[T]) -> Vec<T> {
        let n = self.dim();
        assert_eq!(b.len(), n, "right-hand side length must equal matrix dimension");

        // Forward substitution with Uᵀ (columns of U read as rows).
        let mut y = vec![T::zero(); n];
        for i in 0..n {
            let mut acc = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc = acc - self.lu[(j, i)] * yj;
            }
            y[i] = acc / self.lu[(i, i)];
        }
        // Backward substitution with the unit-diagonal Lᵀ.
        let mut w = vec![T::zero(); n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &wj) in w.iter().enumerate().skip(i + 1) {
                acc = acc - self.lu[(j, i)] * wj;
            }
            w[i] = acc;
        }
        // Undo the row permutation on the output side: x = Pᵀ·w.
        let mut x = vec![T::zero(); n];
        for (i, &wi) in w.iter().enumerate() {
            x[self.perm[i]] = wi;
        }
        x
    }

    /// Determinant of the original matrix (product of pivots with sign from
    /// the row swaps).
    pub fn determinant(&self) -> T {
        let n = self.dim();
        let mut det = if self.num_swaps.is_multiple_of(2) { T::one() } else { -T::one() };
        for i in 0..n {
            det = det * self.lu[(i, i)];
        }
        det
    }
}

impl LuFactor<f64> {
    /// Hager–Higham estimate of `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁` from the stored
    /// factors, given the 1-norm of the original matrix (e.g.
    /// [`crate::matrix::Matrix::norm_one`]). A handful of extra solves, no
    /// re-factorisation; a lower bound of the true condition number.
    pub fn condest(&self, norm_one_a: f64) -> f64 {
        norm_one_a
            * crate::condition::invnorm1_estimate(
                self.dim(),
                |b| self.solve(b),
                |b| self.solve_transpose(b),
            )
    }
}

/// One-shot convenience: factorise `a` and solve `a·x = b`.
///
/// # Errors
///
/// Propagates [`FactorizeError`] from the factorisation.
pub fn solve<T: Scalar>(a: &Matrix<T>, b: &[T]) -> Result<Vec<T>, FactorizeError> {
    Ok(LuFactor::new(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    #[test]
    fn solves_small_real_system() {
        let a = Matrix::from_rows(3, 3, vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0]);
        let b = [8.0, -11.0, -3.0];
        let x = solve(&a, &b).unwrap();
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected.iter()) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn reuses_factorisation_for_multiple_rhs() {
        let a = Matrix::from_rows(2, 2, vec![4.0, 3.0, 6.0, 3.0]);
        let f = LuFactor::new(&a).unwrap();
        assert_eq!(f.dim(), 2);
        let x1 = f.solve(&[10.0, 12.0]);
        let x2 = f.solve(&[7.0, 9.0]);
        // Verify A·x = b for both.
        for (x, b) in [(&x1, [10.0, 12.0]), (&x2, [7.0, 9.0])] {
            let r = a.mul_vec(x);
            assert!((r[0] - b[0]).abs() < 1e-12);
            assert!((r[1] - b[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_with_swaps() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let f = LuFactor::new(&a).unwrap();
        assert!((f.determinant() + 1.0).abs() < 1e-12);
        let b = Matrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 3.0]);
        assert!((LuFactor::new(&b).unwrap().determinant() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        match LuFactor::new(&a) {
            Err(FactorizeError::Singular { column }) => assert_eq!(column, 1),
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn non_square_is_reported() {
        let a = Matrix::<f64>::zeros(2, 3);
        match LuFactor::new(&a) {
            Err(FactorizeError::NotSquare { rows, cols }) => {
                assert_eq!((rows, cols), (2, 3));
            }
            other => panic!("expected not-square error, got {other:?}"),
        }
        assert!(FactorizeError::NotSquare { rows: 2, cols: 3 }.to_string().contains("2x3"));
    }

    #[test]
    fn complex_system() {
        // (1+j)x + y = 2 ; x - y = j  =>  add: (2+j)x = 2 + j  => x = 1, y = 1 - j.
        let a = Matrix::from_rows(
            2,
            2,
            vec![Complex::new(1.0, 1.0), Complex::ONE, Complex::ONE, -Complex::ONE],
        );
        let b = [Complex::new(2.0, 0.0), Complex::J];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - Complex::ONE).abs() < 1e-12);
        assert!((x[1] - Complex::new(1.0, -1.0)).abs() < 1e-12);
    }

    #[test]
    fn larger_random_like_system_residual_is_small() {
        // Deterministic pseudo-random fill via a linear congruential generator.
        let n = 30;
        let mut state: u64 = 0x2545F4914F6CDD1D;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        let mut a = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            // Diagonal dominance keeps the system well-conditioned.
            a[(i, i)] += 10.0;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(&a, &b).unwrap();
        let r = a.mul_vec(&x);
        let max_resid = r.iter().zip(b.iter()).map(|(ri, bi)| (ri - bi).abs()).fold(0.0, f64::max);
        assert!(max_resid < 1e-10, "residual too large: {max_resid}");
    }

    #[test]
    #[should_panic]
    fn solve_with_wrong_rhs_length_panics() {
        let a = Matrix::<f64>::identity(2);
        let f = LuFactor::new(&a).unwrap();
        let _ = f.solve(&[1.0]);
    }
}
