//! Numerical-methods substrate for the `rlckit` workspace.
//!
//! Everything the rest of the workspace needs that is "just math" lives here,
//! implemented from scratch on top of `std`:
//!
//! * [`complex`] — a small `Complex` type (the workspace avoids external
//!   numerics crates);
//! * [`matrix`] / [`lu`] — dense matrices and LU factorisation with partial
//!   pivoting, over both real and complex scalars (used by the MNA circuit
//!   simulator);
//! * [`banded`] — band-storage matrices and bandwidth-aware LU
//!   (`O(n·b²)` factorisation, `O(n·b)` solves);
//! * [`ordering`] — reverse Cuthill–McKee bandwidth reduction;
//! * [`solver`] — the [`SolverBackend`] policy that
//!   dispatches between the dense and banded kernels;
//! * [`condition`] — normwise backward error and the Hager–Higham 1-norm
//!   condition estimate, feeding the numerical-health monitors of
//!   `rlckit-telemetry` from retained factors at `O(nnz)` cost;
//! * [`roots`] — bracketing root finders (bisection, Brent);
//! * [`optimize`] — golden-section search, Nelder–Mead simplex and grid
//!   refinement (used by the numerical repeater optimiser);
//! * [`orth`] — modified Gram–Schmidt orthonormalization with
//!   reorthogonalization and deflation (the Krylov-basis kernel of the
//!   model-order-reduction crate);
//! * [`eig`] — a small dense nonsymmetric eigensolver (Householder
//!   Hessenberg reduction + Francis double-shift QR), used for reduced-model
//!   pole extraction and companion-matrix polynomial roots;
//! * [`laplace`] — numerical inverse Laplace transforms (fixed Talbot and
//!   Gaver–Stehfest), used to evaluate the exact transmission-line transfer
//!   function in the time domain;
//! * [`interp`] — linear interpolation and threshold-crossing search on
//!   sampled waveforms;
//! * [`poly`] — small polynomial helpers (evaluation, quadratic roots);
//! * [`stats`] — error metrics used when comparing model against simulation.
//!
//! Nothing here knows about circuits or units: this crate sits directly
//! above `std` so the kernels stay reusable and independently testable. The
//! banded LU + RCM pair is the workhorse of every transient sweep in the
//! workspace (see `DESIGN.md` for the complexity accounting), and the
//! `#![warn(missing_docs)]` gate (an error in CI) keeps the public surface
//! documented.
//!
//! # Example
//!
//! ```
//! use rlckit_numeric::roots::brent;
//!
//! // Solve x² = 2 on [1, 2].
//! let root = brent(|x| x * x - 2.0, 1.0, 2.0, 1e-12, 100).expect("bracketed root");
//! assert!((root - 2f64.sqrt()).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banded;
pub mod complex;
pub mod condition;
pub mod eig;
pub mod interp;
pub mod laplace;
pub mod lu;
pub mod matrix;
pub mod optimize;
pub mod ordering;
pub mod orth;
pub mod poly;
pub mod roots;
pub mod solver;
pub mod sparse;
pub mod stats;

pub use banded::{BandedLuFactor, BandedMatrix};
pub use complex::Complex;
pub use eig::{eigenvalues, EigError};
pub use matrix::Matrix;
pub use orth::OrthoBuilder;
pub use solver::{FactoredSolver, ResolvedBackend, SolverBackend};
