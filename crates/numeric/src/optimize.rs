//! Derivative-free minimisation.
//!
//! The repeater-insertion problem minimises the total propagation delay
//! `tpdtotal(h, k)` over the repeater size `h` and the number of sections `k`.
//! The paper solves the two coupled stationarity equations numerically; here
//! we minimise the same objective directly with a Nelder–Mead simplex (seeded
//! by a coarse grid search), plus a golden-section search for one-dimensional
//! sub-problems.

use std::error::Error;
use std::fmt;

/// Error returned by the optimisers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The iteration limit was reached before the tolerance was met.
    MaxIterations {
        /// Best point found so far.
        best: Vec<f64>,
        /// Objective value at `best`.
        value: f64,
    },
    /// The objective returned a non-finite value at the given point.
    NonFinite {
        /// Point at which the objective was non-finite.
        at: Vec<f64>,
    },
    /// An invalid search interval or bound was supplied.
    InvalidBounds {
        /// Human-readable description of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MaxIterations { value, .. } => {
                write!(f, "maximum iterations reached (best objective {value})")
            }
            Self::NonFinite { at } => write!(f, "objective is not finite at {at:?}"),
            Self::InvalidBounds { reason } => write!(f, "invalid bounds: {reason}"),
        }
    }
}

impl Error for OptimizeError {}

/// Result of a successful minimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Location of the minimum.
    pub point: Vec<f64>,
    /// Objective value at [`Minimum::point`].
    pub value: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
}

/// Minimises a one-dimensional unimodal function on `[a, b]` by
/// golden-section search.
///
/// # Errors
///
/// Returns [`OptimizeError::InvalidBounds`] if `a >= b` and
/// [`OptimizeError::NonFinite`] if the objective produces NaN.
pub fn golden_section<F>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Minimum, OptimizeError>
where
    F: FnMut(f64) -> f64,
{
    if !(a < b) {
        return Err(OptimizeError::InvalidBounds { reason: "golden section requires a < b" });
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(OptimizeError::InvalidBounds { reason: "interval endpoints must be finite" });
    }
    if !tol.is_finite() {
        return Err(OptimizeError::InvalidBounds { reason: "tolerance must be finite" });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut lo = a;
    let mut hi = b;
    let mut evals = 0;
    let mut eval = |x: f64, evals: &mut usize| -> Result<f64, OptimizeError> {
        *evals += 1;
        let v = f(x);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(OptimizeError::NonFinite { at: vec![x] })
        }
    };
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let mut fc = eval(c, &mut evals)?;
    let mut fd = eval(d, &mut evals)?;
    for _ in 0..max_iter {
        if (hi - lo).abs() < tol {
            break;
        }
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = eval(c, &mut evals)?;
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = eval(d, &mut evals)?;
        }
    }
    let x = 0.5 * (lo + hi);
    let v = eval(x, &mut evals)?;
    Ok(Minimum { point: vec![x], value: v, evaluations: evals })
}

/// Configuration for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Initial simplex edge length relative to the magnitude of the start point.
    pub initial_step: f64,
    /// Convergence tolerance on the spread of objective values in the simplex.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self { initial_step: 0.1, tolerance: 1e-10, max_iterations: 2000 }
    }
}

/// Minimises an n-dimensional function with the Nelder–Mead simplex method.
///
/// The objective may return `f64::INFINITY` to encode constraints (e.g.
/// "repeater count must be at least one"); infinite values are handled as
/// "worse than anything finite". NaN is treated as an error.
///
/// # Errors
///
/// Returns [`OptimizeError::NonFinite`] if the objective returns NaN at any
/// probed point, [`OptimizeError::InvalidBounds`] for an empty start point,
/// and [`OptimizeError::MaxIterations`] when convergence is not reached (the
/// best point found is included in the error).
pub fn nelder_mead<F>(
    mut f: F,
    start: &[f64],
    options: NelderMeadOptions,
) -> Result<Minimum, OptimizeError>
where
    F: FnMut(&[f64]) -> f64,
{
    let n = start.len();
    if n == 0 {
        return Err(OptimizeError::InvalidBounds { reason: "start point must be non-empty" });
    }
    if start.iter().any(|x| !x.is_finite()) {
        // Catch NaN/∞ at the entry point: inside the iteration such a start
        // would poison every centroid silently rather than fail loudly.
        return Err(OptimizeError::NonFinite { at: start.to_vec() });
    }
    if !options.initial_step.is_finite() || !options.tolerance.is_finite() {
        return Err(OptimizeError::InvalidBounds {
            reason: "initial step and tolerance must be finite",
        });
    }
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> Result<f64, OptimizeError> {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            Err(OptimizeError::NonFinite { at: x.to_vec() })
        } else {
            Ok(v)
        }
    };

    // Build the initial simplex: start point plus one vertex per coordinate.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(start.to_vec());
    for i in 0..n {
        let mut v = start.to_vec();
        let step = if v[i].abs() > 1e-12 {
            options.initial_step * v[i].abs()
        } else {
            options.initial_step
        };
        v[i] += step;
        simplex.push(v);
    }
    let mut values: Vec<f64> = Vec::with_capacity(n + 1);
    for v in &simplex {
        values.push(eval(v, &mut evals)?);
    }

    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    for _ in 0..options.max_iterations {
        // Order the simplex by objective value.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&i, &j| {
            values[i].partial_cmp(&values[j]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let simplex_sorted: Vec<Vec<f64>> = order.iter().map(|&i| simplex[i].clone()).collect();
        let values_sorted: Vec<f64> = order.iter().map(|&i| values[i]).collect();
        simplex = simplex_sorted;
        values = values_sorted;

        let best = values[0];
        let worst = values[n];
        if (worst - best).abs() < options.tolerance * (1.0 + best.abs()) {
            return Ok(Minimum { point: simplex[0].clone(), value: best, evaluations: evals });
        }

        // Centroid of all points except the worst.
        let mut centroid = vec![0.0; n];
        for v in simplex.iter().take(n) {
            for (c, vi) in centroid.iter_mut().zip(v.iter()) {
                *c += vi / n as f64;
            }
        }

        let reflect: Vec<f64> =
            centroid.iter().zip(simplex[n].iter()).map(|(c, w)| c + ALPHA * (c - w)).collect();
        let f_reflect = eval(&reflect, &mut evals)?;

        if f_reflect < values[0] {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(simplex[n].iter())
                .map(|(c, w)| c + GAMMA * ALPHA * (c - w))
                .collect();
            let f_expand = eval(&expand, &mut evals)?;
            if f_expand < f_reflect {
                simplex[n] = expand;
                values[n] = f_expand;
            } else {
                simplex[n] = reflect;
                values[n] = f_reflect;
            }
        } else if f_reflect < values[n - 1] {
            simplex[n] = reflect;
            values[n] = f_reflect;
        } else {
            // Contraction.
            let contract: Vec<f64> =
                centroid.iter().zip(simplex[n].iter()).map(|(c, w)| c + RHO * (w - c)).collect();
            let f_contract = eval(&contract, &mut evals)?;
            if f_contract < values[n] {
                simplex[n] = contract;
                values[n] = f_contract;
            } else {
                // Shrink the whole simplex towards the best vertex.
                let best_point = simplex[0].clone();
                for i in 1..=n {
                    for j in 0..n {
                        simplex[i][j] = best_point[j] + SIGMA * (simplex[i][j] - best_point[j]);
                    }
                    values[i] = eval(&simplex[i].clone(), &mut evals)?;
                }
            }
        }
    }

    // Report the best point found with the error.
    let (idx, &value) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("simplex is non-empty");
    Err(OptimizeError::MaxIterations { best: simplex[idx].clone(), value })
}

/// Exhaustive grid search over a rectangle, used to seed [`nelder_mead`].
///
/// Evaluates `f` on an `nx × ny` grid covering `[x_range.0, x_range.1] ×
/// [y_range.0, y_range.1]` and returns the best grid point.
///
/// # Errors
///
/// Returns [`OptimizeError::InvalidBounds`] if a range is empty or a grid
/// dimension is smaller than 2, and [`OptimizeError::NonFinite`] if `f`
/// returns NaN.
pub fn grid_search_2d<F>(
    mut f: F,
    x_range: (f64, f64),
    y_range: (f64, f64),
    nx: usize,
    ny: usize,
) -> Result<Minimum, OptimizeError>
where
    F: FnMut(f64, f64) -> f64,
{
    if !(x_range.0 < x_range.1) || !(y_range.0 < y_range.1) {
        return Err(OptimizeError::InvalidBounds { reason: "grid ranges must be non-empty" });
    }
    if !x_range.0.is_finite()
        || !x_range.1.is_finite()
        || !y_range.0.is_finite()
        || !y_range.1.is_finite()
    {
        return Err(OptimizeError::InvalidBounds { reason: "grid ranges must be finite" });
    }
    if nx < 2 || ny < 2 {
        return Err(OptimizeError::InvalidBounds {
            reason: "grid must have at least 2 points per axis",
        });
    }
    let mut best = (x_range.0, y_range.0, f64::INFINITY);
    let mut evals = 0usize;
    for i in 0..nx {
        let x = x_range.0 + (x_range.1 - x_range.0) * i as f64 / (nx - 1) as f64;
        for j in 0..ny {
            let y = y_range.0 + (y_range.1 - y_range.0) * j as f64 / (ny - 1) as f64;
            let v = f(x, y);
            evals += 1;
            if v.is_nan() {
                return Err(OptimizeError::NonFinite { at: vec![x, y] });
            }
            if v < best.2 {
                best = (x, y, v);
            }
        }
    }
    Ok(Minimum { point: vec![best.0, best.1], value: best.2, evaluations: evals })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let m = golden_section(|x| (x - 1.7) * (x - 1.7) + 3.0, 0.0, 5.0, 1e-10, 200).unwrap();
        assert!((m.point[0] - 1.7).abs() < 1e-6);
        assert!((m.value - 3.0).abs() < 1e-10);
        assert!(m.evaluations > 0);
    }

    #[test]
    fn golden_section_invalid_interval() {
        assert!(matches!(
            golden_section(|x| x, 1.0, 1.0, 1e-10, 10),
            Err(OptimizeError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let rosen = |p: &[f64]| {
            let (x, y) = (p[0], p[1]);
            (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
        };
        let m = nelder_mead(
            rosen,
            &[-1.2, 1.0],
            NelderMeadOptions { initial_step: 0.5, tolerance: 1e-14, max_iterations: 5000 },
        )
        .unwrap();
        assert!((m.point[0] - 1.0).abs() < 1e-4, "x = {}", m.point[0]);
        assert!((m.point[1] - 1.0).abs() < 1e-4, "y = {}", m.point[1]);
        assert!(m.value < 1e-7);
    }

    #[test]
    fn nelder_mead_handles_infinite_barrier() {
        // Constrained quadratic: objective is +inf for x < 0.5.
        let f = |p: &[f64]| {
            if p[0] < 0.5 {
                f64::INFINITY
            } else {
                (p[0] - 0.2).powi(2)
            }
        };
        let m = nelder_mead(f, &[2.0], NelderMeadOptions::default()).unwrap();
        assert!((m.point[0] - 0.5).abs() < 1e-3, "constrained minimum at 0.5, got {}", m.point[0]);
    }

    #[test]
    fn non_finite_inputs_are_rejected_at_the_entry_points() {
        // Satellite hardening: non-finite *inputs* (not just objective
        // values) must surface as typed errors, never as silent NaN drift.
        assert!(matches!(
            golden_section(|x| x * x, f64::NEG_INFINITY, 1.0, 1e-10, 50),
            Err(OptimizeError::InvalidBounds { .. })
        ));
        assert!(matches!(
            golden_section(|x| x * x, 0.0, 1.0, f64::NAN, 50),
            Err(OptimizeError::InvalidBounds { .. })
        ));
        assert!(matches!(
            nelder_mead(|p| p[0], &[1.0, f64::NAN], NelderMeadOptions::default()),
            Err(OptimizeError::NonFinite { .. })
        ));
        assert!(matches!(
            nelder_mead(
                |p| p[0],
                &[1.0],
                NelderMeadOptions { initial_step: f64::INFINITY, ..Default::default() }
            ),
            Err(OptimizeError::InvalidBounds { .. })
        ));
        assert!(matches!(
            grid_search_2d(|x, _| x, (0.0, f64::INFINITY), (0.0, 1.0), 3, 3),
            Err(OptimizeError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn nelder_mead_rejects_nan() {
        let f = |_: &[f64]| f64::NAN;
        assert!(matches!(
            nelder_mead(f, &[1.0], NelderMeadOptions::default()),
            Err(OptimizeError::NonFinite { .. })
        ));
    }

    #[test]
    fn nelder_mead_empty_start() {
        let f = |_: &[f64]| 0.0;
        assert!(matches!(
            nelder_mead(f, &[], NelderMeadOptions::default()),
            Err(OptimizeError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn nelder_mead_reports_best_on_iteration_limit() {
        let f = |p: &[f64]| p[0] * p[0];
        let err = nelder_mead(
            f,
            &[10.0],
            NelderMeadOptions { initial_step: 0.1, tolerance: 0.0, max_iterations: 3 },
        )
        .unwrap_err();
        match err {
            OptimizeError::MaxIterations { best, value } => {
                assert_eq!(best.len(), 1);
                assert!(value.is_finite());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn grid_search_finds_coarse_minimum() {
        let m = grid_search_2d(
            |x, y| (x - 3.0).powi(2) + (y + 1.0).powi(2),
            (0.0, 5.0),
            (-5.0, 5.0),
            51,
            101,
        )
        .unwrap();
        assert!((m.point[0] - 3.0).abs() < 0.11);
        assert!((m.point[1] + 1.0).abs() < 0.11);
        assert_eq!(m.evaluations, 51 * 101);
    }

    #[test]
    fn grid_search_invalid_inputs() {
        assert!(grid_search_2d(|_, _| 0.0, (1.0, 0.0), (0.0, 1.0), 5, 5).is_err());
        assert!(grid_search_2d(|_, _| 0.0, (0.0, 1.0), (0.0, 1.0), 1, 5).is_err());
        assert!(matches!(
            grid_search_2d(|_, _| f64::NAN, (0.0, 1.0), (0.0, 1.0), 3, 3),
            Err(OptimizeError::NonFinite { .. })
        ));
    }

    #[test]
    fn grid_then_nelder_mead_refinement_pattern() {
        // The pattern used by the repeater optimiser: coarse grid, then polish.
        let objective = |x: f64, y: f64| {
            (x - 2.5).powi(2) * (1.0 + 0.1 * (y - 4.0).powi(2)) + (y - 4.0).powi(2)
        };
        let coarse = grid_search_2d(objective, (0.1, 10.0), (0.1, 10.0), 20, 20).unwrap();
        let refined =
            nelder_mead(|p| objective(p[0], p[1]), &coarse.point, NelderMeadOptions::default())
                .unwrap();
        assert!((refined.point[0] - 2.5).abs() < 1e-4);
        assert!((refined.point[1] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn error_display() {
        assert!(OptimizeError::MaxIterations { best: vec![1.0], value: 2.0 }
            .to_string()
            .contains("maximum"));
        assert!(OptimizeError::NonFinite { at: vec![0.0] }.to_string().contains("finite"));
        assert!(OptimizeError::InvalidBounds { reason: "x" }.to_string().contains("x"));
    }
}
