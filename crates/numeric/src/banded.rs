//! Banded matrices and bandwidth-aware LU factorisation.
//!
//! A matrix has lower bandwidth `kl` and upper bandwidth `ku` when
//! `a[i][j] = 0` for `j < i - kl` or `j > i + ku`. The MNA systems of
//! RLC-ladder circuits are exactly of this shape once their unknowns are
//! ordered along the line (see [`crate::ordering`]), with `kl`, `ku` small
//! constants independent of the line length.
//!
//! [`BandedMatrix`] stores only the `kl + ku + 1` diagonals, so assembly is
//! `O(n·b)` memory instead of `O(n²)`. [`BandedLuFactor`] implements the
//! LAPACK `dgbtrf`/`dgbtrs` algorithm (LU with partial pivoting confined to
//! the band): factorisation costs `O(n·kl·(kl+ku))` and each solve
//! `O(n·(kl+ku))`, against `O(n³)` / `O(n²)` for the dense path. Partial
//! pivoting inside the band is *full* partial pivoting, because every nonzero
//! of column `j` lies within `kl` rows of the diagonal by definition — the
//! factorisation is exactly as stable as the dense one. Row interchanges fill
//! in up to `kl` extra superdiagonals, which the factor storage reserves.

use crate::lu::{FactorizeError, SINGULARITY_THRESHOLD};
use crate::matrix::{Matrix, Scalar};

/// A square matrix stored by diagonals: only entries with
/// `-kl <= j - i <= ku` are representable.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix<T: Scalar = f64> {
    n: usize,
    kl: usize,
    ku: usize,
    /// Row-major band storage: row `i` occupies `width = kl + ku + 1` slots,
    /// with column `j` at offset `j - i + kl`.
    data: Vec<T>,
}

impl<T: Scalar> BandedMatrix<T> {
    /// Creates a zero-filled `n × n` banded matrix.
    ///
    /// Bandwidths are clamped to `n - 1`, so `BandedMatrix::zeros(n, n, n)`
    /// is a valid (degenerate, full) band.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zeros(n: usize, kl: usize, ku: usize) -> Self {
        assert!(n > 0, "banded matrix dimension must be non-zero");
        let kl = kl.min(n - 1);
        let ku = ku.min(n - 1);
        Self { n, kl, ku, data: vec![T::zero(); n * (kl + ku + 1)] }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Lower bandwidth.
    #[inline]
    pub fn lower_bandwidth(&self) -> usize {
        self.kl
    }

    /// Upper bandwidth.
    #[inline]
    pub fn upper_bandwidth(&self) -> usize {
        self.ku
    }

    #[inline]
    fn width(&self) -> usize {
        self.kl + self.ku + 1
    }

    #[inline]
    fn offset(&self, row: usize, col: usize) -> Option<usize> {
        let d = col as isize - row as isize;
        if d < -(self.kl as isize) || d > self.ku as isize {
            None
        } else {
            Some(row * self.width() + (d + self.kl as isize) as usize)
        }
    }

    /// Element accessor; entries outside the band read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.n && col < self.n, "banded matrix index out of bounds");
        match self.offset(row, col) {
            Some(k) => self.data[k],
            None => T::zero(),
        }
    }

    /// Sets an element.
    ///
    /// # Panics
    ///
    /// Panics if the position lies outside the band or the matrix.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.n && col < self.n, "banded matrix index out of bounds");
        let k = self.offset(row, col).expect("position outside the band");
        self.data[k] = value;
    }

    /// Adds `value` to the element at `(row, col)` — the MNA stamping
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if the position lies outside the band or the matrix.
    #[inline]
    pub fn add_at(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.n && col < self.n, "banded matrix index out of bounds");
        let k = self.offset(row, col).expect("position outside the band");
        self.data[k] = self.data[k] + value;
    }

    /// Matrix–vector product `A·x` in `O(n·(kl+ku))`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n, "vector length must equal matrix dimension");
        let mut y = vec![T::zero(); self.n];
        for i in 0..self.n {
            let lo = i.saturating_sub(self.kl);
            let hi = (i + self.ku).min(self.n - 1);
            let mut acc = T::zero();
            let row = &self.data[i * self.width()..];
            for j in lo..=hi {
                acc = acc + row[j + self.kl - i] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// Expands to a dense [`Matrix`] (used by the dense fallback path and in
    /// tests).
    pub fn to_dense(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            let lo = i.saturating_sub(self.kl);
            let hi = (i + self.ku).min(self.n - 1);
            for j in lo..=hi {
                m[(i, j)] = self.get(i, j);
            }
        }
        m
    }

    /// Builds a banded copy of a dense matrix with the given bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square or has a nonzero entry outside the band.
    pub fn from_dense(a: &Matrix<T>, kl: usize, ku: usize) -> Self {
        assert!(a.is_square(), "banded matrices must be square");
        let n = a.rows();
        let mut b = Self::zeros(n, kl, ku);
        for i in 0..n {
            for j in 0..n {
                let v = a[(i, j)];
                if v != T::zero() {
                    b.set(i, j, v); // panics when (i, j) is outside the band
                }
            }
        }
        b
    }
}

/// An LU factorisation `P·A = L·U` of a banded matrix, with partial pivoting
/// confined to the band (LAPACK `dgbtrf`).
///
/// The factors occupy `kl + min(kl + ku, n-1) + 1` diagonals: row
/// interchanges widen `U` by up to `kl` superdiagonals beyond the original
/// `ku`.
#[derive(Debug, Clone)]
pub struct BandedLuFactor<T: Scalar = f64> {
    n: usize,
    kl: usize,
    /// Upper bandwidth of the factored `U` (original `ku` plus pivoting fill).
    kuf: usize,
    /// Row-major factor storage: row `i` covers columns `i - kl ..= i + kuf`,
    /// column `j` at offset `j - i + kl`.
    data: Vec<T>,
    /// Pivot row chosen at elimination step `j` (absolute row index).
    ipiv: Vec<usize>,
}

impl<T: Scalar> BandedLuFactor<T> {
    /// Factorises a banded matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::Singular`] if elimination encounters a pivot
    /// that is numerically zero.
    pub fn new(a: &BandedMatrix<T>) -> Result<Self, FactorizeError> {
        let _span = rlckit_telemetry::span("banded.factor");
        let n = a.dim();
        let kl = a.lower_bandwidth();
        let ku = a.upper_bandwidth();
        let kuf = (kl + ku).min(n - 1);
        let width = kl + kuf + 1;

        // Copy the band into the wider factor storage.
        let mut data = vec![T::zero(); n * width];
        for i in 0..n {
            let lo = i.saturating_sub(kl);
            let hi = (i + ku).min(n - 1);
            for j in lo..=hi {
                data[i * width + (j + kl - i)] = a.get(i, j);
            }
        }

        let at = |data: &[T], i: usize, j: usize| -> T { data[i * width + (j + kl - i)] };
        let mut ipiv = vec![0usize; n];

        for j in 0..n {
            // Partial pivoting over the (at most kl + 1) rows that can hold a
            // nonzero in column j.
            let last_row = (j + kl).min(n - 1);
            let mut p = j;
            let mut p_mag = at(&data, j, j).modulus();
            for i in (j + 1)..=last_row {
                let mag = at(&data, i, j).modulus();
                if mag > p_mag {
                    p_mag = mag;
                    p = i;
                }
            }
            if !(p_mag > SINGULARITY_THRESHOLD) {
                return Err(FactorizeError::Singular { column: j });
            }
            ipiv[j] = p;

            // Columns the elimination step can touch.
            let last_col = (j + kuf).min(n - 1);
            if p != j {
                // Swap rows j and p over columns j..=last_col. Both windows
                // cover this range: p <= j + kl, so p - kl <= j, and the row-j
                // window extends to j + kuf >= last_col.
                for c in j..=last_col {
                    let kj = j * width + (c + kl - j);
                    let kp = p * width + (c + kl - p);
                    data.swap(kj, kp);
                }
            }

            let pivot = at(&data, j, j);
            for i in (j + 1)..=last_row {
                let factor = at(&data, i, j) / pivot;
                data[i * width + (j + kl - i)] = factor;
                if factor != T::zero() {
                    for c in (j + 1)..=last_col {
                        let sub = factor * at(&data, j, c);
                        let k = i * width + (c + kl - i);
                        data[k] = data[k] - sub;
                    }
                }
            }
        }

        // Near-singularity health proxy from the U diagonal (see lu.rs) —
        // profiler-gated, O(n).
        if rlckit_telemetry::enabled() {
            let mut max_d = 0.0_f64;
            let mut min_d = f64::INFINITY;
            for i in 0..n {
                let m = at(&data, i, i).modulus();
                max_d = max_d.max(m);
                min_d = min_d.min(m);
            }
            rlckit_telemetry::check_metric(
                "banded.factor",
                "near_singularity",
                f64::EPSILON * max_d / min_d,
                crate::condition::NEAR_SINGULAR_WARN,
                crate::condition::NEAR_SINGULAR_ERROR,
            );
        }

        Ok(Self { n, kl, kuf, data, ipiv })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the stored factors in `O(n·(kl+ku))`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let _span = rlckit_telemetry::span("banded.solve");
        assert_eq!(b.len(), self.n, "right-hand side length must equal matrix dimension");
        let width = self.kl + self.kuf + 1;
        let at = |i: usize, j: usize| -> T { self.data[i * width + (j + self.kl - i)] };
        let mut x = b.to_vec();

        // Forward: interleave the row interchanges with the unit-lower solve,
        // exactly as dgbtrs does (multipliers are not permuted retroactively).
        for j in 0..self.n {
            let p = self.ipiv[j];
            if p != j {
                x.swap(j, p);
            }
            let xj = x[j];
            if xj != T::zero() {
                let last_row = (j + self.kl).min(self.n - 1);
                for (i, xi) in x.iter_mut().enumerate().take(last_row + 1).skip(j + 1) {
                    *xi = *xi - at(i, j) * xj;
                }
            }
        }

        // Backward substitution with the banded U.
        for i in (0..self.n).rev() {
            let mut acc = x[i];
            let hi = (i + self.kuf).min(self.n - 1);
            for (j, &xj) in x.iter().enumerate().take(hi + 1).skip(i + 1) {
                acc = acc - at(i, j) * xj;
            }
            x[i] = acc / at(i, i);
        }
        x
    }

    /// Solves the transposed system `Aᵀ·x = b` with the same stored factors
    /// (LAPACK `dgbtrs` with `TRANS = 'T'`): a forward sweep with the banded
    /// `Uᵀ`, then the unit-lower multipliers and row interchanges applied in
    /// reverse elimination order. Fuel for the Hager–Higham condition
    /// estimator ([`crate::condition::invnorm1_estimate`]).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the matrix dimension.
    pub fn solve_transpose(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.n, "right-hand side length must equal matrix dimension");
        let width = self.kl + self.kuf + 1;
        let at = |i: usize, j: usize| -> T { self.data[i * width + (j + self.kl - i)] };
        let mut x = b.to_vec();

        // Forward substitution with Uᵀ: row i of Uᵀ holds U's column i,
        // whose entries live in rows i-kuf..=i.
        for i in 0..self.n {
            let mut acc = x[i];
            let lo = i.saturating_sub(self.kuf);
            for (j, &xj) in x.iter().enumerate().take(i).skip(lo) {
                acc = acc - at(j, i) * xj;
            }
            x[i] = acc / at(i, i);
        }

        // Backward: undo the interleaved (swap, eliminate) steps of the
        // forward solve in reverse — subtract the column-j multipliers, then
        // apply the step-j interchange.
        for j in (0..self.n).rev() {
            let mut acc = x[j];
            let last_row = (j + self.kl).min(self.n - 1);
            for (i, &xi) in x.iter().enumerate().take(last_row + 1).skip(j + 1) {
                acc = acc - at(i, j) * xi;
            }
            x[j] = acc;
            let p = self.ipiv[j];
            if p != j {
                x.swap(j, p);
            }
        }
        x
    }
}

impl BandedLuFactor<f64> {
    /// Hager–Higham estimate of `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁` from the stored
    /// factors, given the 1-norm of the original matrix. A handful of extra
    /// `O(n·b)` solves, no re-factorisation; a lower bound of the true
    /// condition number.
    pub fn condest(&self, norm_one_a: f64) -> f64 {
        norm_one_a
            * crate::condition::invnorm1_estimate(
                self.dim(),
                |b| self.solve(b),
                |b| self.solve_transpose(b),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::lu::LuFactor;

    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    fn random_banded(n: usize, kl: usize, ku: usize, seed: u64) -> BandedMatrix<f64> {
        let mut state = seed;
        let mut a = BandedMatrix::zeros(n, kl, ku);
        for i in 0..n {
            let lo = i.saturating_sub(kl);
            let hi = (i + ku).min(n - 1);
            for j in lo..=hi {
                a.set(i, j, lcg(&mut state));
            }
            // Diagonal dominance keeps the system well-conditioned.
            a.add_at(i, i, 4.0);
        }
        a
    }

    #[test]
    fn storage_round_trips_and_out_of_band_reads_zero() {
        let mut a = BandedMatrix::<f64>::zeros(5, 1, 2);
        a.set(2, 1, -3.0);
        a.set(2, 4, 7.0);
        a.add_at(2, 1, 1.0);
        assert_eq!(a.get(2, 1), -2.0);
        assert_eq!(a.get(2, 4), 7.0);
        assert_eq!(a.get(4, 0), 0.0); // outside the band
        assert_eq!(a.dim(), 5);
        assert_eq!(a.lower_bandwidth(), 1);
        assert_eq!(a.upper_bandwidth(), 2);
    }

    #[test]
    #[should_panic]
    fn writing_outside_the_band_panics() {
        let mut a = BandedMatrix::<f64>::zeros(5, 1, 1);
        a.set(0, 4, 1.0);
    }

    #[test]
    fn bandwidths_are_clamped_to_dimension() {
        let a = BandedMatrix::<f64>::zeros(3, 10, 10);
        assert_eq!(a.lower_bandwidth(), 2);
        assert_eq!(a.upper_bandwidth(), 2);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = random_banded(9, 2, 1, 0xBEEF);
        let x: Vec<f64> = (0..9).map(|i| i as f64 - 4.0).collect();
        let dense = a.to_dense();
        let yb = a.mul_vec(&x);
        let yd = dense.mul_vec(&x);
        for (b, d) in yb.iter().zip(yd.iter()) {
            assert!((b - d).abs() < 1e-14);
        }
    }

    #[test]
    fn tridiagonal_solve_matches_dense() {
        let a = random_banded(40, 1, 1, 0x1234);
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin()).collect();
        let xb = BandedLuFactor::new(&a).unwrap().solve(&b);
        let xd = LuFactor::new(&a.to_dense()).unwrap().solve(&b);
        for (u, v) in xb.iter().zip(xd.iter()) {
            assert!((u - v).abs() < 1e-12, "banded {u} vs dense {v}");
        }
    }

    #[test]
    fn asymmetric_bandwidths_solve_correctly() {
        for (kl, ku) in [(0, 3), (3, 0), (2, 5), (5, 2)] {
            let a = random_banded(25, kl, ku, 0xABCD + kl as u64 * 17 + ku as u64);
            let b: Vec<f64> = (0..25).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let x = BandedLuFactor::new(&a).unwrap().solve(&b);
            let r = a.mul_vec(&x);
            for (ri, bi) in r.iter().zip(b.iter()) {
                assert!((ri - bi).abs() < 1e-11, "residual {}", (ri - bi).abs());
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] needs a row swap even in band form (kl = ku = 1).
        let mut a = BandedMatrix::<f64>::zeros(2, 1, 1);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        let x = BandedLuFactor::new(&a).unwrap().solve(&[3.0, 5.0]);
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_bandwidth_is_a_diagonal_solve() {
        let mut a = BandedMatrix::<f64>::zeros(4, 0, 0);
        for i in 0..4 {
            a.set(i, i, (i + 1) as f64);
        }
        let x = BandedLuFactor::new(&a).unwrap().solve(&[1.0, 2.0, 3.0, 4.0]);
        for (i, v) in x.iter().enumerate() {
            assert!((v - 1.0).abs() < 1e-15, "x[{i}] = {v}");
        }
    }

    #[test]
    fn full_bandwidth_degenerates_to_dense() {
        let n = 12;
        let mut state = 0x5EED;
        let mut dense = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                dense[(i, j)] = lcg(&mut state);
            }
            dense[(i, i)] += 6.0;
        }
        let banded = BandedMatrix::from_dense(&dense, n - 1, n - 1);
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let xb = BandedLuFactor::new(&banded).unwrap().solve(&b);
        let xd = LuFactor::new(&dense).unwrap().solve(&b);
        for (u, v) in xb.iter().zip(xd.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = BandedMatrix::<f64>::zeros(3, 1, 1);
        a.set(0, 0, 1.0);
        a.set(0, 1, 1.0);
        // Column 1 is entirely zero below the elimination of column 0.
        match BandedLuFactor::new(&a) {
            Err(FactorizeError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn complex_banded_system() {
        let mut a = BandedMatrix::<Complex>::zeros(3, 1, 1);
        a.set(0, 0, Complex::new(1.0, 1.0));
        a.set(0, 1, Complex::ONE);
        a.set(1, 0, Complex::ONE);
        a.set(1, 1, -Complex::ONE);
        a.set(2, 2, Complex::J);
        let b = [Complex::new(2.0, 0.0), Complex::J, Complex::J];
        let x = BandedLuFactor::new(&a).unwrap().solve(&b);
        // First two rows match the dense lu.rs complex test; third is J·x = J.
        assert!((x[0] - Complex::ONE).abs() < 1e-12);
        assert!((x[1] - Complex::new(1.0, -1.0)).abs() < 1e-12);
        assert!((x[2] - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn solve_with_wrong_rhs_length_panics() {
        let a = random_banded(4, 1, 1, 3);
        let f = BandedLuFactor::new(&a).unwrap();
        let _ = f.solve(&[1.0]);
    }
}
