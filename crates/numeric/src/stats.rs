//! Error metrics for comparing model predictions against simulation.
//!
//! The paper reports per-cell percentage errors (Table 1, "< 5%") and the
//! accuracy of the repeater closed forms ("< 0.05%"); these helpers compute
//! the same statistics over whole sweeps.

use std::error::Error;
use std::fmt;

/// Error returned when a comparison cannot be formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The two slices have different lengths or are empty.
    LengthMismatch {
        /// Length of the predicted slice.
        predicted: usize,
        /// Length of the reference slice.
        reference: usize,
    },
    /// A reference value is zero, so a relative error is undefined.
    ZeroReference {
        /// Index of the zero reference value.
        index: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { predicted, reference } => write!(
                f,
                "predicted and reference slices must be non-empty and equal length (got {predicted} and {reference})"
            ),
            Self::ZeroReference { index } => {
                write!(f, "reference value at index {index} is zero")
            }
        }
    }
}

impl Error for StatsError {}

/// Summary statistics of the relative error between predictions and references.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Largest absolute relative error, in per cent.
    pub max_percent: f64,
    /// Mean absolute relative error, in per cent.
    pub mean_percent: f64,
    /// Root-mean-square relative error, in per cent.
    pub rms_percent: f64,
    /// Number of points compared.
    pub count: usize,
}

impl fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max {:.2}% | mean {:.2}% | rms {:.2}% over {} points",
            self.max_percent, self.mean_percent, self.rms_percent, self.count
        )
    }
}

/// Relative error of a single prediction against a reference, in per cent.
///
/// # Errors
///
/// Returns [`StatsError::ZeroReference`] if `reference` is zero.
pub fn percent_error(predicted: f64, reference: f64) -> Result<f64, StatsError> {
    if reference == 0.0 {
        return Err(StatsError::ZeroReference { index: 0 });
    }
    Ok((predicted - reference).abs() / reference.abs() * 100.0)
}

/// Signed relative difference `(predicted − reference)/reference` in per cent.
///
/// # Errors
///
/// Returns [`StatsError::ZeroReference`] if `reference` is zero.
pub fn signed_percent_difference(predicted: f64, reference: f64) -> Result<f64, StatsError> {
    if reference == 0.0 {
        return Err(StatsError::ZeroReference { index: 0 });
    }
    Ok((predicted - reference) / reference.abs() * 100.0)
}

/// Computes max / mean / RMS relative error between two equal-length slices.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] for empty or unequal slices and
/// [`StatsError::ZeroReference`] if any reference value is zero.
pub fn error_summary(predicted: &[f64], reference: &[f64]) -> Result<ErrorSummary, StatsError> {
    if predicted.is_empty() || predicted.len() != reference.len() {
        return Err(StatsError::LengthMismatch {
            predicted: predicted.len(),
            reference: reference.len(),
        });
    }
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for (i, (p, r)) in predicted.iter().zip(reference.iter()).enumerate() {
        if *r == 0.0 {
            return Err(StatsError::ZeroReference { index: i });
        }
        let e = (p - r).abs() / r.abs() * 100.0;
        max = max.max(e);
        sum += e;
        sum_sq += e * e;
    }
    let n = predicted.len() as f64;
    Ok(ErrorSummary {
        max_percent: max,
        mean_percent: sum / n,
        rms_percent: (sum_sq / n).sqrt(),
        count: predicted.len(),
    })
}

/// Arithmetic mean of a slice; `None` if the slice is empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation (n − 1 normalisation); `None` for fewer than two values.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_errors() {
        assert!((percent_error(105.0, 100.0).unwrap() - 5.0).abs() < 1e-12);
        assert!((percent_error(95.0, 100.0).unwrap() - 5.0).abs() < 1e-12);
        assert!((signed_percent_difference(95.0, 100.0).unwrap() + 5.0).abs() < 1e-12);
        assert!(matches!(percent_error(1.0, 0.0), Err(StatsError::ZeroReference { .. })));
        assert!(matches!(
            signed_percent_difference(1.0, 0.0),
            Err(StatsError::ZeroReference { .. })
        ));
    }

    #[test]
    fn summary_statistics() {
        let predicted = [101.0, 99.0, 102.0, 100.0];
        let reference = [100.0, 100.0, 100.0, 100.0];
        let s = error_summary(&predicted, &reference).unwrap();
        assert!((s.max_percent - 2.0).abs() < 1e-12);
        assert!((s.mean_percent - 1.0).abs() < 1e-12);
        assert!(s.rms_percent >= s.mean_percent);
        assert_eq!(s.count, 4);
        let text = s.to_string();
        assert!(text.contains("max"));
        assert!(text.contains('4'));
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(matches!(error_summary(&[], &[]), Err(StatsError::LengthMismatch { .. })));
        assert!(matches!(
            error_summary(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            error_summary(&[1.0, 1.0], &[1.0, 0.0]),
            Err(StatsError::ZeroReference { index: 1 })
        ));
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138089935299395).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert!(StatsError::LengthMismatch { predicted: 1, reference: 2 }
            .to_string()
            .contains("equal length"));
        assert!(StatsError::ZeroReference { index: 3 }.to_string().contains('3'));
    }
}
