//! Bracketing root finders.
//!
//! Used to solve `Vout(t) = 0.5` for the 50% propagation delay on analytic
//! step responses, and anywhere else a monotone crossing must be located.

use std::error::Error;
use std::fmt;

/// Error returned by the root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign, so no root is bracketed.
    NotBracketed {
        /// Function value at the lower end of the interval.
        fa: f64,
        /// Function value at the upper end of the interval.
        fb: f64,
    },
    /// The iteration limit was reached before the tolerance was met.
    MaxIterations {
        /// Best estimate of the root when iteration stopped.
        best: f64,
    },
    /// The function returned a non-finite value.
    NonFinite {
        /// Argument at which the function was non-finite.
        at: f64,
    },
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotBracketed { fa, fb } => {
                write!(f, "interval does not bracket a root (f(a) = {fa}, f(b) = {fb})")
            }
            Self::MaxIterations { best } => {
                write!(f, "maximum iterations reached (best estimate {best})")
            }
            Self::NonFinite { at } => write!(f, "function value is not finite at x = {at}"),
        }
    }
}

impl Error for RootError {}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// Robust but linearly convergent; prefer [`brent`] unless the function is
/// extremely cheap or badly behaved.
///
/// # Errors
///
/// Returns [`RootError::NotBracketed`] if `f(a)` and `f(b)` have the same
/// sign, [`RootError::NonFinite`] if `f` produces NaN/infinity, and
/// [`RootError::MaxIterations`] if the tolerance is not reached.
pub fn bisect<F>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError>
where
    F: FnMut(f64) -> f64,
{
    let mut fa = f(a);
    let fb = f(b);
    if !fa.is_finite() {
        return Err(RootError::NonFinite { at: a });
    }
    if !fb.is_finite() {
        return Err(RootError::NonFinite { at: b });
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { fa, fb });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if !fm.is_finite() {
            return Err(RootError::NonFinite { at: mid });
        }
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(RootError::MaxIterations { best: 0.5 * (a + b) })
}

/// Finds a root of `f` in `[a, b]` using Brent's method.
///
/// Combines bisection, secant and inverse quadratic interpolation; this is the
/// workhorse root finder of the workspace.
///
/// # Errors
///
/// Same error conditions as [`bisect`].
pub fn brent<F>(
    mut f: F,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError>
where
    F: FnMut(f64) -> f64,
{
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() {
        return Err(RootError::NonFinite { at: a });
    }
    if !fb.is_finite() {
        return Err(RootError::NonFinite { at: b });
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NotBracketed { fa, fb });
    }

    // Ensure |f(b)| <= |f(a)| so b is the best estimate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s;
        if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            s = a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb));
        } else {
            // Secant.
            s = b - fb * (b - a) / (fb - fa);
        }

        let lower = (3.0 * a + b) / 4.0;
        let cond1 =
            !((s > lower.min(b) && s < lower.max(b)) || (s > b.min(lower) && s < b.max(lower)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && (c - d).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        if !fs.is_finite() {
            return Err(RootError::NonFinite { at: s });
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations { best: b })
}

/// Expands an initial guess interval geometrically until it brackets a root.
///
/// Starting from `[a, b]`, the upper end is multiplied by `factor` up to
/// `max_expansions` times until `f` changes sign. Returns the bracketing
/// interval.
///
/// # Errors
///
/// Returns [`RootError::NotBracketed`] if no sign change is found within the
/// allowed number of expansions.
pub fn expand_bracket<F>(
    mut f: F,
    a: f64,
    mut b: f64,
    factor: f64,
    max_expansions: usize,
) -> Result<(f64, f64), RootError>
where
    F: FnMut(f64) -> f64,
{
    let fa = f(a);
    if !fa.is_finite() {
        return Err(RootError::NonFinite { at: a });
    }
    let mut fb = f(b);
    if !fb.is_finite() {
        return Err(RootError::NonFinite { at: b });
    }
    for _ in 0..max_expansions {
        if fa.signum() != fb.signum() {
            return Ok((a, b));
        }
        b *= factor;
        fb = f(b);
        if !fb.is_finite() {
            return Err(RootError::NonFinite { at: b });
        }
    }
    if fa.signum() != fb.signum() {
        Ok((a, b))
    } else {
        Err(RootError::NotBracketed { fa, fb })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt_two() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt_two_faster() {
        let mut count_brent = 0usize;
        let r = brent(
            |x| {
                count_brent += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            1e-14,
            100,
        )
        .unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-12);
        assert!(count_brent < 45, "brent used {count_brent} evaluations");
    }

    #[test]
    fn exact_endpoint_roots_are_returned() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-12, 10).unwrap(), 1.0);
    }

    #[test]
    fn unbracketed_interval_is_an_error() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(RootError::NotBracketed { .. })
        ));
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(RootError::NotBracketed { .. })
        ));
    }

    #[test]
    fn non_finite_function_is_an_error() {
        assert!(matches!(
            brent(|x| if x > 0.5 { f64::NAN } else { -1.0 }, 0.0, 1.0, 1e-12, 100),
            Err(RootError::NonFinite { .. })
        ));
    }

    #[test]
    fn transcendental_root() {
        // cos(x) = x has a root near 0.739085.
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
        assert!((r - 0.7390851332151607).abs() < 1e-10);
    }

    #[test]
    fn nearly_flat_function() {
        // f(x) = (x - 0.3)^3 is flat near the root; brent should still converge.
        let r = brent(|x| (x - 0.3).powi(3), 0.0, 1.0, 1e-12, 200).unwrap();
        assert!((r - 0.3).abs() < 1e-4);
    }

    #[test]
    fn expand_bracket_grows_interval() {
        // Root at x = 100, initial interval [0, 1] does not bracket it.
        let (a, b) = expand_bracket(|x| x - 100.0, 0.0, 1.0, 2.0, 20).unwrap();
        assert!(a <= 100.0 && b >= 100.0);
        let r = brent(|x| x - 100.0, a, b, 1e-12, 100).unwrap();
        assert!((r - 100.0).abs() < 1e-9);
    }

    #[test]
    fn expand_bracket_rejects_non_finite_endpoints() {
        // Regression: a NaN at the *initial* endpoints used to slip through
        // (only expanded endpoints were checked), making signum() comparisons
        // silently meaningless.
        assert!(matches!(
            expand_bracket(|x| if x == 0.0 { f64::NAN } else { x }, 0.0, 1.0, 2.0, 5),
            Err(RootError::NonFinite { .. })
        ));
        assert!(matches!(
            expand_bracket(|x| if x == 1.0 { f64::INFINITY } else { x }, 0.0, 1.0, 2.0, 5),
            Err(RootError::NonFinite { .. })
        ));
    }

    #[test]
    fn expand_bracket_gives_up() {
        assert!(matches!(
            expand_bracket(|_| 1.0, 0.0, 1.0, 2.0, 5),
            Err(RootError::NotBracketed { .. })
        ));
    }

    #[test]
    fn error_display() {
        let e = RootError::NotBracketed { fa: 1.0, fb: 2.0 };
        assert!(e.to_string().contains("bracket"));
        let e = RootError::MaxIterations { best: 0.5 };
        assert!(e.to_string().contains("0.5"));
        let e = RootError::NonFinite { at: 2.0 };
        assert!(e.to_string().contains("finite"));
    }
}
