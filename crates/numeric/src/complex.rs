//! A minimal complex-number type.
//!
//! The workspace deliberately avoids external numerics dependencies, so this
//! module provides the small subset of complex arithmetic needed for
//! frequency-domain circuit analysis and the Talbot inverse Laplace transform:
//! field arithmetic, exponential, hyperbolic functions and the principal
//! square root.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Self = Self { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities if `z` is zero, mirroring `f64` division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Self::new(self.abs().ln(), self.arg())
    }

    /// Principal square root (branch cut along the negative real axis).
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Self::ZERO;
        }
        let r = self.abs();
        let theta = self.arg() / 2.0;
        Self::from_polar(r.sqrt(), theta)
    }

    /// Complex power `z^w = e^{w ln z}` (principal branch).
    #[inline]
    pub fn powc(self, w: Self) -> Self {
        (self.ln() * w).exp()
    }

    /// Hyperbolic cosine.
    #[inline]
    pub fn cosh(self) -> Self {
        // cosh(a + jb) = cosh a cos b + j sinh a sin b
        Self::new(self.re.cosh() * self.im.cos(), self.re.sinh() * self.im.sin())
    }

    /// Hyperbolic sine.
    #[inline]
    pub fn sinh(self) -> Self {
        // sinh(a + jb) = sinh a cos b + j cosh a sin b
        Self::new(self.re.sinh() * self.im.cos(), self.re.cosh() * self.im.sin())
    }

    /// Hyperbolic tangent.
    #[inline]
    pub fn tanh(self) -> Self {
        self.sinh() / self.cosh()
    }

    /// Cosine.
    #[inline]
    pub fn cos(self) -> Self {
        Self::new(self.re.cos() * self.im.cosh(), -self.re.sin() * self.im.sinh())
    }

    /// Sine.
    #[inline]
    pub fn sin(self) -> Self {
        Self::new(self.re.sin() * self.im.cosh(), self.re.cos() * self.im.sinh())
    }

    /// Cotangent `cos z / sin z`.
    #[inline]
    pub fn cot(self) -> Self {
        self.cos() / self.sin()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl Add for Complex {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Neg for Complex {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Self::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Self::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn field_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!(close(a / b * b, a));
        assert!(close(a * a.recip(), Complex::ONE));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn mixed_real_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        assert_eq!(a + 1.0, Complex::new(2.0, 2.0));
        assert_eq!(a - 1.0, Complex::new(0.0, 2.0));
        assert_eq!(a * 2.0, Complex::new(2.0, 4.0));
        assert_eq!(2.0 * a, Complex::new(2.0, 4.0));
        assert_eq!(a / 2.0, Complex::new(0.5, 1.0));
        assert_eq!(1.0 + a, Complex::new(2.0, 2.0));
        assert_eq!(Complex::from(3.0), Complex::new(3.0, 0.0));
    }

    #[test]
    fn polar_and_magnitude() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < EPS);
        assert!((z.im - 2.0).abs() < EPS);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert_eq!(z.conj().im, -z.im);
        assert!((z.norm_sqr() - 4.0).abs() < EPS);
    }

    #[test]
    fn exp_ln_sqrt() {
        let z = Complex::new(0.3, -0.7);
        assert!(close(z.exp().ln(), z));
        assert!(close(z.sqrt() * z.sqrt(), z));
        // e^{jπ} = -1
        let euler = (Complex::J * std::f64::consts::PI).exp();
        assert!(close(euler, Complex::new(-1.0, 0.0)));
        // Principal square root of -1 is +j.
        assert!(close(Complex::new(-1.0, 0.0).sqrt(), Complex::J));
        assert_eq!(Complex::ZERO.sqrt(), Complex::ZERO);
    }

    #[test]
    fn hyperbolic_identities() {
        let z = Complex::new(0.5, 1.2);
        // cosh² − sinh² = 1
        let one = z.cosh() * z.cosh() - z.sinh() * z.sinh();
        assert!(close(one, Complex::ONE));
        // tanh = sinh / cosh
        assert!(close(z.tanh(), z.sinh() / z.cosh()));
        // Real-axis consistency.
        let x = Complex::from_real(0.8);
        assert!((x.cosh().re - 0.8f64.cosh()).abs() < EPS);
        assert!((x.sinh().re - 0.8f64.sinh()).abs() < EPS);
    }

    #[test]
    fn trigonometric_identities() {
        let z = Complex::new(0.4, -0.9);
        let one = z.cos() * z.cos() + z.sin() * z.sin();
        assert!(close(one, Complex::ONE));
        assert!(close(z.cot(), z.cos() / z.sin()));
    }

    #[test]
    fn power() {
        let z = Complex::new(2.0, 0.0);
        assert!(close(z.powc(Complex::from_real(3.0)), Complex::from_real(8.0)));
    }

    #[test]
    fn sum_and_display() {
        let s: Complex = [Complex::new(1.0, 1.0), Complex::new(2.0, -3.0)].into_iter().sum();
        assert_eq!(s, Complex::new(3.0, -2.0));
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2j");
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2j");
    }

    #[test]
    fn finiteness() {
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex::new(0.0, f64::INFINITY).is_finite());
    }
}
