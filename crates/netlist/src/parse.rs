//! Recursive-descent parser from lexed cards to a deck AST.
//!
//! The grammar is the classic SPICE card subset: the first letter of an
//! element card selects its form, directives start with a dot. Parsing keeps
//! names and `{param}` references symbolic — resolution against scopes and
//! subcircuit parameter environments happens in [`crate::lower`].

use std::collections::{BTreeMap, HashSet};

use crate::error::{ParseError, ParseErrorKind};
use crate::lex::{lex, Card, Token};

/// Parses a number written the SPICE way: a decimal mantissa with optional
/// exponent, then an optional SI suffix (`f p n u m k meg g t`,
/// case-insensitive, `meg` checked before `m`), then optional unit letters
/// which are ignored (`10k`, `1.5pF`, `2meg`, `0.1nH`, `3e-9`, `5ohm`).
///
/// Returns `None` when the text is not a number in this form.
pub fn parse_spice_number(text: &str) -> Option<f64> {
    let bytes = text.as_bytes();
    let mut i = 0;
    if matches!(bytes.first(), Some(b'+') | Some(b'-')) {
        i += 1;
    }
    let int_start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let int_digits = i - int_start;
    let mut frac_digits = 0;
    if bytes.get(i) == Some(&b'.') {
        i += 1;
        let s = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        frac_digits = i - s;
    }
    if int_digits == 0 && frac_digits == 0 {
        return None;
    }
    if matches!(bytes.get(i), Some(b'e') | Some(b'E')) {
        // Only consume the exponent if digits actually follow; a bare `1e`
        // leaves the `e` to the suffix scanner (where it means no scaling),
        // matching SPICE's trailing-letters-are-ignored convention.
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
            j += 1;
        }
        let digit_start = j;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j > digit_start {
            i = j;
        }
    }
    let mantissa: f64 = text[..i].parse().ok()?;
    let rest = &text[i..];
    if rest.is_empty() {
        return Some(mantissa);
    }
    if !rest.chars().all(|c| c.is_ascii_alphabetic()) {
        return None;
    }
    let lower = rest.to_ascii_lowercase();
    let mult = if lower.starts_with("meg") {
        1e6
    } else {
        match lower.as_bytes()[0] {
            b'f' => 1e-15,
            b'p' => 1e-12,
            b'n' => 1e-9,
            b'u' => 1e-6,
            b'm' => 1e-3,
            b'k' => 1e3,
            b'g' => 1e9,
            b't' => 1e12,
            // Any other letters are a unit word (`ohm`, `v`, `s`, ...).
            _ => 1.0,
        }
    };
    Some(mantissa * mult)
}

/// A numeric field of a card: either a literal or a `{param}` reference to be
/// resolved against the enclosing subcircuit's parameters at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A literal number, already scaled by its SI suffix.
    Literal(f64),
    /// A `{name}` parameter reference; the token keeps the braces and the
    /// position for diagnostics.
    Param(Token),
}

impl Value {
    /// The parameter name of a `Param` value (without braces).
    pub(crate) fn param_name(token: &Token) -> &str {
        token.text.trim_start_matches('{').trim_end_matches('}')
    }
}

/// A source excitation as written on a `V` or `I` card.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveformAst {
    /// `DC v` or a bare value.
    Dc(Value),
    /// `STEP(amplitude delay)`.
    Step(Value, Value),
    /// `RAMP(amplitude delay rise_time)`.
    Ramp(Value, Value, Value),
    /// `PULSE(amplitude delay edge_time width)`.
    Pulse(Value, Value, Value, Value),
    /// `PWL(t1 v1 t2 v2 ...)`.
    Pwl(Vec<(Value, Value)>),
}

/// The element-specific payload of a card.
#[derive(Debug, Clone, PartialEq)]
pub enum CardKind {
    /// `Rxxx plus minus value`.
    Resistor {
        /// Positive terminal node name.
        plus: Token,
        /// Negative terminal node name.
        minus: Token,
        /// Resistance in ohms.
        value: Value,
    },
    /// `Cxxx plus minus value`.
    Capacitor {
        /// Positive terminal node name.
        plus: Token,
        /// Negative terminal node name.
        minus: Token,
        /// Capacitance in farads.
        value: Value,
    },
    /// `Lxxx plus minus value`.
    Inductor {
        /// Positive terminal node name.
        plus: Token,
        /// Negative terminal node name.
        minus: Token,
        /// Inductance in henries.
        value: Value,
    },
    /// `Kxxx Lfirst Lsecond coupling`.
    Mutual {
        /// Name of the first coupled inductor.
        first: Token,
        /// Name of the second coupled inductor.
        second: Token,
        /// Coupling coefficient `k`.
        value: Value,
    },
    /// `Vxxx plus minus waveform`.
    Voltage {
        /// Positive terminal node name.
        plus: Token,
        /// Negative terminal node name.
        minus: Token,
        /// The excitation.
        waveform: WaveformAst,
    },
    /// `Ixxx plus minus waveform` (amplitudes in amperes).
    Current {
        /// Terminal the current is injected into.
        plus: Token,
        /// Terminal the current returns from.
        minus: Token,
        /// The excitation.
        waveform: WaveformAst,
    },
    /// `Xxxx n1 ... nk subckt [p=v ...]`.
    Instance {
        /// Nodes bound to the subcircuit's ports, in port order.
        nodes: Vec<Token>,
        /// Name of the instantiated subcircuit.
        subckt: Token,
        /// Parameter overrides in written order.
        overrides: Vec<(Token, Value)>,
    },
}

/// One parsed element card.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementCard {
    /// The element's name token (e.g. `R1`), carrying its position.
    pub name: Token,
    /// The element-specific fields.
    pub kind: CardKind,
    /// The card text, clipped, for diagnostics raised during lowering.
    pub text: String,
}

/// A `.subckt` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Subckt {
    /// The subcircuit's name.
    pub name: String,
    /// Declared port names in order.
    pub ports: Vec<String>,
    /// Declared parameters with their default values, in order.
    pub params: Vec<(String, f64)>,
    /// Local `.nodes` declarations inside the definition.
    pub declared_nodes: Vec<Token>,
    /// The body cards in order.
    pub cards: Vec<ElementCard>,
}

/// A parsed deck: top-level cards plus the subcircuit definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Deck {
    /// Top-level element cards in order.
    pub cards: Vec<ElementCard>,
    /// `.nodes` declarations, in order, establishing node numbering ahead of
    /// first use (the writer emits one so round-trips preserve numbering).
    pub declared_nodes: Vec<Token>,
    /// Subcircuit definitions by name.
    pub subckts: BTreeMap<String, Subckt>,
}

fn err(tok: &Token, card: &Card, kind: ParseErrorKind) -> ParseError {
    ParseError::at_line(tok.line, tok.column, &card.text, kind)
}

/// The token at `idx`, or a `MissingToken` diagnostic pointing just past the
/// card's last token.
fn expect<'a>(card: &'a Card, idx: usize, expected: &'static str) -> Result<&'a Token, ParseError> {
    card.tokens.get(idx).ok_or_else(|| {
        let last = card.tokens.last().expect("cards are never empty");
        ParseError::at_line(
            last.line,
            last.column + last.text.chars().count(),
            &card.text,
            ParseErrorKind::MissingToken { expected },
        )
    })
}

fn no_extra(card: &Card, idx: usize) -> Result<(), ParseError> {
    match card.tokens.get(idx) {
        None => Ok(()),
        Some(extra) => {
            Err(err(extra, card, ParseErrorKind::ExtraToken { token: extra.text.clone() }))
        }
    }
}

fn parse_value(tok: &Token, card: &Card) -> Result<Value, ParseError> {
    if tok.text.starts_with('{') && tok.text.ends_with('}') && tok.text.chars().count() > 2 {
        return Ok(Value::Param(tok.clone()));
    }
    match parse_spice_number(&tok.text) {
        Some(v) => Ok(Value::Literal(v)),
        None => Err(err(tok, card, ParseErrorKind::BadNumber { token: tok.text.clone() })),
    }
}

fn parse_waveform(card: &Card, idx: usize) -> Result<(WaveformAst, usize), ParseError> {
    let first = expect(card, idx, "a source value or waveform")?;
    let keyword = first.text.to_ascii_lowercase();
    let value_at = |i: usize, what: &'static str| -> Result<Value, ParseError> {
        parse_value(expect(card, i, what)?, card)
    };
    match keyword.as_str() {
        "dc" => Ok((WaveformAst::Dc(value_at(idx + 1, "a DC level")?), idx + 2)),
        "step" => Ok((
            WaveformAst::Step(
                value_at(idx + 1, "a step amplitude")?,
                value_at(idx + 2, "a step delay")?,
            ),
            idx + 3,
        )),
        "ramp" => Ok((
            WaveformAst::Ramp(
                value_at(idx + 1, "a ramp amplitude")?,
                value_at(idx + 2, "a ramp delay")?,
                value_at(idx + 3, "a ramp rise time")?,
            ),
            idx + 4,
        )),
        "pulse" => Ok((
            WaveformAst::Pulse(
                value_at(idx + 1, "a pulse amplitude")?,
                value_at(idx + 2, "a pulse delay")?,
                value_at(idx + 3, "a pulse edge time")?,
                value_at(idx + 4, "a pulse width")?,
            ),
            idx + 5,
        )),
        "pwl" => {
            let mut points = Vec::new();
            let mut i = idx + 1;
            // PWL consumes the rest of the card, in (time, value) pairs.
            while i < card.tokens.len() {
                let t = value_at(i, "a PWL corner time")?;
                let v = value_at(i + 1, "a PWL value to pair with the last time")?;
                points.push((t, v));
                i += 2;
            }
            if points.is_empty() {
                let _ = value_at(idx + 1, "a PWL corner time")?;
            }
            Ok((WaveformAst::Pwl(points), i))
        }
        _ => {
            // A bare number is DC shorthand; anything else is not a waveform.
            if first.text.starts_with('{') || parse_spice_number(&first.text).is_some() {
                Ok((WaveformAst::Dc(parse_value(first, card)?), idx + 1))
            } else {
                Err(err(first, card, ParseErrorKind::UnknownWaveform { token: first.text.clone() }))
            }
        }
    }
}

/// Is this node name one of the ground spellings (`0`, `gnd`, any case)?
pub(crate) fn is_ground(name: &str) -> bool {
    name == "0" || name.eq_ignore_ascii_case("gnd")
}

/// The two halves of an instance-style tail: positional tokens, then
/// `name=value` overrides.
type PlainAndOverrides = (Vec<Token>, Vec<(Token, Value)>);

/// Splits instance-style tails (`n1 n2 ... name p=v q=w`) into plain tokens
/// and `name=value` overrides. Once the first `=` appears, only further
/// assignments may follow.
fn split_plain_and_overrides(card: &Card, start: usize) -> Result<PlainAndOverrides, ParseError> {
    let mut plain: Vec<Token> = Vec::new();
    let mut overrides: Vec<(Token, Value)> = Vec::new();
    let mut i = start;
    while i < card.tokens.len() {
        let tok = &card.tokens[i];
        if tok.text == "=" {
            return Err(err(tok, card, ParseErrorKind::BadParameter { token: "=".into() }));
        }
        if card.tokens.get(i + 1).map(|t| t.text.as_str()) == Some("=") {
            let value_tok = expect(card, i + 2, "a parameter value")?;
            if value_tok.text == "=" {
                return Err(err(
                    value_tok,
                    card,
                    ParseErrorKind::BadParameter { token: "=".into() },
                ));
            }
            let value = parse_value(value_tok, card)?;
            if overrides.iter().any(|(name, _)| name.text == tok.text) {
                return Err(err(
                    tok,
                    card,
                    ParseErrorKind::BadParameter { token: tok.text.clone() },
                ));
            }
            overrides.push((tok.clone(), value));
            i += 3;
        } else if overrides.is_empty() {
            plain.push(tok.clone());
            i += 1;
        } else {
            return Err(err(tok, card, ParseErrorKind::BadParameter { token: tok.text.clone() }));
        }
    }
    Ok((plain, overrides))
}

fn parse_element_card(card: &Card, names: &mut HashSet<String>) -> Result<ElementCard, ParseError> {
    let leader = &card.tokens[0];
    if !names.insert(leader.text.clone()) {
        return Err(err(
            leader,
            card,
            ParseErrorKind::DuplicateElement { name: leader.text.clone() },
        ));
    }
    let letter = leader.text.chars().next().expect("tokens are never empty").to_ascii_uppercase();
    let kind = match letter {
        'R' | 'C' | 'L' => {
            let plus = expect(card, 1, "a node name")?.clone();
            let minus = expect(card, 2, "a node name")?.clone();
            let value = parse_value(expect(card, 3, "a value")?, card)?;
            no_extra(card, 4)?;
            match letter {
                'R' => CardKind::Resistor { plus, minus, value },
                'C' => CardKind::Capacitor { plus, minus, value },
                _ => CardKind::Inductor { plus, minus, value },
            }
        }
        'K' => {
            let first = expect(card, 1, "an inductor name")?.clone();
            let second = expect(card, 2, "an inductor name")?.clone();
            let value = parse_value(expect(card, 3, "a coupling coefficient")?, card)?;
            no_extra(card, 4)?;
            CardKind::Mutual { first, second, value }
        }
        'V' | 'I' => {
            let plus = expect(card, 1, "a node name")?.clone();
            let minus = expect(card, 2, "a node name")?.clone();
            let (waveform, next) = parse_waveform(card, 3)?;
            no_extra(card, next)?;
            if letter == 'V' {
                CardKind::Voltage { plus, minus, waveform }
            } else {
                CardKind::Current { plus, minus, waveform }
            }
        }
        'X' => {
            let (mut plain, overrides) = split_plain_and_overrides(card, 1)?;
            let Some(subckt) = plain.pop() else {
                return Err(expect(card, card.tokens.len(), "a subcircuit name")
                    .expect_err("index is past the end"));
            };
            CardKind::Instance { nodes: plain, subckt, overrides }
        }
        _ => {
            return Err(err(
                leader,
                card,
                ParseErrorKind::UnknownCard { leader: leader.text.clone() },
            ));
        }
    };
    Ok(ElementCard { name: leader.clone(), kind, text: card.text.clone() })
}

/// Parses `.nodes n1 n2 ...`, appending to `declared` with duplicate and
/// ground checks (`seen` spans all `.nodes` cards of the scope).
fn parse_nodes_directive(
    card: &Card,
    declared: &mut Vec<Token>,
    seen: &mut HashSet<String>,
) -> Result<(), ParseError> {
    let _ = expect(card, 1, "a node name")?;
    for tok in &card.tokens[1..] {
        if is_ground(&tok.text) {
            return Err(err(tok, card, ParseErrorKind::NodesListsGround));
        }
        if !seen.insert(tok.text.clone()) {
            return Err(err(tok, card, ParseErrorKind::DuplicateNode { name: tok.text.clone() }));
        }
        declared.push(tok.clone());
    }
    Ok(())
}

/// State for an open `.subckt` definition while its body is parsed.
struct OpenSubckt {
    subckt: Subckt,
    header: Token,
    header_text: String,
    names: HashSet<String>,
    declared: HashSet<String>,
}

/// Parses deck text into a [`Deck`] AST.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, in card order.
pub fn parse_deck(text: &str) -> Result<Deck, ParseError> {
    let cards = lex(text)?;
    if cards.is_empty() {
        return Err(ParseError::at_line(1, 1, "", ParseErrorKind::EmptyDeck));
    }
    let mut deck = Deck { cards: Vec::new(), declared_nodes: Vec::new(), subckts: BTreeMap::new() };
    let mut top_names: HashSet<String> = HashSet::new();
    let mut top_declared: HashSet<String> = HashSet::new();
    let mut open: Option<OpenSubckt> = None;
    let mut end_seen = false;

    for card in &cards {
        let leader = &card.tokens[0];
        if end_seen {
            return Err(err(leader, card, ParseErrorKind::CardAfterEnd));
        }
        if leader.text.starts_with('.') {
            match leader.text.to_ascii_lowercase().as_str() {
                ".subckt" => {
                    if open.is_some() {
                        return Err(err(leader, card, ParseErrorKind::NestedSubckt));
                    }
                    let name_tok = expect(card, 1, "a subcircuit name")?;
                    if deck.subckts.contains_key(&name_tok.text) {
                        return Err(err(
                            name_tok,
                            card,
                            ParseErrorKind::DuplicateSubckt { name: name_tok.text.clone() },
                        ));
                    }
                    let (ports, defaults) = split_plain_and_overrides(card, 2)?;
                    let mut port_names = HashSet::new();
                    for port in &ports {
                        if is_ground(&port.text) {
                            return Err(err(port, card, ParseErrorKind::NodesListsGround));
                        }
                        if !port_names.insert(port.text.clone()) {
                            return Err(err(
                                port,
                                card,
                                ParseErrorKind::DuplicateNode { name: port.text.clone() },
                            ));
                        }
                    }
                    let mut params = Vec::new();
                    for (name, value) in defaults {
                        match value {
                            Value::Literal(v) => params.push((name.text.clone(), v)),
                            // Defaults must be literals — there is no outer
                            // environment to resolve a `{param}` against.
                            Value::Param(tok) => {
                                return Err(err(
                                    &tok,
                                    card,
                                    ParseErrorKind::BadParameter { token: tok.text.clone() },
                                ));
                            }
                        }
                    }
                    open = Some(OpenSubckt {
                        subckt: Subckt {
                            name: name_tok.text.clone(),
                            ports: ports.into_iter().map(|t| t.text).collect(),
                            params,
                            declared_nodes: Vec::new(),
                            cards: Vec::new(),
                        },
                        header: name_tok.clone(),
                        header_text: card.text.clone(),
                        names: HashSet::new(),
                        declared: HashSet::new(),
                    });
                }
                ".ends" => {
                    let Some(state) = open.take() else {
                        return Err(err(leader, card, ParseErrorKind::EndsWithoutSubckt));
                    };
                    if let Some(name_tok) = card.tokens.get(1) {
                        if name_tok.text != state.subckt.name {
                            return Err(err(
                                name_tok,
                                card,
                                ParseErrorKind::MismatchedEnds {
                                    expected: state.subckt.name.clone(),
                                    found: name_tok.text.clone(),
                                },
                            ));
                        }
                        no_extra(card, 2)?;
                    }
                    deck.subckts.insert(state.subckt.name.clone(), state.subckt);
                }
                ".nodes" => match &mut open {
                    Some(state) => parse_nodes_directive(
                        card,
                        &mut state.subckt.declared_nodes,
                        &mut state.declared,
                    )?,
                    None => {
                        parse_nodes_directive(card, &mut deck.declared_nodes, &mut top_declared)?
                    }
                },
                ".end" => {
                    if let Some(state) = &open {
                        return Err(err(
                            leader,
                            card,
                            ParseErrorKind::UnclosedSubckt { name: state.subckt.name.clone() },
                        ));
                    }
                    no_extra(card, 1)?;
                    end_seen = true;
                }
                other => {
                    return Err(err(
                        leader,
                        card,
                        ParseErrorKind::UnknownDirective { name: other.to_owned() },
                    ));
                }
            }
            continue;
        }
        match &mut open {
            Some(state) => {
                let parsed = parse_element_card(card, &mut state.names)?;
                state.subckt.cards.push(parsed);
            }
            None => {
                let parsed = parse_element_card(card, &mut top_names)?;
                deck.cards.push(parsed);
            }
        }
    }
    if let Some(state) = open {
        return Err(ParseError::at_line(
            state.header.line,
            state.header.column,
            &state.header_text,
            ParseErrorKind::UnclosedSubckt { name: state.subckt.name },
        ));
    }
    Ok(deck)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spice_numbers() {
        let cases = [
            ("0", 0.0),
            ("42", 42.0),
            ("-3.5", -3.5),
            ("+2", 2.0),
            (".5", 0.5),
            ("1.", 1.0),
            ("2e3", 2000.0),
            ("2E-3", 0.002),
            ("1k", 1e3),
            ("1K", 1e3),
            ("10f", 10e-15),
            ("1p", 1e-12),
            ("2.5n", 2.5e-9),
            ("3u", 3e-6),
            ("4m", 4e-3),
            ("5meg", 5e6),
            ("5MEG", 5e6),
            ("6g", 6e9),
            ("7t", 7e12),
            ("1pF", 1e-12),
            ("2nH", 2e-9),
            ("5ohm", 5.0),
            ("1e", 1.0),
            ("3v", 3.0),
            ("1e-3k", 1.0),
        ];
        for (text, expected) in cases {
            let got = parse_spice_number(text).unwrap_or_else(|| panic!("{text} should parse"));
            assert!(
                (got - expected).abs() <= expected.abs() * 1e-15,
                "{text}: got {got}, expected {expected}"
            );
        }
        for text in ["", "x", "--1", "1..5", "1.2.3", "0x10", "1e+", "3 4", "{r}", "-"] {
            assert!(parse_spice_number(text).is_none(), "{text:?} must not parse");
        }
    }

    #[test]
    fn parses_element_cards() {
        let deck = parse_deck(
            "V1 in 0 STEP(1 0)\nRd in a 50\nL1 a b 1n\nL2 c 0 1n\nK1 L1 L2 0.3\nC1 b 0 1pF\nI1 0 b DC 1m\n.end\n",
        )
        .unwrap();
        assert_eq!(deck.cards.len(), 7);
        assert!(matches!(deck.cards[0].kind, CardKind::Voltage { .. }));
        assert!(matches!(
            &deck.cards[4].kind,
            CardKind::Mutual { first, second, value: Value::Literal(v) }
                if first.text == "L1" && second.text == "L2" && *v == 0.3
        ));
        assert!(matches!(
            &deck.cards[6].kind,
            CardKind::Current { waveform: WaveformAst::Dc(Value::Literal(v)), .. }
                if *v == 1e-3
        ));
    }

    #[test]
    fn parses_subckt_with_params_and_instances() {
        let deck = parse_deck(
            ".subckt cell w b r=100 c=1p\nRa w s {r}\nCc s b {c}\n.ends cell\nX1 n1 n2 cell\nX2 n1 n3 cell r=200\n",
        )
        .unwrap();
        let cell = deck.subckts.get("cell").unwrap();
        assert_eq!(cell.ports, vec!["w", "b"]);
        assert_eq!(cell.params, vec![("r".to_owned(), 100.0), ("c".to_owned(), 1e-12)]);
        assert_eq!(cell.cards.len(), 2);
        assert!(matches!(
            &deck.cards[1].kind,
            CardKind::Instance { nodes, subckt, overrides }
                if nodes.len() == 2 && subckt.text == "cell" && overrides.len() == 1
        ));
    }

    #[test]
    fn waveform_forms() {
        let deck = parse_deck(
            "V1 a 0 2.5\nV2 a 0 DC -1\nV3 b 0 RAMP(1 0 10p)\nV4 c 0 PULSE(1 0 10p 2n)\nV5 d 0 PWL(0 0 1n 1 2n 0.5)\n",
        )
        .unwrap();
        let wf = |i: usize| match &deck.cards[i].kind {
            CardKind::Voltage { waveform, .. } => waveform.clone(),
            _ => unreachable!(),
        };
        assert!(matches!(wf(0), WaveformAst::Dc(Value::Literal(v)) if v == 2.5));
        assert!(matches!(wf(1), WaveformAst::Dc(Value::Literal(v)) if v == -1.0));
        assert!(matches!(wf(2), WaveformAst::Ramp(..)));
        assert!(matches!(wf(3), WaveformAst::Pulse(..)));
        assert!(matches!(wf(4), WaveformAst::Pwl(points) if points.len() == 3));
    }

    #[test]
    fn error_positions_point_at_the_offending_token() {
        let err = parse_deck("R1 in out 50\nC1 out 0 abc\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 10);
        assert!(matches!(err.kind(), ParseErrorKind::BadNumber { token } if token == "abc"));

        let err = parse_deck("R1 in out\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(
            matches!(err.kind(), ParseErrorKind::MissingToken { expected } if expected == &"a value")
        );

        let err = parse_deck("R1 in out 50 60\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::ExtraToken { token } if token == "60"));

        let err = parse_deck("Q1 a b c\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::UnknownCard { leader } if leader == "Q1"));

        let err = parse_deck("R1 a 0 1\nR1 b 0 2\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(matches!(err.kind(), ParseErrorKind::DuplicateElement { name } if name == "R1"));
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(
            parse_deck("* only a comment\n").unwrap_err().kind(),
            ParseErrorKind::EmptyDeck
        ));
        assert!(matches!(
            parse_deck(".subckt cell a\nR1 a 0 1\n").unwrap_err().kind(),
            ParseErrorKind::UnclosedSubckt { name } if name == "cell"
        ));
        assert!(matches!(
            parse_deck("R1 a 0 1\n.ends\n").unwrap_err().kind(),
            ParseErrorKind::EndsWithoutSubckt
        ));
        assert!(matches!(
            parse_deck(".subckt a p\n.subckt b q\n.ends\n.ends\n").unwrap_err().kind(),
            ParseErrorKind::NestedSubckt
        ));
        assert!(matches!(
            parse_deck(".subckt cell a\nR1 a 0 1\n.ends other\nR2 b 0 1\n").unwrap_err().kind(),
            ParseErrorKind::MismatchedEnds { expected, found }
                if expected == "cell" && found == "other"
        ));
        assert!(matches!(
            parse_deck("R1 a 0 1\n.end\nR2 b 0 1\n").unwrap_err().kind(),
            ParseErrorKind::CardAfterEnd
        ));
        assert!(matches!(
            parse_deck("R1 a 0 1\n.options reltol=1e-4\n").unwrap_err().kind(),
            ParseErrorKind::UnknownDirective { name } if name == ".options"
        ));
        assert!(matches!(
            parse_deck(".nodes a gnd\nR1 a 0 1\n").unwrap_err().kind(),
            ParseErrorKind::NodesListsGround
        ));
        assert!(matches!(
            parse_deck(".nodes a a\nR1 a 0 1\n").unwrap_err().kind(),
            ParseErrorKind::DuplicateNode { name } if name == "a"
        ));
    }

    #[test]
    fn instance_tail_errors() {
        assert!(matches!(
            parse_deck("X1 a b cell w=\n").unwrap_err().kind(),
            ParseErrorKind::MissingToken { expected } if expected == &"a parameter value"
        ));
        assert!(matches!(
            parse_deck("X1 a b cell w=1 c\n").unwrap_err().kind(),
            ParseErrorKind::BadParameter { token } if token == "c"
        ));
        assert!(matches!(
            parse_deck("X1 = b cell\n").unwrap_err().kind(),
            ParseErrorKind::BadParameter { token } if token == "="
        ));
        assert!(matches!(
            parse_deck("X1 a b cell w=1 w=2\n").unwrap_err().kind(),
            ParseErrorKind::BadParameter { token } if token == "w"
        ));
        assert!(matches!(
            parse_deck("X1\n").unwrap_err().kind(),
            ParseErrorKind::MissingToken { expected } if expected == &"a subcircuit name"
        ));
        assert!(matches!(
            parse_deck(".subckt cell a a\n.ends\n").unwrap_err().kind(),
            ParseErrorKind::DuplicateNode { name } if name == "a"
        ));
        assert!(matches!(
            parse_deck(".subckt cell p r={x}\n.ends\n").unwrap_err().kind(),
            ParseErrorKind::BadParameter { token } if token == "{x}"
        ));
    }

    #[test]
    fn source_waveform_errors() {
        assert!(matches!(
            parse_deck("V1 a 0 SIN(0 1 1g)\n").unwrap_err().kind(),
            ParseErrorKind::UnknownWaveform { token } if token == "SIN"
        ));
        assert!(matches!(
            parse_deck("V1 a 0 PWL(0 0 1n)\n").unwrap_err().kind(),
            ParseErrorKind::MissingToken { expected }
                if expected == &"a PWL value to pair with the last time"
        ));
        assert!(matches!(
            parse_deck("V1 a 0 PWL\n").unwrap_err().kind(),
            ParseErrorKind::MissingToken { expected } if expected == &"a PWL corner time"
        ));
        assert!(matches!(
            parse_deck("V1 a 0 STEP(1)\n").unwrap_err().kind(),
            ParseErrorKind::MissingToken { expected } if expected == &"a step delay"
        ));
    }
}
