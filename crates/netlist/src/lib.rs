//! SPICE-subset netlist frontend for the `rlckit` workspace.
//!
//! Everything else in the reproduction builds circuits programmatically;
//! this crate makes the system *ingest-complete*: externally authored decks
//! lower to the same [`rlckit_circuit::Circuit`] the builders produce, and
//! any circuit can be unparsed back to a deck.
//!
//! # The deck subset
//!
//! * **Elements** — `R`/`C`/`L` two-terminal cards (`R1 in out 50`),
//!   `K` mutual-inductance cards naming two `L` elements
//!   (`K1 L1 L2 0.4`), `V`/`I` sources with the waveforms of
//!   [`rlckit_circuit::SourceWaveform`]: a bare DC value, `DC v`,
//!   `STEP(a d)`, `RAMP(a d tr)`, `PULSE(a d te w)`, `PWL(t1 v1 ...)`.
//! * **Numbers** — decimal with optional exponent and SPICE SI suffix
//!   (`10k`, `1.5pF`, `2meg`, case-insensitive; trailing unit letters are
//!   ignored).
//! * **Hierarchy** — `.subckt name ports... [param=default...]` / `.ends`,
//!   instantiated with `Xname nodes... subckt [param=value...]`; `{param}`
//!   references in body values resolve against the instance's environment.
//! * **Structure** — `*` comment lines, `;` end-of-line comments, `+`
//!   continuation lines, `.nodes` to pin node numbering (what the writer
//!   emits so round-trips preserve identifiers), `.end`.
//! * **Ground** — node `0` or `gnd` (any case).
//!
//! # Diagnostics
//!
//! Malformed input never panics: every failure is a [`ParseError`] carrying
//! the 1-based line/column, the offending card and a one-line hint, with a
//! typed [`ParseErrorKind`] for programmatic matching.
//!
//! # Example
//!
//! ```
//! use rlckit_netlist::parse_circuit;
//!
//! # fn main() -> Result<(), rlckit_netlist::ParseError> {
//! let parsed = parse_circuit(
//!     "* driven RC divider\n\
//!      V1 in 0 STEP(1 0)\n\
//!      R1 in out 1k\n\
//!      C1 out 0 1pF\n\
//!      .end\n",
//! )?;
//! let out = parsed.node("out").expect("the deck names this node");
//! // Evaluate sources after the step has fired: at t = 0 a STEP is still 0 V.
//! let t = rlckit_units::Time::from_seconds(1.0);
//! let op = rlckit_circuit::dc::operating_point_at(&parsed.circuit, t).unwrap();
//! assert!((op.node_voltage(out).volts() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! The [`sram`] module generates SRAM bitline/wordline array decks — the
//! crate's scaling workload — and [`write::circuit_to_deck`] unparses any
//! circuit for round-trip testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod lex;
pub mod lower;
pub mod parse;
pub mod sram;
pub mod write;

pub use error::{ParseError, ParseErrorKind};
pub use lower::{lower_deck, parse_circuit, ParsedCircuit, MAX_SUBCKT_DEPTH};
pub use parse::{parse_deck, parse_spice_number, Deck};
pub use sram::{measure_sram_read, SramArraySpec, SramNet, SramReadReport};
pub use write::circuit_to_deck;
