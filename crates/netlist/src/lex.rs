//! Logical-line assembly and tokenization of a SPICE-like deck.
//!
//! The lexer turns raw deck text into [`Card`]s: one card per logical line,
//! after stripping `*` comment lines and `;` end-of-line comments and joining
//! `+` continuation lines onto the card they continue. Every token remembers
//! the physical line and column it came from, so parse errors can point at
//! the exact spot in the original text even when a card spans several lines.

use crate::error::{ParseError, ParseErrorKind};

/// A single token of a card, with its position in the original deck text.
///
/// Lines and columns are 1-based and refer to the *physical* line the token
/// appeared on, which for continuation lines differs from the card's first
/// line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text, exactly as written (no case folding).
    pub text: String,
    /// 1-based physical line number.
    pub line: usize,
    /// 1-based column of the token's first character.
    pub column: usize,
}

/// One logical card: a non-comment line plus any `+` continuations.
#[derive(Debug, Clone)]
pub struct Card {
    /// The card's tokens in order. Never empty.
    pub tokens: Vec<Token>,
    /// 1-based physical line number of the card's first line.
    pub line: usize,
    /// The card text reassembled from its tokens, used in diagnostics.
    pub text: String,
}

impl Card {
    fn from_tokens(tokens: Vec<Token>) -> Self {
        let line = tokens[0].line;
        let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        Self { line, text: crate::error::clip_card_text(&words.join(" ")), tokens }
    }
}

/// Characters that split tokens and are discarded (SPICE treats parentheses
/// and commas as whitespace, so `PULSE(1 0 10p 2n)` and `PULSE 1,0,10p,2n`
/// tokenize identically).
fn is_soft_separator(c: char) -> bool {
    c.is_whitespace() || c == '(' || c == ')' || c == ','
}

/// Splits one physical line into tokens. `=` separates tokens and is kept as
/// a token of its own so `w=2` and `w = 2` parse the same way.
fn tokenize_line(line: &str, line_no: usize, out: &mut Vec<Token>) {
    fn flush(
        out: &mut Vec<Token>,
        line: &str,
        line_no: usize,
        start: &mut Option<usize>,
        end: usize,
        start_column: usize,
    ) {
        if let Some(s) = start.take() {
            out.push(Token { text: line[s..end].to_owned(), line: line_no, column: start_column });
        }
    }
    let mut start: Option<usize> = None;
    // Column bookkeeping counts characters, not bytes, so multi-byte input
    // (which only ever appears in malformed decks) still gets sane columns.
    let mut column = 0usize;
    let mut start_column = 0usize;
    for (idx, c) in line.char_indices() {
        column += 1;
        if c == ';' {
            // End-of-line comment: drop the rest of the physical line.
            flush(out, line, line_no, &mut start, idx, start_column);
            return;
        }
        if is_soft_separator(c) {
            flush(out, line, line_no, &mut start, idx, start_column);
        } else if c == '=' {
            flush(out, line, line_no, &mut start, idx, start_column);
            out.push(Token { text: "=".to_owned(), line: line_no, column });
        } else if start.is_none() {
            start = Some(idx);
            start_column = column;
        }
    }
    flush(out, line, line_no, &mut start, line.len(), start_column);
}

/// Assembles the deck text into logical cards.
///
/// * Lines whose first non-blank character is `*` are comments and are
///   skipped entirely.
/// * A line whose first non-blank character is `+` continues the most recent
///   card; its remaining tokens are appended to that card.
/// * Everything after a `;` on any line is an end-of-line comment.
/// * Blank lines are ignored.
///
/// # Errors
///
/// Returns [`ParseErrorKind::DanglingContinuation`] if a `+` line appears
/// before any card.
pub fn lex(text: &str) -> Result<Vec<Card>, ParseError> {
    let mut cards: Vec<Vec<Token>> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            let Some(last) = cards.last_mut() else {
                return Err(ParseError::at_line(
                    line_no,
                    1 + (line.len() - trimmed.len()),
                    line.trim(),
                    ParseErrorKind::DanglingContinuation,
                ));
            };
            // Columns on the continuation line still count from the physical
            // line start, so point-at-the-token diagnostics stay accurate.
            let offset = line.len() - rest.len();
            let mut tokens = Vec::new();
            tokenize_line(rest, line_no, &mut tokens);
            for mut t in tokens {
                t.column += offset;
                last.push(t);
            }
            continue;
        }
        let mut tokens = Vec::new();
        tokenize_line(line, line_no, &mut tokens);
        if !tokens.is_empty() {
            cards.push(tokens);
        }
    }
    Ok(cards.into_iter().filter(|t| !t.is_empty()).map(Card::from_tokens).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_tokens_with_positions() {
        let cards = lex("R1 in out 50\nC1 out 0 1p\n").unwrap();
        assert_eq!(cards.len(), 2);
        assert_eq!(cards[0].tokens.len(), 4);
        assert_eq!(cards[0].tokens[0].text, "R1");
        assert_eq!(cards[0].tokens[0].line, 1);
        assert_eq!(cards[0].tokens[0].column, 1);
        assert_eq!(cards[0].tokens[2].text, "out");
        assert_eq!(cards[0].tokens[2].column, 7);
        assert_eq!(cards[1].line, 2);
        assert_eq!(cards[1].text, "C1 out 0 1p");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let deck = "* a title comment\n\n   * indented comment\nR1 a 0 1 ; trailing words\n";
        let cards = lex(deck).unwrap();
        assert_eq!(cards.len(), 1);
        assert_eq!(cards[0].tokens.len(), 4);
        assert_eq!(cards[0].line, 4);
    }

    #[test]
    fn continuations_join_previous_card() {
        let deck = "V1 in 0\n+ PULSE 1 0\n+ 10p 2n\n";
        let cards = lex(deck).unwrap();
        assert_eq!(cards.len(), 1);
        let words: Vec<&str> = cards[0].tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["V1", "in", "0", "PULSE", "1", "0", "10p", "2n"]);
        // Tokens keep their own physical line numbers.
        assert_eq!(cards[0].tokens[3].line, 2);
        assert_eq!(cards[0].tokens[6].line, 3);
        assert_eq!(cards[0].line, 1);
    }

    #[test]
    fn dangling_continuation_is_an_error() {
        let err = lex("+ R1 a 0 1\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(matches!(err.kind(), ParseErrorKind::DanglingContinuation));
    }

    #[test]
    fn comment_between_card_and_continuation() {
        // A comment line does not break the continuation chain (matching
        // common SPICE dialects).
        let deck = "R1 a b\n* interlude\n+ 50\n";
        let cards = lex(deck).unwrap();
        assert_eq!(cards.len(), 1);
        assert_eq!(cards[0].tokens.len(), 4);
    }

    #[test]
    fn parens_commas_and_equals() {
        let cards = lex("V1 in 0 PULSE(1,0,10p,2n)\nX1 a b cell w=2\n").unwrap();
        let words: Vec<&str> = cards[0].tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["V1", "in", "0", "PULSE", "1", "0", "10p", "2n"]);
        let words: Vec<&str> = cards[1].tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, ["X1", "a", "b", "cell", "w", "=", "2"]);
    }

    #[test]
    fn crlf_line_endings() {
        let cards = lex("R1 a 0 1\r\nC1 a 0 1p\r\n").unwrap();
        assert_eq!(cards.len(), 2);
        assert_eq!(cards[0].tokens[3].text, "1");
    }
}
