//! SRAM bitline/wordline RC array workload.
//!
//! A `rows × cols` memory array read, modeled at the RC level: a step-driven
//! *wordline* per row (the selected row driven through the driver resistance,
//! unselected rows held at ground), a *bitline* per column, and a linearised
//! cell at each crossing — selected-row cells conduct through their access
//! device onto the bitline, unselected cells only load their wordline
//! capacitively and leak to ground. All bitlines join through a column mux
//! (low resistance on the selected column, high on the rest) into a single
//! sense node, whose 50% crossing is the read delay.
//!
//! The generator emits the array as a *deck* — subcircuits with parameters,
//! one `X` instance per cell — and [`SramArraySpec::build_circuit`] constructs
//! the identical circuit programmatically, mirroring the deck's node and
//! element creation order exactly. The two paths producing `==` circuits is
//! the differential guarantee the test suite locks down.
//!
//! The column-mux joins make the conductance pattern genuinely non-tree-like
//! (every column is a loop through the shared sense node), and at 64×64 the
//! MNA system passes 10⁴ unknowns — the sparse-backend scaling workload of
//! this crate's `sram_scaling` bench.

use std::fmt::Write as _;

use rlckit_circuit::transient::{run_transient, TransientOptions};
use rlckit_circuit::{
    Circuit, CircuitError, NodeId, ResolvedBackend, SolverBackend, SourceId, SourceWaveform,
};
use rlckit_units::{Capacitance, Resistance, Time, Voltage};

use crate::lower::parse_circuit;

/// Description of an SRAM array read at the linear RC level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramArraySpec {
    /// Number of wordlines (rows), ≥ 1.
    pub rows: usize,
    /// Number of bitlines (columns), ≥ 1.
    pub cols: usize,
    /// Index of the row whose wordline is driven (the rest are held low).
    pub selected_row: usize,
    /// Index of the column whose mux is on (the rest see the off resistance).
    pub selected_col: usize,
    /// Supply voltage of the wordline step.
    pub supply: Voltage,
    /// Wordline driver (and holder) resistance.
    pub driver_resistance: Resistance,
    /// Wordline resistance per cell pitch.
    pub wordline_resistance: Resistance,
    /// Wordline wire capacitance per cell pitch.
    pub wordline_capacitance: Capacitance,
    /// Bitline resistance per cell pitch.
    pub bitline_resistance: Resistance,
    /// Bitline wire capacitance per cell pitch.
    pub bitline_capacitance: Capacitance,
    /// On-resistance of a selected cell's access device (wordline → cell).
    pub access_resistance: Resistance,
    /// Resistance from a selected cell onto its bitline.
    pub pass_resistance: Resistance,
    /// Internal storage-node capacitance of every cell.
    pub cell_capacitance: Capacitance,
    /// Gate capacitance an unselected cell presents to its wordline.
    pub gate_capacitance: Capacitance,
    /// Leak resistance tying unselected storage nodes to ground.
    pub leak_resistance: Resistance,
    /// Junction capacitance an unselected cell presents to its bitline.
    pub junction_capacitance: Capacitance,
    /// Column-mux on resistance (selected column).
    pub mux_on_resistance: Resistance,
    /// Column-mux off resistance (unselected columns).
    pub mux_off_resistance: Resistance,
    /// Capacitance at the shared sense node.
    pub sense_capacitance: Capacitance,
}

impl SramArraySpec {
    /// An array with plausible deep-submicron per-cell values; the selected
    /// cell is the far corner (last row read through the last column).
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            selected_row: rows.saturating_sub(1),
            selected_col: cols.saturating_sub(1),
            supply: Voltage::from_volts(1.8),
            driver_resistance: Resistance::from_ohms(200.0),
            wordline_resistance: Resistance::from_ohms(2.0),
            wordline_capacitance: Capacitance::from_femtofarads(0.3),
            bitline_resistance: Resistance::from_ohms(1.5),
            bitline_capacitance: Capacitance::from_femtofarads(0.4),
            access_resistance: Resistance::from_kilohms(2.0),
            pass_resistance: Resistance::from_kilohms(4.0),
            cell_capacitance: Capacitance::from_femtofarads(1.5),
            gate_capacitance: Capacitance::from_femtofarads(2.0),
            leak_resistance: Resistance::from_ohms(1e7),
            junction_capacitance: Capacitance::from_femtofarads(0.5),
            mux_on_resistance: Resistance::from_kilohms(1.0),
            mux_off_resistance: Resistance::from_ohms(1e6),
            sense_capacitance: Capacitance::from_femtofarads(20.0),
        }
    }

    fn validate(&self) -> Result<(), CircuitError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(CircuitError::InvalidValue {
                what: "SRAM array dimensions",
                value: (self.rows * self.cols) as f64,
            });
        }
        if self.selected_row >= self.rows {
            return Err(CircuitError::InvalidValue {
                what: "SRAM selected row",
                value: self.selected_row as f64,
            });
        }
        if self.selected_col >= self.cols {
            return Err(CircuitError::InvalidValue {
                what: "SRAM selected column",
                value: self.selected_col as f64,
            });
        }
        let check = |value: f64, what: &'static str| -> Result<(), CircuitError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(CircuitError::InvalidValue { what, value })
            }
        };
        check(self.supply.volts(), "SRAM supply")?;
        check(self.driver_resistance.ohms(), "SRAM driver resistance")?;
        check(self.wordline_resistance.ohms(), "SRAM wordline resistance")?;
        check(self.wordline_capacitance.farads(), "SRAM wordline capacitance")?;
        check(self.bitline_resistance.ohms(), "SRAM bitline resistance")?;
        check(self.bitline_capacitance.farads(), "SRAM bitline capacitance")?;
        check(self.access_resistance.ohms(), "SRAM access resistance")?;
        check(self.pass_resistance.ohms(), "SRAM pass resistance")?;
        check(self.cell_capacitance.farads(), "SRAM cell capacitance")?;
        check(self.gate_capacitance.farads(), "SRAM gate capacitance")?;
        check(self.leak_resistance.ohms(), "SRAM leak resistance")?;
        check(self.junction_capacitance.farads(), "SRAM junction capacitance")?;
        check(self.mux_on_resistance.ohms(), "SRAM mux on resistance")?;
        check(self.mux_off_resistance.ohms(), "SRAM mux off resistance")?;
        check(self.sense_capacitance.farads(), "SRAM sense capacitance")
    }

    /// MNA unknowns of the lowered array: one node per cell crossing on the
    /// wordline, bitline and storage layers, plus the source pad, the sense
    /// node and the voltage-source branch.
    pub fn unknown_count(&self) -> usize {
        3 * self.rows * self.cols + 3
    }

    /// Emits the array as a deck: two parameterized cell subcircuits and one
    /// `X` instance per crossing. [`crate::parse_circuit`] lowers it to the
    /// same circuit [`SramArraySpec::build_circuit`] constructs.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for degenerate dimensions,
    /// out-of-range selections or non-positive element values.
    pub fn emit_deck(&self) -> Result<String, CircuitError> {
        self.validate()?;
        let mut deck = String::new();
        let _ = writeln!(
            deck,
            "* sram array {}x{}, read of cell ({}, {})",
            self.rows, self.cols, self.selected_row, self.selected_col
        );
        let _ = writeln!(
            deck,
            ".subckt cell_on w b ra={} rp={} cc={}",
            self.access_resistance.ohms(),
            self.pass_resistance.ohms(),
            self.cell_capacitance.farads()
        );
        deck.push_str("Ra w s {ra}\nRp s b {rp}\nCc s 0 {cc}\n.ends cell_on\n");
        let _ = writeln!(
            deck,
            ".subckt cell_off w b cg={} cc={} rl={} cj={}",
            self.gate_capacitance.farads(),
            self.cell_capacitance.farads(),
            self.leak_resistance.ohms(),
            self.junction_capacitance.farads()
        );
        deck.push_str("Cg w s {cg}\nCc s 0 {cc}\nRl s 0 {rl}\nCj b 0 {cj}\n.ends cell_off\n");
        let _ = writeln!(deck, "Vwl vsrc 0 STEP({} 0)", self.supply.volts());
        for r in 0..self.rows {
            if r == self.selected_row {
                let _ = writeln!(deck, "Rdrv{r} vsrc w_{r}_0 {}", self.driver_resistance.ohms());
            } else {
                let _ = writeln!(deck, "Rdrv{r} w_{r}_0 0 {}", self.driver_resistance.ohms());
            }
            for c in 1..self.cols {
                let _ = writeln!(
                    deck,
                    "Rw{r}_{c} w_{r}_{} w_{r}_{c} {}",
                    c - 1,
                    self.wordline_resistance.ohms()
                );
            }
            for c in 0..self.cols {
                let _ =
                    writeln!(deck, "Cw{r}_{c} w_{r}_{c} 0 {}", self.wordline_capacitance.farads());
            }
        }
        for r in 0..self.rows {
            let cell = if r == self.selected_row { "cell_on" } else { "cell_off" };
            for c in 0..self.cols {
                let _ = writeln!(deck, "Xc{r}_{c} w_{r}_{c} b_{c}_{r} {cell}");
            }
        }
        for c in 0..self.cols {
            for r in 1..self.rows {
                let _ = writeln!(
                    deck,
                    "Rb{c}_{r} b_{c}_{} b_{c}_{r} {}",
                    r - 1,
                    self.bitline_resistance.ohms()
                );
            }
            for r in 0..self.rows {
                let _ =
                    writeln!(deck, "Cb{c}_{r} b_{c}_{r} 0 {}", self.bitline_capacitance.farads());
            }
            let mux = if c == self.selected_col {
                self.mux_on_resistance
            } else {
                self.mux_off_resistance
            };
            let _ = writeln!(deck, "Rmux{c} b_{c}_{} sense {}", self.rows - 1, mux.ohms());
        }
        let _ = writeln!(deck, "Csense sense 0 {}", self.sense_capacitance.farads());
        deck.push_str(".end\n");
        Ok(deck)
    }

    /// Builds the array circuit programmatically, creating nodes and elements
    /// in exactly the order lowering [`SramArraySpec::emit_deck`] does — the
    /// two are `==` as [`Circuit`]s.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for the same inputs
    /// [`SramArraySpec::emit_deck`] rejects.
    pub fn build_circuit(&self) -> Result<SramNet, CircuitError> {
        self.validate()?;
        let mut circuit = Circuit::new();
        let gnd = circuit.ground();
        let vsrc = circuit.add_node();
        let source = circuit.add_voltage_source(
            vsrc,
            gnd,
            SourceWaveform::Step { amplitude: self.supply, delay: Time::ZERO },
        )?;
        let mut wordline = vec![vec![NodeId::GROUND; self.cols]; self.rows];
        for (r, row) in wordline.iter_mut().enumerate() {
            row[0] = circuit.add_node();
            if r == self.selected_row {
                circuit.add_resistor(vsrc, row[0], self.driver_resistance)?;
            } else {
                circuit.add_resistor(row[0], gnd, self.driver_resistance)?;
            }
            for c in 1..self.cols {
                row[c] = circuit.add_node();
                circuit.add_resistor(row[c - 1], row[c], self.wordline_resistance)?;
            }
            for &node in row.iter() {
                circuit.add_capacitor(node, gnd, self.wordline_capacitance)?;
            }
        }
        // Cell instances in row-major order; each creates its bitline tap
        // node first, then its internal storage node, exactly as port
        // binding and body lowering do for the deck's X cards.
        let mut bitline = vec![vec![NodeId::GROUND; self.rows]; self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                let w = wordline[r][c];
                let b = circuit.add_node();
                bitline[c][r] = b;
                let s = circuit.add_node();
                if r == self.selected_row {
                    circuit.add_resistor(w, s, self.access_resistance)?;
                    circuit.add_resistor(s, b, self.pass_resistance)?;
                    circuit.add_capacitor(s, gnd, self.cell_capacitance)?;
                } else {
                    circuit.add_capacitor(w, s, self.gate_capacitance)?;
                    circuit.add_capacitor(s, gnd, self.cell_capacitance)?;
                    circuit.add_resistor(s, gnd, self.leak_resistance)?;
                    circuit.add_capacitor(b, gnd, self.junction_capacitance)?;
                }
            }
        }
        let mut sense = NodeId::GROUND;
        for (c, col) in bitline.iter().enumerate() {
            for r in 1..self.rows {
                circuit.add_resistor(col[r - 1], col[r], self.bitline_resistance)?;
            }
            for &node in col.iter() {
                circuit.add_capacitor(node, gnd, self.bitline_capacitance)?;
            }
            if c == 0 {
                sense = circuit.add_node();
            }
            let mux = if c == self.selected_col {
                self.mux_on_resistance
            } else {
                self.mux_off_resistance
            };
            circuit.add_resistor(col[self.rows - 1], sense, mux)?;
        }
        circuit.add_capacitor(sense, gnd, self.sense_capacitance)?;
        Ok(SramNet {
            circuit,
            source,
            wordline_input: wordline[self.selected_row][0],
            sense,
            spec: *self,
        })
    }

    /// Emits the deck and lowers it through the parser, returning the same
    /// net [`SramArraySpec::build_circuit`] builds (the sense and wordline
    /// nodes are recovered from the parsed name maps).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for a bad spec; a
    /// [`crate::ParseError`] from the generated deck would be a generator
    /// bug and is reported as [`CircuitError::Measurement`].
    pub fn lower_deck(&self) -> Result<SramNet, CircuitError> {
        let deck = self.emit_deck()?;
        let parsed = parse_circuit(&deck).map_err(|e| CircuitError::Measurement {
            reason: format!("generated SRAM deck failed to lower: {e}"),
        })?;
        let node = |name: &str| {
            parsed.node(name).ok_or_else(|| CircuitError::Measurement {
                reason: format!("generated SRAM deck lost node {name}"),
            })
        };
        let source = parsed.source("Vwl").ok_or_else(|| CircuitError::Measurement {
            reason: "generated SRAM deck lost source Vwl".to_owned(),
        })?;
        let wordline_input = node(&format!("w_{}_0", self.selected_row))?;
        let sense = node("sense")?;
        Ok(SramNet { circuit: parsed.circuit, source, wordline_input, sense, spec: *self })
    }

    /// A timestep resolving the bitline RC with ~2000 points per horizon.
    pub fn suggested_timestep(&self) -> Time {
        Time::from_seconds(self.suggested_stop_time().seconds() / 2000.0)
    }

    /// A horizon of several time constants of the worst series read path
    /// charging the full bitline + sense capacitance (an overestimate —
    /// parallel columns only help).
    pub fn suggested_stop_time(&self) -> Time {
        let path_r = self.driver_resistance.ohms()
            + self.cols as f64 * self.wordline_resistance.ohms()
            + self.access_resistance.ohms()
            + self.pass_resistance.ohms()
            + self.rows as f64 * self.bitline_resistance.ohms()
            + self.mux_on_resistance.ohms();
        let total_c = self.sense_capacitance.farads()
            + self.rows as f64
                * (self.bitline_capacitance.farads() + self.junction_capacitance.farads())
            + self.cols as f64
                * (self.wordline_capacitance.farads() + self.gate_capacitance.farads())
            + self.cell_capacitance.farads();
        Time::from_seconds(6.0 * path_r * total_c)
    }
}

/// A built (or lowered) SRAM array with its interesting nodes.
#[derive(Debug, Clone)]
pub struct SramNet {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// The wordline step source.
    pub source: SourceId,
    /// The selected row's wordline input (after the driver).
    pub wordline_input: NodeId,
    /// The shared sense node behind the column mux — the measured output.
    pub sense: NodeId,
    spec: SramArraySpec,
}

impl SramNet {
    /// The specification this array was generated from.
    pub fn spec(&self) -> &SramArraySpec {
        &self.spec
    }
}

/// Sense-node timing of one simulated read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramReadReport {
    /// 50% delay of the sense node relative to the wordline step.
    pub delay_50: Time,
    /// 10%–90% rise time of the sense node.
    pub rise_time: Time,
    /// MNA unknowns of the simulated system.
    pub unknowns: usize,
    /// Which solver kernel factorised the system.
    pub backend: ResolvedBackend,
}

/// Generates the deck, lowers it through the parser, and simulates the read
/// with the requested backend, extending the horizon if the sense node has
/// not crossed 50% yet (the mesh-workload retry idiom).
///
/// # Errors
///
/// Propagates construction/analysis errors, or [`CircuitError::Measurement`]
/// if the sense node never crosses 50% of the supply.
pub fn measure_sram_read(
    spec: &SramArraySpec,
    backend: SolverBackend,
) -> Result<SramReadReport, CircuitError> {
    let _span = rlckit_telemetry::span("netlist.sram_read");
    let net = spec.lower_deck()?;
    let mut stop = spec.suggested_stop_time();
    let mut last_error = None;
    for _ in 0..4 {
        let step = spec.suggested_timestep().min(stop / 2000.0);
        let options = TransientOptions::new(stop, step).with_backend(backend);
        let result = run_transient(&net.circuit, &options)?;
        let wave = result.node_voltage(net.sense);
        match (wave.delay_50(spec.supply), wave.rise_time(spec.supply)) {
            (Ok(delay_50), Ok(rise_time)) => {
                return Ok(SramReadReport {
                    delay_50,
                    rise_time,
                    unknowns: spec.unknown_count(),
                    backend: result.backend(),
                });
            }
            (Err(e), _) | (_, Err(e)) => {
                last_error = Some(e);
                stop *= 4.0;
            }
        }
    }
    Err(last_error.unwrap_or(CircuitError::Measurement {
        reason: "SRAM sense node never crossed 50% of the supply".to_owned(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_circuit::dc::operating_point_at;
    use rlckit_circuit::netlist::Element;

    #[test]
    fn deck_and_programmatic_builds_are_identical() {
        for (rows, cols) in [(1, 1), (2, 3), (4, 4), (5, 2)] {
            let mut spec = SramArraySpec::new(rows, cols);
            spec.selected_row = rows / 2;
            spec.selected_col = cols / 2;
            let built = spec.build_circuit().unwrap();
            let lowered = spec.lower_deck().unwrap();
            assert_eq!(
                built.circuit, lowered.circuit,
                "{rows}x{cols}: deck lowering must mirror the programmatic build"
            );
            assert_eq!(built.sense, lowered.sense);
            assert_eq!(built.wordline_input, lowered.wordline_input);
            assert_eq!(built.source, lowered.source);
            assert_eq!(built.circuit.node_count(), 3 * rows * cols + 3);
        }
    }

    #[test]
    fn unknown_count_matches_the_assembled_system() {
        let spec = SramArraySpec::new(3, 5);
        let net = spec.build_circuit().unwrap();
        let mna = rlckit_circuit::mna::MnaSystem::build(&net.circuit).unwrap();
        assert_eq!(mna.dim(), spec.unknown_count());
    }

    #[test]
    fn dc_read_settles_at_the_supply() {
        let spec = SramArraySpec::new(3, 3);
        let net = spec.lower_deck().unwrap();
        // Long after the wordline step: the static read settles at Vdd.
        let op = operating_point_at(&net.circuit, Time::from_seconds(1.0)).unwrap();
        let sense = op.node_voltage(net.sense).volts();
        assert!(
            (sense - spec.supply.volts()).abs() < 1e-6,
            "sense DC level {sense} should settle at the supply"
        );
    }

    #[test]
    fn read_delay_is_measurable_and_grows_with_the_array() {
        let small = measure_sram_read(&SramArraySpec::new(2, 2), SolverBackend::Auto).unwrap();
        let large = measure_sram_read(&SramArraySpec::new(8, 8), SolverBackend::Auto).unwrap();
        assert!(small.delay_50.seconds() > 0.0);
        assert!(large.delay_50.seconds() > small.delay_50.seconds());
        assert_eq!(large.unknowns, 3 * 64 + 3);
    }

    #[test]
    fn the_conductance_pattern_is_not_a_tree() {
        // Columns joining at the sense node create loops: edges (counting
        // resistors only) must outnumber a spanning tree's nodes − 1.
        let spec = SramArraySpec::new(4, 4);
        let net = spec.build_circuit().unwrap();
        let resistors =
            net.circuit.elements().iter().filter(|e| matches!(e, Element::Resistor { .. })).count();
        let resistive_nodes = 1 // vsrc
            + spec.rows * spec.cols // wordlines
            + spec.rows * spec.cols // bitlines
            + spec.rows * spec.cols // storage nodes
            + 1; // sense
        assert!(
            resistors > resistive_nodes,
            "{resistors} resistors over {resistive_nodes} nodes cannot be a tree"
        );
    }

    #[test]
    fn invalid_specs_are_rejected_by_both_paths() {
        let mut bad = SramArraySpec::new(0, 4);
        assert!(bad.emit_deck().is_err());
        assert!(bad.build_circuit().is_err());
        bad = SramArraySpec::new(4, 4);
        bad.selected_row = 4;
        assert!(bad.emit_deck().is_err());
        bad = SramArraySpec::new(4, 4);
        bad.sense_capacitance = Capacitance::ZERO;
        assert!(matches!(
            bad.build_circuit(),
            Err(CircuitError::InvalidValue { what: "SRAM sense capacitance", .. })
        ));
    }
}
