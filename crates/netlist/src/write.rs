//! Unparsing: turning any [`Circuit`] back into deck text.
//!
//! The emitted deck is designed so that `parse → lower` reproduces the
//! original circuit *exactly* (`Circuit: PartialEq`):
//!
//! * a `.nodes` directive lists every non-ground node in identifier order, so
//!   numbering — including nodes no element touches — survives the trip;
//! * elements are written in insertion order with generated names
//!   (`R1 C1 L1 K1 V1 I1`, numbered per type);
//! * values use Rust's shortest-round-trip `f64` formatting, which the
//!   parser reads back to the same bits.

use std::fmt::Write as _;

use rlckit_circuit::netlist::Element;
use rlckit_circuit::Circuit;
use rlckit_circuit::SourceWaveform;

fn node_name(id: rlckit_circuit::NodeId) -> String {
    if id.is_ground() {
        "0".to_owned()
    } else {
        format!("n{}", id.index())
    }
}

fn write_waveform(out: &mut String, waveform: &SourceWaveform) {
    match waveform {
        SourceWaveform::Dc { level } => {
            let _ = write!(out, "DC {}", level.volts());
        }
        SourceWaveform::Step { amplitude, delay } => {
            let _ = write!(out, "STEP({} {})", amplitude.volts(), delay.seconds());
        }
        SourceWaveform::Ramp { amplitude, delay, rise_time } => {
            let _ = write!(
                out,
                "RAMP({} {} {})",
                amplitude.volts(),
                delay.seconds(),
                rise_time.seconds()
            );
        }
        SourceWaveform::Pulse { amplitude, delay, edge_time, width } => {
            let _ = write!(
                out,
                "PULSE({} {} {} {})",
                amplitude.volts(),
                delay.seconds(),
                edge_time.seconds(),
                width.seconds()
            );
        }
        SourceWaveform::PieceWiseLinear { points } => {
            out.push_str("PWL(");
            for (i, (t, v)) in points.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{} {}", t.seconds(), v.volts());
            }
            out.push(')');
        }
    }
}

/// Writes `circuit` as a deck the parser lowers back to an equal circuit.
///
/// Note the one lossy corner: an *empty* PWL point list cannot be written
/// (the grammar requires at least one corner), so such a source is emitted
/// as `PWL(0 0)` — the same all-zero excitation.
pub fn circuit_to_deck(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("* deck written by rlckit-netlist\n");
    if circuit.node_count() > 1 {
        out.push_str(".nodes");
        for idx in 1..circuit.node_count() {
            // Wrap onto continuation lines so wide circuits stay readable
            // (and round-trips exercise the `+` joining path).
            if idx > 1 && (idx - 1) % 16 == 0 {
                out.push_str("\n+");
            }
            let _ = write!(out, " n{idx}");
        }
        out.push('\n');
    }
    let mut counters = [0usize; 6]; // R C L K V I
    let mut bump = |slot: usize| {
        counters[slot] += 1;
        counters[slot]
    };
    for element in circuit.elements() {
        match element {
            Element::Resistor { plus, minus, value } => {
                let _ = writeln!(
                    out,
                    "R{} {} {} {}",
                    bump(0),
                    node_name(*plus),
                    node_name(*minus),
                    value.ohms()
                );
            }
            Element::Capacitor { plus, minus, value } => {
                let _ = writeln!(
                    out,
                    "C{} {} {} {}",
                    bump(1),
                    node_name(*plus),
                    node_name(*minus),
                    value.farads()
                );
            }
            Element::Inductor { plus, minus, value } => {
                let _ = writeln!(
                    out,
                    "L{} {} {} {}",
                    bump(2),
                    node_name(*plus),
                    node_name(*minus),
                    value.henries()
                );
            }
            Element::MutualInductor { first, second, coupling } => {
                let _ = writeln!(
                    out,
                    "K{} L{} L{} {}",
                    bump(3),
                    first.index() + 1,
                    second.index() + 1,
                    coupling
                );
            }
            Element::VoltageSource { plus, minus, waveform, .. } => {
                let _ = write!(out, "V{} {} {} ", bump(4), node_name(*plus), node_name(*minus));
                if matches!(waveform, SourceWaveform::PieceWiseLinear { points } if points.is_empty())
                {
                    out.push_str("PWL(0 0)");
                } else {
                    write_waveform(&mut out, waveform);
                }
                out.push('\n');
            }
            Element::CurrentSource { plus, minus, waveform, .. } => {
                let _ = write!(out, "I{} {} {} ", bump(5), node_name(*plus), node_name(*minus));
                if matches!(waveform, SourceWaveform::PieceWiseLinear { points } if points.is_empty())
                {
                    out.push_str("PWL(0 0)");
                } else {
                    write_waveform(&mut out, waveform);
                }
                out.push('\n');
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::parse_circuit;
    use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};

    #[test]
    fn round_trips_an_rlc_circuit_exactly() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(a, b, Resistance::from_ohms(47.3)).unwrap();
        let l1 = c.add_inductor(b, gnd, Inductance::from_nanohenries(0.37)).unwrap();
        let l2 = c.add_inductor(a, b, Inductance::from_picohenries(12.0)).unwrap();
        c.add_mutual_inductor(l1, l2, -0.83).unwrap();
        c.add_capacitor(b, gnd, Capacitance::from_femtofarads(210.0)).unwrap();
        c.add_current_source(
            gnd,
            b,
            SourceWaveform::PieceWiseLinear {
                points: vec![
                    (Time::ZERO, Voltage::ZERO),
                    (Time::from_picoseconds(3.0), Voltage::from_volts(0.125)),
                ],
            },
        )
        .unwrap();

        let deck = circuit_to_deck(&c);
        let reparsed = parse_circuit(&deck).unwrap();
        assert_eq!(reparsed.circuit, c);
        // A second trip through the writer is a fixed point.
        assert_eq!(circuit_to_deck(&reparsed.circuit), deck);
    }

    #[test]
    fn unused_nodes_survive_via_the_nodes_directive() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let _spare = c.add_node();
        let _spare2 = c.add_node();
        c.add_resistor(a, c.ground(), Resistance::from_ohms(1.0)).unwrap();
        let reparsed = parse_circuit(&circuit_to_deck(&c)).unwrap();
        assert_eq!(reparsed.circuit, c);
        assert_eq!(reparsed.circuit.node_count(), 4);
    }

    #[test]
    fn wide_circuits_use_continuation_lines() {
        let mut c = Circuit::new();
        let nodes: Vec<_> = (0..40).map(|_| c.add_node()).collect();
        for n in &nodes {
            c.add_capacitor(*n, c.ground(), Capacitance::from_femtofarads(1.0)).unwrap();
        }
        let deck = circuit_to_deck(&c);
        assert!(deck.contains("\n+ "), "the .nodes list should wrap: {deck}");
        let reparsed = parse_circuit(&deck).unwrap();
        assert_eq!(reparsed.circuit, c);
    }

    #[test]
    fn empty_pwl_degrades_to_zero_excitation() {
        let mut c = Circuit::new();
        let a = c.add_node();
        c.add_resistor(a, c.ground(), Resistance::from_ohms(1.0)).unwrap();
        c.add_voltage_source(a, c.ground(), SourceWaveform::PieceWiseLinear { points: vec![] })
            .unwrap();
        let reparsed = parse_circuit(&circuit_to_deck(&c)).unwrap();
        // Not equal (the PWL gained a point) but equivalent at every time.
        match &reparsed.circuit.elements()[1] {
            Element::VoltageSource { waveform, .. } => {
                assert_eq!(waveform.value_at(Time::from_nanoseconds(1.0)).volts(), 0.0);
            }
            other => panic!("unexpected element {other:?}"),
        }
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        for v in [1e-18, 3.141592653589793e-7, 12345.678901234567, 9.9e22] {
            c.add_resistor(a, gnd, Resistance::from_ohms(v)).unwrap();
        }
        let reparsed = parse_circuit(&circuit_to_deck(&c)).unwrap();
        assert_eq!(reparsed.circuit, c);
    }
}
