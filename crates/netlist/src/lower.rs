//! Lowering from the deck AST to an [`rlckit_circuit::Circuit`].
//!
//! Node names become [`NodeId`]s on first reference (with `0`/`gnd` mapping
//! to ground), subcircuit instances expand inline with their parameter
//! environments, and every element goes through the `_named` adders of
//! `rlckit-circuit` so a rejected value surfaces as a [`ParseError`] citing
//! the offending card and its hierarchical element name (`X3/R1`).

use std::collections::{BTreeMap, HashMap};

use rlckit_circuit::{Circuit, InductorId, NodeId, SourceId, SourceWaveform};
use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};

use crate::error::{ParseError, ParseErrorKind};
use crate::lex::Token;
use crate::parse::{is_ground, parse_deck, CardKind, Deck, ElementCard, Value, WaveformAst};

/// Deepest allowed subcircuit instantiation. Well-formed hierarchies are a
/// handful of levels; hitting this limit means the definitions are (mutually)
/// recursive, which the subset rejects rather than expanding forever.
pub const MAX_SUBCKT_DEPTH: usize = 32;

/// A lowered deck: the circuit plus name → identifier maps so callers can
/// address nodes, sources and inductors by their deck names.
///
/// Names inside subcircuit instances are hierarchical, joined with `/`:
/// instance `X3` of a subcircuit containing `R1` and internal node `s`
/// contributes element `X3/R1` and node `X3/s`.
#[derive(Debug, Clone)]
pub struct ParsedCircuit {
    /// The lowered circuit.
    pub circuit: Circuit,
    nodes: BTreeMap<String, NodeId>,
    sources: BTreeMap<String, SourceId>,
    inductors: BTreeMap<String, InductorId>,
}

impl ParsedCircuit {
    /// Looks up a node by its (hierarchical) deck name. Ground is `"0"` or
    /// any-case `"gnd"`.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        if is_ground(name) {
            return Some(NodeId::GROUND);
        }
        self.nodes.get(name).copied()
    }

    /// Looks up a source by the name of its `V`/`I` card.
    pub fn source(&self, name: &str) -> Option<SourceId> {
        self.sources.get(name).copied()
    }

    /// Looks up an inductor by the name of its `L` card.
    pub fn inductor(&self, name: &str) -> Option<InductorId> {
        self.inductors.get(name).copied()
    }

    /// All non-ground node names with their identifiers, in name order.
    pub fn node_names(&self) -> impl Iterator<Item = (&str, NodeId)> {
        self.nodes.iter().map(|(name, id)| (name.as_str(), *id))
    }
}

/// One level of name resolution: the maps are keyed by *local* names, the
/// prefix makes them hierarchical for diagnostics and the global maps.
struct Scope {
    prefix: String,
    nodes: HashMap<String, NodeId>,
    inductors: HashMap<String, InductorId>,
    params: HashMap<String, f64>,
}

struct Lowerer<'d> {
    deck: &'d Deck,
    out: ParsedCircuit,
}

impl Lowerer<'_> {
    fn card_err(card: &ElementCard, kind: ParseErrorKind) -> ParseError {
        ParseError::at_line(card.name.line, card.name.column, &card.text, kind)
    }

    fn tok_err(tok: &Token, card: &ElementCard, kind: ParseErrorKind) -> ParseError {
        ParseError::at_line(tok.line, tok.column, &card.text, kind)
    }

    fn resolve_node(&mut self, scope: &mut Scope, tok: &Token) -> NodeId {
        if is_ground(&tok.text) {
            return NodeId::GROUND;
        }
        if let Some(id) = scope.nodes.get(&tok.text) {
            return *id;
        }
        let id = self.out.circuit.add_node();
        scope.nodes.insert(tok.text.clone(), id);
        self.out.nodes.insert(format!("{}{}", scope.prefix, tok.text), id);
        id
    }

    fn declare_node(
        &mut self,
        scope: &mut Scope,
        tok: &Token,
        card_text: &str,
    ) -> Result<(), ParseError> {
        // Parse-time checks cover duplicates within the `.nodes` lists; a
        // collision here means a declared name shadows a port.
        if scope.nodes.contains_key(&tok.text) {
            return Err(ParseError::at_line(
                tok.line,
                tok.column,
                card_text,
                ParseErrorKind::DuplicateNode { name: tok.text.clone() },
            ));
        }
        let id = self.out.circuit.add_node();
        scope.nodes.insert(tok.text.clone(), id);
        self.out.nodes.insert(format!("{}{}", scope.prefix, tok.text), id);
        Ok(())
    }

    fn resolve_value(scope: &Scope, value: &Value, card: &ElementCard) -> Result<f64, ParseError> {
        match value {
            Value::Literal(v) => Ok(*v),
            Value::Param(tok) => {
                let name = Value::param_name(tok);
                scope.params.get(name).copied().ok_or_else(|| {
                    Self::tok_err(
                        tok,
                        card,
                        ParseErrorKind::UnknownParameter { name: name.to_owned() },
                    )
                })
            }
        }
    }

    fn resolve_waveform(
        scope: &Scope,
        ast: &WaveformAst,
        card: &ElementCard,
    ) -> Result<SourceWaveform, ParseError> {
        let v = |value: &Value| Self::resolve_value(scope, value, card);
        Ok(match ast {
            WaveformAst::Dc(level) => SourceWaveform::Dc { level: Voltage::from_volts(v(level)?) },
            WaveformAst::Step(amplitude, delay) => SourceWaveform::Step {
                amplitude: Voltage::from_volts(v(amplitude)?),
                delay: Time::from_seconds(v(delay)?),
            },
            WaveformAst::Ramp(amplitude, delay, rise) => SourceWaveform::Ramp {
                amplitude: Voltage::from_volts(v(amplitude)?),
                delay: Time::from_seconds(v(delay)?),
                rise_time: Time::from_seconds(v(rise)?),
            },
            WaveformAst::Pulse(amplitude, delay, edge, width) => SourceWaveform::Pulse {
                amplitude: Voltage::from_volts(v(amplitude)?),
                delay: Time::from_seconds(v(delay)?),
                edge_time: Time::from_seconds(v(edge)?),
                width: Time::from_seconds(v(width)?),
            },
            WaveformAst::Pwl(points) => SourceWaveform::PieceWiseLinear {
                points: points
                    .iter()
                    .map(|(t, value)| {
                        Ok((Time::from_seconds(v(t)?), Voltage::from_volts(v(value)?)))
                    })
                    .collect::<Result<Vec<_>, ParseError>>()?,
            },
        })
    }

    fn lower_cards(
        &mut self,
        cards: &[ElementCard],
        scope: &mut Scope,
        depth: usize,
    ) -> Result<(), ParseError> {
        for card in cards {
            let full_name = format!("{}{}", scope.prefix, card.name.text);
            let wrap = |e: rlckit_circuit::CircuitError| {
                Self::card_err(card, ParseErrorKind::Element { error: e })
            };
            match &card.kind {
                CardKind::Resistor { plus, minus, value } => {
                    let v = Self::resolve_value(scope, value, card)?;
                    let p = self.resolve_node(scope, plus);
                    let m = self.resolve_node(scope, minus);
                    self.out
                        .circuit
                        .add_resistor_named(&full_name, p, m, Resistance::from_ohms(v))
                        .map_err(wrap)?;
                }
                CardKind::Capacitor { plus, minus, value } => {
                    let v = Self::resolve_value(scope, value, card)?;
                    let p = self.resolve_node(scope, plus);
                    let m = self.resolve_node(scope, minus);
                    self.out
                        .circuit
                        .add_capacitor_named(&full_name, p, m, Capacitance::from_farads(v))
                        .map_err(wrap)?;
                }
                CardKind::Inductor { plus, minus, value } => {
                    let v = Self::resolve_value(scope, value, card)?;
                    let p = self.resolve_node(scope, plus);
                    let m = self.resolve_node(scope, minus);
                    let id = self
                        .out
                        .circuit
                        .add_inductor_named(&full_name, p, m, Inductance::from_henries(v))
                        .map_err(wrap)?;
                    scope.inductors.insert(card.name.text.clone(), id);
                    self.out.inductors.insert(full_name, id);
                }
                CardKind::Mutual { first, second, value } => {
                    let v = Self::resolve_value(scope, value, card)?;
                    let lookup = |tok: &Token| -> Result<InductorId, ParseError> {
                        scope.inductors.get(&tok.text).copied().ok_or_else(|| {
                            Self::tok_err(
                                tok,
                                card,
                                ParseErrorKind::UnknownInductorRef { name: tok.text.clone() },
                            )
                        })
                    };
                    let l1 = lookup(first)?;
                    let l2 = lookup(second)?;
                    self.out
                        .circuit
                        .add_mutual_inductor_named(&full_name, l1, l2, v)
                        .map_err(wrap)?;
                }
                CardKind::Voltage { plus, minus, waveform } => {
                    let wf = Self::resolve_waveform(scope, waveform, card)?;
                    let p = self.resolve_node(scope, plus);
                    let m = self.resolve_node(scope, minus);
                    let id = self
                        .out
                        .circuit
                        .add_voltage_source_named(&full_name, p, m, wf)
                        .map_err(wrap)?;
                    self.out.sources.insert(full_name, id);
                }
                CardKind::Current { plus, minus, waveform } => {
                    let wf = Self::resolve_waveform(scope, waveform, card)?;
                    let p = self.resolve_node(scope, plus);
                    let m = self.resolve_node(scope, minus);
                    let id = self
                        .out
                        .circuit
                        .add_current_source_named(&full_name, p, m, wf)
                        .map_err(wrap)?;
                    self.out.sources.insert(full_name, id);
                }
                CardKind::Instance { nodes, subckt, overrides } => {
                    if depth + 1 > MAX_SUBCKT_DEPTH {
                        return Err(Self::card_err(
                            card,
                            ParseErrorKind::RecursionLimit { name: subckt.text.clone() },
                        ));
                    }
                    let Some(def) = self.deck.subckts.get(&subckt.text) else {
                        return Err(Self::tok_err(
                            subckt,
                            card,
                            ParseErrorKind::UnknownSubckt { name: subckt.text.clone() },
                        ));
                    };
                    if nodes.len() != def.ports.len() {
                        return Err(Self::card_err(
                            card,
                            ParseErrorKind::PortCountMismatch {
                                subckt: def.name.clone(),
                                expected: def.ports.len(),
                                found: nodes.len(),
                            },
                        ));
                    }
                    let mut params: HashMap<String, f64> = def.params.iter().cloned().collect();
                    for (name, value) in overrides {
                        if !params.contains_key(&name.text) {
                            return Err(Self::tok_err(
                                name,
                                card,
                                ParseErrorKind::UnknownParameter { name: name.text.clone() },
                            ));
                        }
                        // Override values resolve in the *enclosing* scope,
                        // so a subcircuit can pass its own parameters down.
                        let v = Self::resolve_value(scope, value, card)?;
                        params.insert(name.text.clone(), v);
                    }
                    let mut bound = HashMap::new();
                    for (port, node_tok) in def.ports.iter().zip(nodes) {
                        let id = self.resolve_node(scope, node_tok);
                        bound.insert(port.clone(), id);
                    }
                    let mut child = Scope {
                        prefix: format!("{full_name}/"),
                        nodes: bound,
                        inductors: HashMap::new(),
                        params,
                    };
                    // Clone: expanding the body borrows the deck immutably
                    // while `self` mutates the circuit.
                    let def = def.clone();
                    for tok in &def.declared_nodes {
                        self.declare_node(&mut child, tok, &card.text)?;
                    }
                    self.lower_cards(&def.cards, &mut child, depth + 1)?;
                }
            }
        }
        Ok(())
    }
}

/// Lowers a parsed [`Deck`] into a circuit with name maps.
///
/// # Errors
///
/// Returns a [`ParseError`] citing the offending card for unresolvable names,
/// parameter problems, recursion, and any element the circuit rejects.
pub fn lower_deck(deck: &Deck) -> Result<ParsedCircuit, ParseError> {
    let mut lowerer = Lowerer {
        deck,
        out: ParsedCircuit {
            circuit: Circuit::new(),
            nodes: BTreeMap::new(),
            sources: BTreeMap::new(),
            inductors: BTreeMap::new(),
        },
    };
    let mut top = Scope {
        prefix: String::new(),
        nodes: HashMap::new(),
        inductors: HashMap::new(),
        params: HashMap::new(),
    };
    // `.nodes` declarations establish numbering before any element card.
    for tok in &deck.declared_nodes {
        lowerer.declare_node(&mut top, tok, "")?;
    }
    lowerer.lower_cards(&deck.cards, &mut top, 0)?;
    Ok(lowerer.out)
}

/// Parses deck text and lowers it to a circuit in one step, under the
/// `netlist.parse` and `netlist.lower` telemetry spans.
///
/// # Errors
///
/// Returns the first [`ParseError`] from either phase.
pub fn parse_circuit(text: &str) -> Result<ParsedCircuit, ParseError> {
    let deck = {
        let _span = rlckit_telemetry::span("netlist.parse");
        parse_deck(text)?
    };
    let parsed = {
        let _span = rlckit_telemetry::span("netlist.lower");
        lower_deck(&deck)?
    };
    rlckit_telemetry::counter_add("netlist.decks_parsed", 1);
    rlckit_telemetry::gauge_set("netlist.last_deck_nodes", parsed.circuit.node_count() as f64);
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowers_a_flat_deck_with_name_maps() {
        let parsed = parse_circuit(
            "V1 in 0 STEP(1 0)\nRd in a 50\nL1 a out 1n\nC1 out 0 1p\nC2 out gnd 1p\n",
        )
        .unwrap();
        assert_eq!(parsed.circuit.node_count(), 4); // gnd, in, a, out
        assert_eq!(parsed.circuit.elements().len(), 5);
        assert_eq!(parsed.node("in").unwrap().index(), 1);
        assert_eq!(parsed.node("0"), Some(NodeId::GROUND));
        assert_eq!(parsed.node("GND"), Some(NodeId::GROUND));
        assert!(parsed.node("missing").is_none());
        assert!(parsed.source("V1").is_some());
        assert!(parsed.inductor("L1").is_some());
        let names: Vec<&str> = parsed.node_names().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "in", "out"]);
    }

    #[test]
    fn declared_nodes_fix_the_numbering() {
        let parsed = parse_circuit(".nodes b a\nR1 a b 1\n").unwrap();
        assert_eq!(parsed.node("b").unwrap().index(), 1);
        assert_eq!(parsed.node("a").unwrap().index(), 2);
        // An unused declared node still exists in the circuit.
        let parsed = parse_circuit(".nodes a spare\nR1 a 0 1\n").unwrap();
        assert_eq!(parsed.circuit.node_count(), 3);
    }

    #[test]
    fn subckt_expansion_binds_ports_and_params() {
        let parsed = parse_circuit(
            ".subckt cell w b r=100 c=1p\nRa w s {r}\nCc s b {c}\n.ends\nX1 top mid cell\nX2 mid 0 cell r=200\n",
        )
        .unwrap();
        // Nodes: top, mid, X1/s, X2/s (+ ground).
        assert_eq!(parsed.circuit.node_count(), 5);
        assert_eq!(parsed.circuit.elements().len(), 4);
        assert!(parsed.node("X1/s").is_some());
        assert!(parsed.node("X2/s").is_some());
        let elements = parsed.circuit.elements();
        assert!(matches!(
            elements[0],
            rlckit_circuit::netlist::Element::Resistor { value, .. } if value.ohms() == 100.0
        ));
        assert!(matches!(
            elements[2],
            rlckit_circuit::netlist::Element::Resistor { value, .. } if value.ohms() == 200.0
        ));
    }

    #[test]
    fn nested_instances_pass_parameters_down() {
        let parsed = parse_circuit(
            ".subckt inner p r=1\nRi p 0 {r}\n.ends\n.subckt outer q r=2\nX1 q inner r={r}\n.ends\nXo n1 outer r=7\n",
        )
        .unwrap();
        assert!(matches!(
            parsed.circuit.elements()[0],
            rlckit_circuit::netlist::Element::Resistor { value, .. } if value.ohms() == 7.0
        ));
        assert!(parsed.node("Xo/X1").is_none());
        assert_eq!(parsed.node("n1").unwrap().index(), 1);
    }

    #[test]
    fn lowering_errors_cite_the_card() {
        let err = parse_circuit("R1 a 0 -5\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(matches!(err.kind(), ParseErrorKind::Element { .. }));
        assert!(err.to_string().contains("element \"R1\""));

        let err = parse_circuit(".subckt cell p\nRa p 0 0\n.ends\nX1 n cell\n").unwrap_err();
        assert_eq!(err.line(), 2, "the cited line is the body card inside the deck");
        assert!(err.to_string().contains("element \"X1/Ra\""));

        let err = parse_circuit("K1 L1 L2 0.5\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::UnknownInductorRef { name } if name == "L1"));

        let err = parse_circuit("X1 a b cell\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::UnknownSubckt { name } if name == "cell"));

        let err = parse_circuit(".subckt cell p q\nRa p q 1\n.ends\nX1 a cell\n").unwrap_err();
        assert!(matches!(
            err.kind(),
            ParseErrorKind::PortCountMismatch { expected: 2, found: 1, .. }
        ));

        let err = parse_circuit(".subckt cell p\nRa p 0 1\n.ends\nX1 a cell w=2\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::UnknownParameter { name } if name == "w"));

        let err = parse_circuit("R1 a 0 {r}\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::UnknownParameter { name } if name == "r"));
    }

    #[test]
    fn recursion_is_cut_off() {
        let err = parse_circuit(".subckt loop p\nX1 p loop\n.ends\nX0 n loop\n").unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::RecursionLimit { name } if name == "loop"));
        // Mutual recursion hits the same limit.
        let err = parse_circuit(".subckt a p\nX1 p b\n.ends\n.subckt b p\nX1 p a\n.ends\nX0 n a\n")
            .unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::RecursionLimit { .. }));
    }

    #[test]
    fn k_cards_resolve_in_their_own_scope() {
        let parsed = parse_circuit(
            ".subckt pair a b\nL1 a 0 1n\nL2 b 0 1n\nK1 L1 L2 0.4\n.ends\nX1 p q pair\nX2 r s pair\n",
        )
        .unwrap();
        assert_eq!(parsed.circuit.inductor_count(), 4);
        assert!(parsed.inductor("X1/L1").is_some());
        assert!(parsed.inductor("X2/L2").is_some());
        // Each expansion couples its own inductor pair.
        let mutuals: Vec<_> = parsed
            .circuit
            .elements()
            .iter()
            .filter_map(|e| match e {
                rlckit_circuit::netlist::Element::MutualInductor { first, second, .. } => {
                    Some((first.index(), second.index()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(mutuals, [(0, 1), (2, 3)]);
    }
}
