//! Deck-corpus gate for CI.
//!
//! Walks a corpus directory (default `tests/decks/` at the workspace root),
//! parses every `*.cir` deck, and enforces the golden contract:
//!
//! * decks *without* a sibling `<name>.expected` file must parse and lower
//!   cleanly;
//! * decks *with* one are deliberately malformed, and their full diagnostic
//!   (`ParseError` display) must match the expected file byte for byte.
//!
//! With `--bless`, mismatching or missing `.expected` files are rewritten
//! from the current diagnostics instead of failing.
//!
//! Exits non-zero on any violation, printing one line per deck.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rlckit_netlist::parse_circuit;

fn corpus_dir() -> PathBuf {
    // The binary runs from anywhere in the workspace; walk up from the
    // manifest dir (crates/netlist) to the root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map(|root| root.join("tests").join("decks"))
        .unwrap_or_else(|| PathBuf::from("tests/decks"))
}

fn check_deck(path: &Path, bless: bool) -> Result<&'static str, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable deck: {e}"))?;
    let expected_path = path.with_extension("expected");
    let outcome = parse_circuit(&text);
    match (outcome, expected_path.exists()) {
        (Ok(parsed), false) => {
            if parsed.circuit.is_empty() {
                Err("parsed to an empty circuit".to_owned())
            } else {
                Ok("ok")
            }
        }
        (Ok(_), true) => Err(format!(
            "expected the diagnostic in {} but the deck parsed cleanly",
            expected_path.display()
        )),
        (Err(e), true) => {
            let got = format!("{e}\n");
            let want = std::fs::read_to_string(&expected_path)
                .map_err(|e| format!("unreadable expected file: {e}"))?;
            if got == want {
                Ok("diagnostic ok")
            } else if bless {
                std::fs::write(&expected_path, &got).map_err(|e| format!("cannot bless: {e}"))?;
                Ok("blessed")
            } else {
                Err(format!("diagnostic drifted\n--- expected\n{want}--- got\n{got}"))
            }
        }
        (Err(e), false) => {
            if bless {
                std::fs::write(&expected_path, format!("{e}\n"))
                    .map_err(|e| format!("cannot bless: {e}"))?;
                Ok("blessed")
            } else {
                Err(format!("unexpected parse failure:\n{e}"))
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bless = args.iter().any(|a| a == "--bless");
    let dir =
        args.iter().find(|a| !a.starts_with("--")).map(PathBuf::from).unwrap_or_else(corpus_dir);
    let mut decks: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "cir"))
            .collect(),
        Err(e) => {
            eprintln!("corpus_check: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    decks.sort();
    if decks.is_empty() {
        eprintln!("corpus_check: no *.cir decks under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for deck in &decks {
        let name = deck.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        match check_deck(deck, bless) {
            Ok(status) => println!("corpus_check: {name}: {status}"),
            Err(reason) => {
                failures += 1;
                eprintln!("corpus_check: {name}: FAILED: {reason}");
            }
        }
    }
    println!("corpus_check: {} deck(s), {failures} failure(s)", decks.len());
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
