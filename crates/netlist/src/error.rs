//! Structured parse diagnostics.
//!
//! Every way a deck can be malformed maps to a [`ParseErrorKind`]; the
//! surrounding [`ParseError`] pins the problem to a line and column, quotes
//! the offending card, and carries a one-line hint. The `Display` output is
//! stable and exact-matched by the golden corpus tests, so changing a message
//! here deliberately fails `tests/netlist_golden.rs` until the committed
//! `.expected` files are regenerated.

use std::error::Error;
use std::fmt;

use rlckit_circuit::CircuitError;

/// Longest card excerpt quoted in a diagnostic; longer cards are clipped so
/// machine-generated (or fuzzed) kilobyte lines stay readable.
const CARD_CLIP: usize = 100;

/// Clips a card excerpt for quoting in diagnostics.
pub(crate) fn clip_card_text(text: &str) -> String {
    let mut out = String::new();
    for (count, c) in text.chars().enumerate() {
        if count == CARD_CLIP {
            out.push('…');
            return out;
        }
        out.push(c);
    }
    out
}

/// What went wrong, without the position information.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A `+` continuation line appeared before any card.
    DanglingContinuation,
    /// The deck has no cards at all.
    EmptyDeck,
    /// The first token of a card is not a recognised element letter.
    UnknownCard {
        /// The unrecognised leading token.
        leader: String,
    },
    /// A `.directive` that is not part of the supported subset.
    UnknownDirective {
        /// The directive as written, including the dot.
        name: String,
    },
    /// A card ended before a required field.
    MissingToken {
        /// Description of the missing field.
        expected: &'static str,
    },
    /// A card carried more fields than its form allows.
    ExtraToken {
        /// The first surplus token.
        token: String,
    },
    /// A token in value position is not a number the subset accepts.
    BadNumber {
        /// The offending token.
        token: String,
    },
    /// A waveform keyword that is not DC/STEP/RAMP/PULSE/PWL.
    UnknownWaveform {
        /// The offending token.
        token: String,
    },
    /// Two elements in the same scope share a name.
    DuplicateElement {
        /// The reused name.
        name: String,
    },
    /// A `K` card references an inductor name with no `L` card in its scope.
    UnknownInductorRef {
        /// The unresolved inductor name.
        name: String,
    },
    /// Two `.subckt` definitions share a name.
    DuplicateSubckt {
        /// The reused subcircuit name.
        name: String,
    },
    /// A `.subckt` opened inside another `.subckt`.
    NestedSubckt,
    /// `.ends` with no open `.subckt`.
    EndsWithoutSubckt,
    /// `.ends NAME` closing a differently named `.subckt`.
    MismatchedEnds {
        /// Name of the subcircuit being closed.
        expected: String,
        /// Name written after `.ends`.
        found: String,
    },
    /// The deck ended while a `.subckt` was still open.
    UnclosedSubckt {
        /// Name of the unclosed subcircuit.
        name: String,
    },
    /// An `X` instance names a subcircuit the deck never defines.
    UnknownSubckt {
        /// The unresolved subcircuit name.
        name: String,
    },
    /// An `X` instance connects the wrong number of nodes.
    PortCountMismatch {
        /// Name of the instantiated subcircuit.
        subckt: String,
        /// Ports the definition declares.
        expected: usize,
        /// Nodes the instance supplied.
        found: usize,
    },
    /// A `{param}` reference or `name=value` override with no matching
    /// declared parameter.
    UnknownParameter {
        /// The unresolved parameter name.
        name: String,
    },
    /// A parameter assignment that is not `name=value`.
    BadParameter {
        /// The token where the assignment went wrong.
        token: String,
    },
    /// Subcircuit instantiation nested deeper than the supported limit
    /// (which in practice means the definitions are mutually recursive).
    RecursionLimit {
        /// The subcircuit whose expansion hit the limit.
        name: String,
    },
    /// A card appeared after `.end`.
    CardAfterEnd,
    /// `.nodes` lists the ground node.
    NodesListsGround,
    /// `.nodes` lists the same name twice.
    DuplicateNode {
        /// The repeated node name.
        name: String,
    },
    /// The element was rejected while lowering into the circuit (bad value,
    /// out-of-range coupling, invalid waveform, ...).
    Element {
        /// The underlying circuit-construction error, already citing the
        /// element's hierarchical name.
        error: CircuitError,
    },
}

impl ParseErrorKind {
    fn message(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DanglingContinuation => write!(f, "continuation line before any card"),
            Self::EmptyDeck => write!(f, "deck contains no cards"),
            Self::UnknownCard { leader } => write!(f, "unrecognised card \"{leader}\""),
            Self::UnknownDirective { name } => write!(f, "unknown directive \"{name}\""),
            Self::MissingToken { expected } => write!(f, "card ended early: expected {expected}"),
            Self::ExtraToken { token } => write!(f, "unexpected trailing token \"{token}\""),
            Self::BadNumber { token } => write!(f, "invalid number \"{token}\""),
            Self::UnknownWaveform { token } => write!(f, "unknown waveform \"{token}\""),
            Self::DuplicateElement { name } => write!(f, "duplicate element name \"{name}\""),
            Self::UnknownInductorRef { name } => {
                write!(f, "K card references unknown inductor \"{name}\"")
            }
            Self::DuplicateSubckt { name } => {
                write!(f, "subcircuit \"{name}\" is defined twice")
            }
            Self::NestedSubckt => write!(f, ".subckt opened inside another .subckt"),
            Self::EndsWithoutSubckt => write!(f, ".ends with no open .subckt"),
            Self::MismatchedEnds { expected, found } => {
                write!(f, ".ends \"{found}\" does not close .subckt \"{expected}\"")
            }
            Self::UnclosedSubckt { name } => {
                write!(f, "subcircuit \"{name}\" is never closed")
            }
            Self::UnknownSubckt { name } => {
                write!(f, "instance references unknown subcircuit \"{name}\"")
            }
            Self::PortCountMismatch { subckt, expected, found } => write!(
                f,
                "instance connects {found} node(s) but subcircuit \"{subckt}\" has {expected} port(s)"
            ),
            Self::UnknownParameter { name } => write!(f, "unknown parameter \"{name}\""),
            Self::BadParameter { token } => {
                write!(f, "malformed parameter assignment near \"{token}\"")
            }
            Self::RecursionLimit { name } => write!(
                f,
                "subcircuit \"{name}\" expands deeper than {} levels (recursive definition?)",
                crate::lower::MAX_SUBCKT_DEPTH
            ),
            Self::CardAfterEnd => write!(f, "card after .end"),
            Self::NodesListsGround => write!(f, ".nodes lists the ground node"),
            Self::DuplicateNode { name } => write!(f, ".nodes lists \"{name}\" twice"),
            Self::Element { error } => write!(f, "{error}"),
        }
    }

    /// One-line fix suggestion for this kind of error.
    pub fn hint(&self) -> &'static str {
        match self {
            Self::DanglingContinuation => {
                "a line starting with '+' extends the previous card; move it below one"
            }
            Self::EmptyDeck => "a deck needs at least one element card",
            Self::UnknownCard { .. } => {
                "element cards start with R, C, L, K, V, I or X; directives with '.'"
            }
            Self::UnknownDirective { .. } => "supported directives: .subckt .ends .nodes .end",
            Self::MissingToken { .. } => {
                "the card is truncated; long cards may continue on a '+' line"
            }
            Self::ExtraToken { .. } => "remove the surplus field or start a comment with ';'",
            Self::BadNumber { .. } => {
                "values are a decimal number with an optional SI suffix (f p n u m k meg g t)"
            }
            Self::UnknownWaveform { .. } => {
                "sources take a bare DC value or DC/STEP/RAMP/PULSE/PWL(...)"
            }
            Self::DuplicateElement { .. } => "element names must be unique within their scope",
            Self::UnknownInductorRef { .. } => {
                "a K card must name two L elements from the same scope"
            }
            Self::DuplicateSubckt { .. } => "rename one of the definitions",
            Self::NestedSubckt => "close the outer definition with .ends first",
            Self::EndsWithoutSubckt => "delete the .ends or add the matching .subckt above it",
            Self::MismatchedEnds { .. } => {
                "the name after .ends must repeat the .subckt name, or be omitted"
            }
            Self::UnclosedSubckt { .. } => "add .ends before the end of the deck",
            Self::UnknownSubckt { .. } => {
                "define it with '.subckt <name> <ports...>' anywhere in the deck"
            }
            Self::PortCountMismatch { .. } => {
                "an instance must connect exactly one node per declared port"
            }
            Self::UnknownParameter { .. } => {
                "parameters must be declared with a default on the .subckt line"
            }
            Self::BadParameter { .. } => "write parameter assignments as name=value",
            Self::RecursionLimit { .. } => "subcircuits must not instantiate themselves",
            Self::CardAfterEnd => "move the card above the .end line or delete it",
            Self::NodesListsGround => "ground (0 or gnd) always exists; list only other nodes",
            Self::DuplicateNode { .. } => "each node may be declared once",
            Self::Element { .. } => "fix the quoted element's value or connections",
        }
    }
}

/// A structured deck parse error: position, offending card, kind and hint.
///
/// The `Display` form spans up to three lines —
///
/// ```text
/// error at line 4, column 11: invalid number "1..5"
///   card: R1 in out 1..5
///   hint: values are a decimal number with an optional SI suffix (f p n u m k meg g t)
/// ```
///
/// — and is exact-matched by the golden corpus, so it must stay stable.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    line: usize,
    column: usize,
    card: String,
    kind: ParseErrorKind,
}

impl ParseError {
    pub(crate) fn at_line(line: usize, column: usize, card: &str, kind: ParseErrorKind) -> Self {
        Self { line, column, card: clip_card_text(card), kind }
    }

    /// 1-based physical line of the problem (for a multi-line card, the line
    /// of the offending token, not necessarily the card's first line).
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the offending token.
    pub fn column(&self) -> usize {
        self.column
    }

    /// The offending card's text (whitespace-normalised, clipped to 100
    /// characters). Empty for deck-level errors with no single card.
    pub fn card(&self) -> &str {
        &self.card
    }

    /// The structured error kind.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }

    /// One-line fix suggestion.
    pub fn hint(&self) -> &'static str {
        self.kind.hint()
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at line {}, column {}: ", self.line, self.column)?;
        self.kind.message(f)?;
        if !self.card.is_empty() {
            write!(f, "\n  card: {}", self.card)?;
        }
        write!(f, "\n  hint: {}", self.hint())
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            ParseErrorKind::Element { error } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_positioned_and_hinted() {
        let err = ParseError::at_line(
            4,
            11,
            "R1 in out 1..5",
            ParseErrorKind::BadNumber { token: "1..5".into() },
        );
        let text = err.to_string();
        assert_eq!(
            text,
            "error at line 4, column 11: invalid number \"1..5\"\n  card: R1 in out 1..5\n  hint: values are a decimal number with an optional SI suffix (f p n u m k meg g t)"
        );
        assert_eq!(err.line(), 4);
        assert_eq!(err.column(), 11);
        assert_eq!(err.card(), "R1 in out 1..5");
    }

    #[test]
    fn deck_level_errors_omit_the_card_line() {
        let err = ParseError::at_line(1, 1, "", ParseErrorKind::EmptyDeck);
        assert!(!err.to_string().contains("card:"));
        assert!(err.to_string().contains("hint:"));
    }

    #[test]
    fn long_cards_are_clipped() {
        let long = "R1 ".to_owned() + &"x".repeat(300);
        let err =
            ParseError::at_line(1, 1, &long, ParseErrorKind::ExtraToken { token: "x".into() });
        assert!(err.card().chars().count() <= 101);
        assert!(err.card().ends_with('…'));
    }

    #[test]
    fn element_errors_expose_a_source() {
        let err = ParseError::at_line(
            2,
            1,
            "R1 a 0 -5",
            ParseErrorKind::Element {
                error: CircuitError::Element {
                    name: "R1".into(),
                    source: Box::new(CircuitError::InvalidValue {
                        what: "resistance",
                        value: -5.0,
                    }),
                },
            },
        );
        assert!(Error::source(&err).is_some());
        assert!(err.to_string().contains("element \"R1\""));
    }

    #[test]
    fn every_kind_has_a_nonempty_hint() {
        let kinds = vec![
            ParseErrorKind::DanglingContinuation,
            ParseErrorKind::EmptyDeck,
            ParseErrorKind::UnknownCard { leader: "Q1".into() },
            ParseErrorKind::UnknownDirective { name: ".model".into() },
            ParseErrorKind::MissingToken { expected: "a node name" },
            ParseErrorKind::ExtraToken { token: "x".into() },
            ParseErrorKind::BadNumber { token: "x".into() },
            ParseErrorKind::UnknownWaveform { token: "SIN".into() },
            ParseErrorKind::DuplicateElement { name: "R1".into() },
            ParseErrorKind::UnknownInductorRef { name: "L9".into() },
            ParseErrorKind::DuplicateSubckt { name: "cell".into() },
            ParseErrorKind::NestedSubckt,
            ParseErrorKind::EndsWithoutSubckt,
            ParseErrorKind::MismatchedEnds { expected: "a".into(), found: "b".into() },
            ParseErrorKind::UnclosedSubckt { name: "cell".into() },
            ParseErrorKind::UnknownSubckt { name: "cell".into() },
            ParseErrorKind::PortCountMismatch { subckt: "cell".into(), expected: 2, found: 3 },
            ParseErrorKind::UnknownParameter { name: "w".into() },
            ParseErrorKind::BadParameter { token: "=".into() },
            ParseErrorKind::RecursionLimit { name: "cell".into() },
            ParseErrorKind::CardAfterEnd,
            ParseErrorKind::NodesListsGround,
            ParseErrorKind::DuplicateNode { name: "a".into() },
            ParseErrorKind::Element { error: CircuitError::EmptyCircuit },
        ];
        for kind in kinds {
            let err = ParseError::at_line(1, 1, "card", kind);
            assert!(!err.hint().is_empty());
            assert!(err.to_string().starts_with("error at line 1, column 1: "));
        }
    }
}
