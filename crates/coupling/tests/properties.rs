//! Property and equivalence tests of the coupled-bus subsystem.
//!
//! Three exactness properties pin the coupled-ladder construction to known
//! references:
//!
//! * a 2-line bus with *zero* coupling is two independent lines, so each
//!   output must match the single-line ladder simulation sample-for-sample;
//! * for a *symmetric* 2-line bus, even-mode switching (both wires rise
//!   together) is exactly the decoupled line `(L+M, Cg)` and odd-mode
//!   switching (one rises while the other falls from the supply) is exactly
//!   the decoupled line `(L−M, Cg+2·Cc)` — the classical modal decomposition
//!   holds exactly for the lumped network too;
//! * the dense and banded solver backends must agree on a coupled
//!   2-line × 100-section bus, which exercises the mutual-inductance stamps
//!   on a wider-bandwidth system than any single-line ladder.

use proptest::prelude::*;

use rlckit_circuit::ladder::{LadderSpec, SegmentStyle};
use rlckit_circuit::transient::{run_transient, TransientOptions};
use rlckit_circuit::SolverBackend;
use rlckit_coupling::bus::{ConductorRole, CoupledBus};
use rlckit_coupling::crosstalk::{simulate_bus, suggested_options};
use rlckit_coupling::netlist::{build_bus_circuit, BusDrive};
use rlckit_coupling::scenario::{LineDrive, SwitchingPattern};
use rlckit_units::{Capacitance, Length, Resistance, Voltage};

const SECTIONS: usize = 10;

/// Per-unit-length line parameters drawn over a physically plausible range
/// (about a 0.18 µm global/intermediate wire, 1 mm long).
#[derive(Debug, Clone, Copy)]
struct LineParams {
    /// Ω/m.
    r: f64,
    /// H/m (self).
    l: f64,
    /// F/m to ground.
    cg: f64,
    /// F/m to the neighbour.
    cc: f64,
    /// Inductive coupling coefficient.
    k: f64,
}

fn arb_params() -> impl Strategy<Value = LineParams> {
    (1e3f64..5e4, 1e-7f64..8e-7, 5e-11f64..4e-10, 0.0f64..3e-10, 0.05f64..0.7)
        .prop_map(|(r, l, cg, cc, k)| LineParams { r, l, cg, cc, k })
}

fn drive() -> BusDrive {
    BusDrive::new(
        Resistance::from_ohms(150.0),
        Capacitance::from_femtofarads(80.0),
        Voltage::from_volts(1.0),
    )
    .with_sections(SECTIONS)
}

fn two_line_bus(p: LineParams, cc: f64, k: f64) -> CoupledBus {
    let m = k * p.l;
    CoupledBus::from_matrices(
        vec![p.r; 2],
        vec![vec![p.l, m], vec![m, p.l]],
        vec![p.cg; 2],
        vec![vec![0.0, cc], vec![cc, 0.0]],
        vec![ConductorRole::Signal; 2],
        Length::from_millimeters(1.0),
    )
    .expect("bus parameters are valid by construction")
}

fn single_line_bus(p: LineParams, l: f64, cg: f64) -> CoupledBus {
    CoupledBus::from_matrices(
        vec![p.r],
        vec![vec![l]],
        vec![cg],
        vec![vec![0.0]],
        vec![ConductorRole::Signal],
        Length::from_millimeters(1.0),
    )
    .expect("line parameters are valid by construction")
}

/// Maximum absolute difference between two equally sampled waveforms (volts).
fn max_divergence(a: &rlckit_circuit::Waveform, b: &rlckit_circuit::Waveform) -> f64 {
    assert_eq!(a.len(), b.len(), "waveforms must share the sample grid");
    a.values().iter().zip(b.values()).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

proptest! {
    // Transient simulations are comparatively expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn zero_coupling_bus_is_two_independent_lines(p in arb_params()) {
        let bus = two_line_bus(p, 0.0, 0.0);
        let drive = drive();
        let options = suggested_options(&bus, &drive).expect("options");
        // Opposite activity on the two wires: any leakage between them would
        // show up immediately.
        let pattern =
            SwitchingPattern::new(vec![LineDrive::Rising, LineDrive::Falling]).expect("pattern");
        let sim = simulate_bus(&bus, &pattern, &drive, &options).expect("bus simulates");

        // Reference: the single-line ladder builder of rlckit-circuit, which
        // produces the identical π-topology for one line.
        let spec = LadderSpec {
            total_resistance: Resistance::from_ohms(p.r * 1e-3),
            total_inductance: rlckit_units::Inductance::from_henries(p.l * 1e-3),
            total_capacitance: Capacitance::from_farads(p.cg * 1e-3),
            segments: SECTIONS,
            style: SegmentStyle::Pi,
            driver_resistance: drive.driver_resistance,
            load_capacitance: drive.load_capacitance,
            supply: drive.supply,
        };
        let line = spec.build().expect("ladder builds");
        let reference = run_transient(&line.circuit, &options).expect("ladder simulates");

        let rising = sim.output(0).expect("line 0 waveform");
        let want = reference.node_voltage(line.output);
        let err = max_divergence(&rising, &want);
        prop_assert!(err < 1e-9, "uncoupled bus line diverges from the ladder by {err}");
    }

    #[test]
    fn even_and_odd_modes_match_their_decoupled_lines(p in arb_params()) {
        let bus = two_line_bus(p, p.cc, p.k);
        let drive = drive();
        let options = suggested_options(&bus, &drive).expect("options");

        // Even mode: both wires rise together ⇒ the coupling capacitor is
        // currentless and the mutual flux aids ⇒ the line (L+M, Cg).
        let even = simulate_bus(
            &bus,
            &SwitchingPattern::even_mode(2).expect("pattern"),
            &drive,
            &options,
        )
        .expect("even mode simulates");
        let even_line = simulate_bus(
            &single_line_bus(p, p.l * (1.0 + p.k), p.cg),
            &SwitchingPattern::even_mode(1).expect("pattern"),
            &drive,
            &options,
        )
        .expect("even-mode line simulates");
        let err = max_divergence(
            &even.output(0).expect("wave"),
            &even_line.output(0).expect("wave"),
        );
        prop_assert!(err < 1e-9, "even mode diverges from (L+M, Cg) by {err}");

        // Odd mode: wire 0 rises while wire 1 falls from the supply. The
        // common mode is constant at Vdd/2, so wire 0 is exactly the step
        // response of the line (L−M, Cg+2·Cc).
        let odd = simulate_bus(
            &bus,
            &SwitchingPattern::odd_mode(0, 2).expect("pattern"),
            &drive,
            &options,
        )
        .expect("odd mode simulates");
        let odd_line = simulate_bus(
            &single_line_bus(p, p.l * (1.0 - p.k), p.cg + 2.0 * p.cc),
            &SwitchingPattern::even_mode(1).expect("pattern"),
            &drive,
            &options,
        )
        .expect("odd-mode line simulates");
        let err = max_divergence(
            &odd.output(0).expect("wave"),
            &odd_line.output(0).expect("wave"),
        );
        prop_assert!(err < 1e-9, "odd mode diverges from (L−M, Cg+2Cc) by {err}");
    }
}

/// Acceptance criterion: the mutual-inductance stamps keep the dense and
/// banded backends in lockstep on a coupled 2-line × 100-section bus.
#[test]
fn backends_agree_on_a_coupled_two_line_bus() {
    let p = LineParams { r: 6.5e3, l: 5e-7, cg: 2.1e-10, cc: 1e-10, k: 0.35 };
    let bus = two_line_bus(p, p.cc, p.k);
    let drive = drive().with_sections(100);
    let pattern = SwitchingPattern::odd_mode(0, 2).expect("pattern");
    let built = build_bus_circuit(&bus, &pattern, &drive).expect("bus builds");

    let suggested = suggested_options(&bus, &drive).expect("options");
    // A short fixed window keeps the dense O(n³) factorisation affordable
    // while still exercising 120 substitution steps.
    let step = suggested.step;
    let options = TransientOptions::new(step * 120.0, step);

    let dense = run_transient(&built.circuit, &options.with_backend(SolverBackend::Dense))
        .expect("dense simulates");
    let banded = run_transient(&built.circuit, &options.with_backend(SolverBackend::Banded))
        .expect("banded simulates");
    assert_eq!(dense.backend(), rlckit_circuit::ResolvedBackend::Dense);
    assert_eq!(banded.backend(), rlckit_circuit::ResolvedBackend::Banded);

    for &node in &built.outputs {
        let d = dense.node_voltage(node);
        let b = banded.node_voltage(node);
        let err = max_divergence(&d, &b);
        assert!(err < 1e-9, "backends diverge by {err} at node {node:?}");
    }
}

/// The odd/even/isolated delay ordering holds for the shipped 3-line example
/// scenario, with the quiet-victim noise dropping behind shields — the
/// qualitative crosstalk result of the acceptance criteria, checked through
/// the public evaluator.
#[test]
fn shield_insertion_reduces_noise_on_the_three_line_bus() {
    use rlckit_coupling::bus::UniformBusSpec;
    use rlckit_coupling::shield::evaluate_shielding;
    use rlckit_units::{CapacitancePerLength, InductancePerLength, ResistancePerLength};

    let spec = UniformBusSpec {
        lines: 3,
        resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
        self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
        ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
        coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
        inductive_coupling: vec![0.35, 0.15],
        length: Length::from_millimeters(4.0),
    };
    let drive = BusDrive::new(
        Resistance::from_ohms(112.5),
        Capacitance::from_femtofarads(120.0),
        Voltage::from_volts(1.8),
    )
    .with_sections(8);
    let eval = evaluate_shielding(&spec, 1, &drive).expect("evaluation runs");
    assert!(eval.unshielded.odd_mode_delay > eval.unshielded.isolated_delay);
    assert!(eval.unshielded.even_mode_delay < eval.unshielded.isolated_delay);
    assert!(eval.noise_reduction() > 1.5);
}
