//! Coupled multi-conductor buses: crosstalk, shields and bus-aware repeaters.
//!
//! The source paper treats one isolated RLC line, but real global interconnect
//! is a *bus*: neighbouring wires couple through capacitance and mutual
//! inductance, and the switching pattern of the neighbours shifts both the
//! delay and the noise of every wire. This crate builds that workload on top
//! of the [`MutualInductor`](rlckit_circuit::netlist::Element::MutualInductor)
//! element of `rlckit-circuit`:
//!
//! * [`bus`] — [`CoupledBus`]: per-unit-length RLC matrices (`C`-ground +
//!   `C`-coupling, `L`-self + `L`-mutual), the symmetric [`UniformBusSpec`]
//!   builder and grounded-shield interleaving;
//! * [`scenario`] — switching patterns: victim-quiet, odd mode, even mode and
//!   arbitrary aggressor vectors;
//! * [`netlist`] — the N-line × M-section coupled-ladder circuit builder;
//! * [`crosstalk`] — transient simulation of a pattern plus the victim
//!   metrics: peak noise, odd/even-mode delays and push-out/pull-in against
//!   the isolated-line baseline;
//! * [`shield`] — before/after evaluation of grounded shield insertion;
//! * [`repeater`] — how the paper's closed-form RLC repeater optimum shifts
//!   under worst-case (odd-mode) switching.
//!
//! # Example: crosstalk on a 3-wire 0.18 µm bus
//!
//! ```
//! use rlckit_coupling::bus::UniformBusSpec;
//! use rlckit_coupling::crosstalk::crosstalk_metrics;
//! use rlckit_coupling::netlist::BusDrive;
//! use rlckit_units::{
//!     Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
//!     ResistancePerLength, Voltage,
//! };
//!
//! # fn main() -> Result<(), rlckit_coupling::CouplingError> {
//! let bus = UniformBusSpec {
//!     lines: 3,
//!     resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
//!     self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
//!     ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
//!     coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
//!     inductive_coupling: vec![0.35, 0.15],
//!     length: Length::from_millimeters(3.0),
//! }
//! .build()?;
//! let drive = BusDrive::new(
//!     Resistance::from_ohms(112.5),
//!     Capacitance::from_femtofarads(120.0),
//!     Voltage::from_volts(1.8),
//! )
//! .with_sections(8);
//! let metrics = crosstalk_metrics(&bus, 1, &drive)?;
//! assert!(metrics.odd_mode_delay > metrics.even_mode_delay);
//! assert!(metrics.victim_peak_noise.volts() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod crosstalk;
pub mod error;
pub mod netlist;
pub mod repeater;
pub mod scenario;
pub mod shield;

pub use bus::{ConductorRole, CoupledBus, UniformBusSpec};
pub use crosstalk::{crosstalk_metrics, simulate_bus, BusTransient, CrosstalkMetrics};
pub use error::CouplingError;
pub use netlist::{build_bus_circuit, BusCircuit, BusDrive};
pub use repeater::{evaluate_bus_repeaters, BusRepeaterShift};
pub use scenario::{LineDrive, SwitchingPattern};
pub use shield::{evaluate_shielding, ShieldingEvaluation};
