//! Coupled-ladder netlist construction: N conductors × M π-sections.
//!
//! Every conductor is discretised exactly like the single-line
//! [`LadderSpec`](rlckit_circuit::ladder::LadderSpec) π-ladder: half the
//! shunt capacitance on each side of the series `R·dx`–`L·dx` impedance.
//! On top of that, each section boundary carries the conductor-to-conductor
//! coupling capacitors `Cc_ij·dx` (π-split like the ground capacitance), and
//! the section inductors of different conductors are magnetically coupled
//! with the coefficient `k_ij` of the bus — `k` is dimensionless, so it is
//! the same for every section regardless of `M`.
//!
//! Signal conductors are driven by a step/PWL source behind the driver
//! resistance and loaded by the receiver capacitance; shield conductors are
//! tied to ground at **both** ends through the shield tie resistance.

use rlckit_circuit::{Circuit, NodeId, SourceId, SourceWaveform};
use rlckit_units::{Capacitance, Resistance, Voltage};

use crate::bus::{ConductorRole, CoupledBus};
use crate::error::CouplingError;
use crate::scenario::{LineDrive, SwitchingPattern};

/// Electrical environment of a simulated bus: drivers, loads, discretisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusDrive {
    /// Output resistance of every signal driver (zero allowed: ideal driver).
    pub driver_resistance: Resistance,
    /// Receiver input capacitance on every signal wire (zero allowed).
    pub load_capacitance: Capacitance,
    /// Supply voltage (the swing of rising/falling edges).
    pub supply: Voltage,
    /// Number of lumped π-sections per conductor.
    pub sections: usize,
    /// Resistance of the shield-to-ground ties at each end of every shield
    /// conductor (kept small; zero is allowed and grounds the shield ideally).
    pub shield_tie_resistance: Resistance,
}

impl BusDrive {
    /// A drive with 24 sections and a 1 Ω shield tie.
    pub fn new(driver: Resistance, load: Capacitance, supply: Voltage) -> Self {
        Self {
            driver_resistance: driver,
            load_capacitance: load,
            supply,
            sections: 24,
            shield_tie_resistance: Resistance::from_ohms(1.0),
        }
    }

    /// Returns a copy with a different section count.
    #[must_use]
    pub fn with_sections(mut self, sections: usize) -> Self {
        self.sections = sections;
        self
    }

    fn validate(&self) -> Result<(), CouplingError> {
        let non_negative = |v: f64, what: &'static str| -> Result<(), CouplingError> {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(CouplingError::InvalidParameter { what, value: v })
            }
        };
        non_negative(self.driver_resistance.ohms(), "driver resistance")?;
        non_negative(self.load_capacitance.farads(), "load capacitance")?;
        non_negative(self.shield_tie_resistance.ohms(), "shield tie resistance")?;
        if !(self.supply.volts() > 0.0) || !self.supply.volts().is_finite() {
            return Err(CouplingError::InvalidParameter {
                what: "supply voltage",
                value: self.supply.volts(),
            });
        }
        if self.sections == 0 {
            return Err(CouplingError::InvalidParameter { what: "section count", value: 0.0 });
        }
        Ok(())
    }
}

/// A built coupled-bus circuit plus its interesting nodes.
#[derive(Debug, Clone)]
pub struct BusCircuit {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// The source driving each conductor, in conductor order.
    pub sources: Vec<SourceId>,
    /// Line input node of each conductor (after the driver/tie resistance).
    pub inputs: Vec<NodeId>,
    /// Far-end output node of each conductor.
    pub outputs: Vec<NodeId>,
    pub(crate) drives: Vec<LineDrive>,
    pub(crate) supply: Voltage,
    /// Conductor index of each signal wire, precomputed at build time.
    signal_conductors: Vec<usize>,
}

impl BusCircuit {
    /// Output node of signal wire `signal` (shields are skipped in the count).
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::LineIndex`] for an out-of-range signal wire.
    pub fn signal_output(&self, signal: usize) -> Result<NodeId, CouplingError> {
        Ok(self.outputs[self.signal_conductor(signal)?])
    }

    /// Conductor index of signal wire `signal` (shields skipped in the count).
    pub(crate) fn signal_conductor(&self, signal: usize) -> Result<usize, CouplingError> {
        self.signal_conductors
            .get(signal)
            .copied()
            .ok_or(CouplingError::LineIndex { index: signal, lines: self.signal_conductors.len() })
    }
}

/// Builds the driven N×M coupled-ladder circuit for a bus, a switching
/// pattern (one drive per *signal* wire) and a [`BusDrive`].
///
/// # Errors
///
/// Returns [`CouplingError::InvalidParameter`] if the pattern length does not
/// match the number of signal wires or the drive is invalid, and propagates
/// circuit-construction errors.
pub fn build_bus_circuit(
    bus: &CoupledBus,
    pattern: &SwitchingPattern,
    drive: &BusDrive,
) -> Result<BusCircuit, CouplingError> {
    drive.validate()?;
    let n = bus.conductors();
    let signals = bus.signal_indices();
    if pattern.lines() != signals.len() {
        return Err(CouplingError::InvalidParameter {
            what: "switching pattern length (must equal the number of signal wires)",
            value: pattern.lines() as f64,
        });
    }
    let m = drive.sections;
    let dx = bus.length().meters() / m as f64;

    // Conductor-order drives: pattern entries for signals, Quiet for shields.
    let mut drives = vec![LineDrive::Quiet; n];
    for (slot, &conductor) in signals.iter().enumerate() {
        drives[conductor] = pattern.drive(slot)?;
    }

    let mut circuit = Circuit::new();
    let gnd = circuit.ground();
    let mut sources = Vec::with_capacity(n);
    let mut inputs = Vec::with_capacity(n);
    for (i, line_drive) in drives.iter().enumerate() {
        let source_node = circuit.add_node();
        let waveform = match bus.role(i) {
            ConductorRole::Signal => line_drive.waveform(drive.supply),
            ConductorRole::Shield => SourceWaveform::Dc { level: Voltage::ZERO },
        };
        sources.push(circuit.add_voltage_source(source_node, gnd, waveform)?);
        let series = match bus.role(i) {
            ConductorRole::Signal => drive.driver_resistance,
            ConductorRole::Shield => drive.shield_tie_resistance,
        };
        let input = if series.ohms() > 0.0 {
            let node = circuit.add_node();
            circuit.add_resistor(source_node, node, series)?;
            node
        } else {
            source_node
        };
        inputs.push(input);
    }

    let mut prev = inputs.clone();
    for _ in 0..m {
        stamp_shunt_halves(&mut circuit, bus, &prev, dx)?;
        let mut next = Vec::with_capacity(n);
        let mut section_inductors = Vec::with_capacity(n);
        for (i, &near) in prev.iter().enumerate() {
            let mid = circuit.add_node();
            let far = circuit.add_node();
            circuit.add_resistor(
                near,
                mid,
                Resistance::from_ohms(bus.resistance(i).ohms_per_meter() * dx),
            )?;
            let l = circuit.add_inductor(
                mid,
                far,
                rlckit_units::Inductance::from_henries(
                    bus.self_inductance(i).henries_per_meter() * dx,
                ),
            )?;
            section_inductors.push(l);
            next.push(far);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let k = bus.coupling_coefficient(i, j);
                if k != 0.0 {
                    circuit.add_mutual_inductor(section_inductors[i], section_inductors[j], k)?;
                }
            }
        }
        stamp_shunt_halves(&mut circuit, bus, &next, dx)?;
        prev = next;
    }

    for (i, &output) in prev.iter().enumerate() {
        match bus.role(i) {
            ConductorRole::Signal => {
                if drive.load_capacitance.farads() > 0.0 {
                    circuit.add_capacitor(output, gnd, drive.load_capacitance)?;
                }
            }
            ConductorRole::Shield => {
                // Ground the far end of the shield too.
                if drive.shield_tie_resistance.ohms() > 0.0 {
                    circuit.add_resistor(output, gnd, drive.shield_tie_resistance)?;
                } else {
                    circuit.add_voltage_source(
                        output,
                        gnd,
                        SourceWaveform::Dc { level: Voltage::ZERO },
                    )?;
                }
            }
        }
    }

    Ok(BusCircuit {
        circuit,
        sources,
        inputs,
        outputs: prev,
        drives,
        supply: drive.supply,
        signal_conductors: signals,
    })
}

/// Stamps half of every shunt capacitance (ground and coupling) at one
/// section boundary — the π-split; interior boundaries receive two halves.
fn stamp_shunt_halves(
    circuit: &mut Circuit,
    bus: &CoupledBus,
    nodes: &[NodeId],
    dx: f64,
) -> Result<(), CouplingError> {
    let gnd = circuit.ground();
    for (i, &node) in nodes.iter().enumerate() {
        let cg = bus.ground_capacitance(i).farads_per_meter() * dx;
        circuit.add_capacitor(node, gnd, rlckit_units::Capacitance::from_farads(cg / 2.0))?;
    }
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            let cc = bus.coupling_capacitance(i, j).farads_per_meter() * dx;
            if cc > 0.0 {
                circuit.add_capacitor(
                    nodes[i],
                    nodes[j],
                    rlckit_units::Capacitance::from_farads(cc / 2.0),
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::UniformBusSpec;
    use rlckit_units::{CapacitancePerLength, InductancePerLength, Length, ResistancePerLength};

    fn bus() -> CoupledBus {
        UniformBusSpec {
            lines: 3,
            resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
            self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
            ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            inductive_coupling: vec![0.35, 0.15],
            length: Length::from_millimeters(5.0),
        }
        .build()
        .unwrap()
    }

    fn drive() -> BusDrive {
        BusDrive::new(
            Resistance::from_ohms(120.0),
            Capacitance::from_femtofarads(100.0),
            Voltage::from_volts(1.8),
        )
        .with_sections(4)
    }

    #[test]
    fn build_produces_expected_topology() {
        let bus = bus();
        let pattern = SwitchingPattern::even_mode(3).unwrap();
        let built = build_bus_circuit(&bus, &pattern, &drive()).unwrap();
        assert_eq!(built.sources.len(), 3);
        assert_eq!(built.inputs.len(), 3);
        assert_eq!(built.outputs.len(), 3);
        // Per conductor: source + driver R + per section (R + L) + load C;
        // per section: 3 ground-half-C per boundary pair (2×3) and 2 coupling
        // halves per boundary (adjacent pairs only) and 3 mutual K elements.
        let m = 4;
        let expected = 3 * (1 + 1) // sources + driver resistors
            + m * (3 * 2)          // series R and L
            + m * 2 * 3            // ground cap halves (2 boundaries/section)
            + m * 2 * 2            // coupling cap halves (2 adjacent pairs)
            + m * 3                // mutual K elements (3 pairs, all k != 0)
            + 3; // load caps
        assert_eq!(built.circuit.elements().len(), expected);
        assert_eq!(built.signal_output(1).unwrap(), built.outputs[1]);
        assert!(built.signal_output(3).is_err());
    }

    #[test]
    fn shields_are_grounded_and_take_no_pattern_entry() {
        let shielded = UniformBusSpec {
            lines: 2,
            resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
            self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
            ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            inductive_coupling: vec![0.35, 0.15],
            length: Length::from_millimeters(5.0),
        }
        .build_shielded()
        .unwrap();
        assert_eq!(shielded.conductors(), 3);
        // The pattern covers the two signal wires only.
        let pattern = SwitchingPattern::even_mode(2).unwrap();
        let built = build_bus_circuit(&shielded, &pattern, &drive()).unwrap();
        assert_eq!(built.sources.len(), 3);
        // Signal outputs skip the shield in the middle.
        assert_eq!(built.signal_output(1).unwrap(), built.outputs[2]);
        // A three-entry pattern no longer matches the two signal wires.
        let wrong = SwitchingPattern::even_mode(3).unwrap();
        assert!(build_bus_circuit(&shielded, &wrong, &drive()).is_err());
    }

    #[test]
    fn invalid_drives_are_rejected() {
        let bus = bus();
        let pattern = SwitchingPattern::even_mode(3).unwrap();
        let mut bad = drive();
        bad.sections = 0;
        assert!(build_bus_circuit(&bus, &pattern, &bad).is_err());
        let mut bad = drive();
        bad.driver_resistance = Resistance::from_ohms(-1.0);
        assert!(build_bus_circuit(&bus, &pattern, &bad).is_err());
        let mut bad = drive();
        bad.supply = Voltage::ZERO;
        assert!(build_bus_circuit(&bus, &pattern, &bad).is_err());
    }
}
