//! Coupled-bus transient simulation and crosstalk metrics.
//!
//! [`simulate_bus`] runs one switching pattern through the MNA transient
//! solver (automatic dense/banded dispatch, like every analysis in the
//! workspace) and wraps the result in a [`BusTransient`] that knows which
//! conductor is which, so measurements can be asked for by *signal* index.
//!
//! [`crosstalk_metrics`] packages the paper-style summary for one victim
//! wire: peak noise when the victim is quiet under rising aggressors, the
//! odd-mode (worst-case) and even-mode (best-case) 50% delays, and the
//! push-out / pull-in of those delays relative to the isolated-line baseline
//! of [`CoupledBus::isolated_line`].

use rlckit_circuit::transient::{run_transient, TransientOptions, TransientResult};
use rlckit_circuit::{ResolvedBackend, Waveform};
use rlckit_units::{Time, Voltage};

use crate::bus::{ConductorRole, CoupledBus};
use crate::error::CouplingError;
use crate::netlist::{build_bus_circuit, BusCircuit, BusDrive};
use crate::scenario::{LineDrive, SwitchingPattern};

/// Transient options sized for a bus: the timestep resolves the fastest
/// section mode of the worst signal wire and the horizon covers the slowest
/// wire's RC and time-of-flight scales, both taken from the per-wire
/// isolated-line ladder heuristics.
///
/// # Errors
///
/// Propagates construction errors from the per-wire isolated lines.
pub fn suggested_options(
    bus: &CoupledBus,
    drive: &BusDrive,
) -> Result<TransientOptions, CouplingError> {
    let mut step = f64::INFINITY;
    let mut stop = 0.0f64;
    for i in bus.signal_indices() {
        let spec = bus.isolated_line(i)?.to_ladder_spec(
            drive.driver_resistance,
            drive.load_capacitance,
            drive.sections,
            drive.supply,
        );
        step = step.min(spec.suggested_timestep().seconds());
        stop = stop.max(spec.suggested_stop_time().seconds());
    }
    Ok(TransientOptions::new(Time::from_seconds(stop), Time::from_seconds(step)))
}

/// Result of one coupled-bus transient run.
#[derive(Debug, Clone)]
pub struct BusTransient {
    circuit: BusCircuit,
    result: TransientResult,
}

impl BusTransient {
    /// Voltage waveform at the far end of signal wire `signal`.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::LineIndex`] for an out-of-range signal wire.
    pub fn output(&self, signal: usize) -> Result<Waveform, CouplingError> {
        let node = self.circuit.signal_output(signal)?;
        Ok(self.result.node_voltage(node))
    }

    /// 50% propagation delay of a switching signal wire, measured in its own
    /// switching direction (rising wires upward, falling wires downward).
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::Measurement`] if the wire is not switching in
    /// this pattern or never crosses 50%.
    pub fn delay_50(&self, signal: usize) -> Result<Time, CouplingError> {
        let conductor = self.signal_conductor(signal)?;
        let wave = self.result.node_voltage(self.circuit.outputs[conductor]);
        let supply = self.circuit.supply;
        match self.circuit.drives[conductor] {
            LineDrive::Rising => wave.delay_50(supply).map_err(CouplingError::from),
            LineDrive::Falling => {
                // Measure the fall as a rise of the complementary waveform.
                let flipped: Vec<f64> = wave.values().iter().map(|v| supply.volts() - v).collect();
                Waveform::from_samples(wave.times().to_vec(), flipped)?
                    .delay_50(supply)
                    .map_err(CouplingError::from)
            }
            LineDrive::Quiet | LineDrive::QuietHigh => Err(CouplingError::Measurement {
                reason: format!("signal wire {signal} is quiet in this pattern"),
            }),
        }
    }

    /// Peak deviation of a quiet signal wire from its steady level — the
    /// crosstalk noise coupled in by the aggressors.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::Measurement`] if the wire switches in this
    /// pattern (its excursion is signal, not noise).
    pub fn peak_noise(&self, signal: usize) -> Result<Voltage, CouplingError> {
        let conductor = self.signal_conductor(signal)?;
        let drive = self.circuit.drives[conductor];
        if drive.is_switching() {
            return Err(CouplingError::Measurement {
                reason: format!("signal wire {signal} switches in this pattern"),
            });
        }
        let steady = drive.final_level(self.circuit.supply).volts();
        let wave = self.result.node_voltage(self.circuit.outputs[conductor]);
        let peak = wave.values().iter().map(|v| (v - steady).abs()).fold(0.0f64, f64::max);
        Ok(Voltage::from_volts(peak))
    }

    /// Which solver kernel ran the transient.
    pub fn backend(&self) -> ResolvedBackend {
        self.result.backend()
    }

    /// The underlying transient result (all conductors, all unknowns).
    pub fn result(&self) -> &TransientResult {
        &self.result
    }

    fn signal_conductor(&self, signal: usize) -> Result<usize, CouplingError> {
        self.circuit.signal_conductor(signal)
    }
}

/// Builds and simulates one switching pattern on a bus.
///
/// # Errors
///
/// Propagates netlist-construction and transient-analysis errors.
pub fn simulate_bus(
    bus: &CoupledBus,
    pattern: &SwitchingPattern,
    drive: &BusDrive,
    options: &TransientOptions,
) -> Result<BusTransient, CouplingError> {
    let circuit = build_bus_circuit(bus, pattern, drive)?;
    let result = run_transient(&circuit.circuit, options)?;
    Ok(BusTransient { circuit, result })
}

/// Paper-style crosstalk summary for one victim wire of a bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkMetrics {
    /// Peak noise on the quiet victim while every aggressor rises.
    pub victim_peak_noise: Voltage,
    /// Victim 50% delay when its neighbours switch the opposite way.
    pub odd_mode_delay: Time,
    /// Victim 50% delay when the whole bus switches together.
    pub even_mode_delay: Time,
    /// 50% delay of the victim's isolated-line equivalent
    /// ([`CoupledBus::isolated_line`]), simulated with the same drive and
    /// discretisation.
    pub isolated_delay: Time,
}

impl CrosstalkMetrics {
    /// Worst-case delay push-out, `odd − isolated`.
    pub fn pushout(&self) -> Time {
        self.odd_mode_delay - self.isolated_delay
    }

    /// Best-case delay pull-in, `isolated − even`.
    pub fn pullin(&self) -> Time {
        self.isolated_delay - self.even_mode_delay
    }

    /// Odd-to-even delay spread as a fraction of the isolated delay.
    pub fn delay_spread_fraction(&self) -> f64 {
        (self.odd_mode_delay.seconds() - self.even_mode_delay.seconds())
            / self.isolated_delay.seconds()
    }

    /// Peak victim noise as a fraction of the supply.
    pub fn noise_fraction(&self, supply: Voltage) -> f64 {
        self.victim_peak_noise.volts() / supply.volts()
    }
}

/// Runs the three canonical patterns (victim-quiet, odd mode, even mode) plus
/// the isolated-line baseline and collects the victim's crosstalk metrics.
///
/// The horizon is extended (×4, up to three times) if a delay measurement
/// does not cross 50% within the suggested window.
///
/// # Errors
///
/// Propagates construction/simulation errors, or the last measurement error
/// if a delay never crosses 50% even after extending the horizon.
pub fn crosstalk_metrics(
    bus: &CoupledBus,
    victim: usize,
    drive: &BusDrive,
) -> Result<CrosstalkMetrics, CouplingError> {
    let lines = bus.signal_count();
    bus.check_signal_index(victim)?;
    let options = suggested_options(bus, drive)?;

    let quiet =
        simulate_bus(bus, &SwitchingPattern::victim_quiet(victim, lines)?, drive, &options)?;
    let victim_peak_noise = quiet.peak_noise(victim)?;

    let odd_pattern = SwitchingPattern::odd_mode(victim, lines)?;
    let even_pattern = SwitchingPattern::even_mode(lines)?;
    let odd_mode_delay = delay_with_retry(bus, &odd_pattern, drive, &options, victim)?;
    let even_mode_delay = delay_with_retry(bus, &even_pattern, drive, &options, victim)?;

    let isolated = isolated_bus(bus, victim)?;
    let isolated_delay =
        delay_with_retry(&isolated, &SwitchingPattern::even_mode(1)?, drive, &options, 0)?;

    Ok(CrosstalkMetrics { victim_peak_noise, odd_mode_delay, even_mode_delay, isolated_delay })
}

/// The victim's isolated-line equivalent as a one-conductor bus, so the
/// baseline runs through exactly the same discretisation and solver path.
fn isolated_bus(bus: &CoupledBus, victim: usize) -> Result<CoupledBus, CouplingError> {
    let conductor = bus.check_signal_index(victim)?;
    let line = bus.isolated_line(conductor)?;
    CoupledBus::from_matrices(
        vec![line.resistance_per_length().ohms_per_meter()],
        vec![vec![line.inductance_per_length().henries_per_meter()]],
        vec![line.capacitance_per_length().farads_per_meter()],
        vec![vec![0.0]],
        vec![ConductorRole::Signal],
        bus.length(),
    )
}

/// Simulates a pattern and measures one signal wire's 50% delay, extending
/// the horizon (×4, up to three attempts) if it does not cross in time.
pub(crate) fn delay_with_retry(
    bus: &CoupledBus,
    pattern: &SwitchingPattern,
    drive: &BusDrive,
    options: &TransientOptions,
    victim: usize,
) -> Result<Time, CouplingError> {
    let mut options = *options;
    let mut last = None;
    for _ in 0..3 {
        let sim = simulate_bus(bus, pattern, drive, &options)?;
        match sim.delay_50(victim) {
            Ok(delay) => return Ok(delay),
            Err(e) => {
                last = Some(e);
                options.stop_time *= 4.0;
            }
        }
    }
    Err(last.unwrap_or(CouplingError::Measurement {
        reason: "victim delay could not be measured".to_owned(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::UniformBusSpec;
    use rlckit_units::{
        Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
        ResistancePerLength,
    };

    fn bus() -> CoupledBus {
        UniformBusSpec {
            lines: 3,
            resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
            self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
            ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            inductive_coupling: vec![0.35, 0.15],
            length: Length::from_millimeters(5.0),
        }
        .build()
        .unwrap()
    }

    fn drive() -> BusDrive {
        BusDrive::new(
            Resistance::from_ohms(112.5),
            Capacitance::from_femtofarads(120.0),
            Voltage::from_volts(1.8),
        )
        .with_sections(12)
    }

    #[test]
    fn quiet_victim_sees_noise_and_cannot_report_a_delay() {
        let bus = bus();
        let drive = drive();
        let options = suggested_options(&bus, &drive).unwrap();
        let pattern = SwitchingPattern::victim_quiet(1, 3).unwrap();
        let sim = simulate_bus(&bus, &pattern, &drive, &options).unwrap();
        let noise = sim.peak_noise(1).unwrap();
        assert!(
            noise.volts() > 0.05,
            "two rising aggressors must couple visible noise, got {noise}"
        );
        assert!(noise.volts() < 1.8, "noise cannot exceed the full swing");
        assert!(sim.delay_50(1).is_err());
        // The aggressors switch: their delays are measurable, their noise is not.
        assert!(sim.delay_50(0).is_ok());
        assert!(sim.peak_noise(0).is_err());
        assert!(sim.output(1).unwrap().len() > 100);
        assert!(sim.output(5).is_err());
    }

    #[test]
    fn crosstalk_metrics_reproduce_the_qualitative_ordering() {
        // The acceptance-criterion scenario: on a capacitively coupled bus,
        // odd-mode switching is slower and even-mode faster than the
        // isolated-line delay, and a quiet victim sees non-trivial noise.
        let metrics = crosstalk_metrics(&bus(), 1, &drive()).unwrap();
        assert!(
            metrics.odd_mode_delay > metrics.isolated_delay,
            "odd mode {} must be slower than isolated {}",
            metrics.odd_mode_delay,
            metrics.isolated_delay
        );
        assert!(
            metrics.even_mode_delay < metrics.isolated_delay,
            "even mode {} must be faster than isolated {}",
            metrics.even_mode_delay,
            metrics.isolated_delay
        );
        assert!(metrics.pushout().seconds() > 0.0);
        assert!(metrics.pullin().seconds() > 0.0);
        assert!(metrics.delay_spread_fraction() > 0.1);
        assert!(metrics.victim_peak_noise.volts() > 0.05);
        assert!(metrics.noise_fraction(Voltage::from_volts(1.8)) < 1.0);
    }

    #[test]
    fn falling_delays_are_measured_downward() {
        let bus = bus();
        let drive = drive();
        let options = suggested_options(&bus, &drive).unwrap();
        // All three wires fall together: even mode mirrored. The delay is
        // well-defined and close to the rising even-mode delay by symmetry.
        let falling = SwitchingPattern::new(vec![crate::scenario::LineDrive::Falling; 3]).unwrap();
        let rising = SwitchingPattern::even_mode(3).unwrap();
        let fall_sim = simulate_bus(&bus, &falling, &drive, &options).unwrap();
        let rise_sim = simulate_bus(&bus, &rising, &drive, &options).unwrap();
        let fall = fall_sim.delay_50(1).unwrap();
        let rise = rise_sim.delay_50(1).unwrap();
        let diff = (fall.seconds() - rise.seconds()).abs() / rise.seconds();
        assert!(diff < 1e-6, "fall {} vs rise {} differ by {diff}", fall, rise);
    }
}
