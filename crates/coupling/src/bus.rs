//! Coupled multi-conductor bus models.
//!
//! A [`CoupledBus`] describes `N` parallel conductors by their per-unit-length
//! matrices in SI units:
//!
//! * a diagonal series-resistance vector `R` (Ω/m);
//! * a symmetric inductance matrix `L` (H/m) whose diagonal holds the self
//!   inductances and whose off-diagonal entries hold the mutual inductances
//!   `M_ij = k_ij·sqrt(L_ii·L_jj)` with `|k_ij| < 1`;
//! * a ground-capacitance vector `Cg` (F/m) and a symmetric, zero-diagonal
//!   coupling-capacitance matrix `Cc` (F/m) between conductor pairs.
//!
//! This is the standard multi-conductor transmission-line decomposition: the
//! Maxwell capacitance matrix is `C_ii = Cg_i + Σ_j Cc_ij`, `C_ij = −Cc_ij`.
//! A positive `k_ij` means the conductors are dotted the same way — currents
//! flowing in the same physical direction produce aiding flux, the on-chip
//! situation for parallel bus wires over a common return.
//!
//! [`UniformBusSpec`] builds the common symmetric case (identical conductors
//! on a uniform pitch, coupling capacitance to nearest neighbours only and an
//! inductive-coupling falloff indexed by separation) and can interleave
//! grounded shield conductors between the signal wires.

use rlckit_interconnect::DistributedLine;
use rlckit_units::{CapacitancePerLength, InductancePerLength, Length, ResistancePerLength};

use crate::error::CouplingError;

/// Relative tolerance for symmetry checks on user-supplied matrices.
const SYMMETRY_TOL: f64 = 1e-9;

/// Cholesky-based positive-definiteness test of a symmetric matrix.
fn is_positive_definite(m: &[Vec<f64>]) -> bool {
    let n = m.len();
    let mut chol = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let dot: f64 = chol[i][..j].iter().zip(&chol[j][..j]).map(|(a, b)| a * b).sum();
            let sum = m[i][j] - dot;
            if i == j {
                if sum <= 0.0 {
                    return false;
                }
                chol[i][i] = sum.sqrt();
            } else {
                chol[i][j] = sum / chol[j][j];
            }
        }
    }
    true
}

/// What a conductor of the bus is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConductorRole {
    /// A signal wire, driven according to the switching pattern.
    Signal,
    /// A grounded shield wire (tied to ground at both ends when simulated).
    Shield,
}

/// An `N`-conductor coupled bus described by per-unit-length RLC matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledBus {
    /// Series resistance per conductor, Ω/m.
    resistance: Vec<f64>,
    /// Symmetric inductance matrix, H/m (diagonal self, off-diagonal mutual).
    inductance: Vec<Vec<f64>>,
    /// Capacitance to ground per conductor, F/m.
    ground_capacitance: Vec<f64>,
    /// Symmetric zero-diagonal conductor-to-conductor capacitance, F/m.
    coupling_capacitance: Vec<Vec<f64>>,
    roles: Vec<ConductorRole>,
    length: Length,
}

impl CoupledBus {
    /// Creates a bus from raw per-unit-length matrices in SI units
    /// (Ω/m, H/m, F/m).
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::Shape`] for mismatched dimensions, asymmetry,
    /// a non-zero `Cc` diagonal or a mutual term with `|k| ≥ 1`, and
    /// [`CouplingError::InvalidParameter`] for non-finite or non-positive
    /// entries where positivity is required.
    pub fn from_matrices(
        resistance: Vec<f64>,
        inductance: Vec<Vec<f64>>,
        ground_capacitance: Vec<f64>,
        coupling_capacitance: Vec<Vec<f64>>,
        roles: Vec<ConductorRole>,
        length: Length,
    ) -> Result<Self, CouplingError> {
        let n = resistance.len();
        if n == 0 {
            return Err(CouplingError::Shape { what: "a bus needs at least one conductor" });
        }
        if ground_capacitance.len() != n || roles.len() != n {
            return Err(CouplingError::Shape {
                what: "R, Cg and role vectors must have one entry per conductor",
            });
        }
        if inductance.len() != n || inductance.iter().any(|row| row.len() != n) {
            return Err(CouplingError::Shape { what: "L must be an N×N matrix" });
        }
        if coupling_capacitance.len() != n || coupling_capacitance.iter().any(|r| r.len() != n) {
            return Err(CouplingError::Shape { what: "Cc must be an N×N matrix" });
        }
        let positive = |v: f64, what: &'static str| -> Result<(), CouplingError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(CouplingError::InvalidParameter { what, value: v })
            }
        };
        for &r in &resistance {
            positive(r, "resistance per length")?;
        }
        for &c in &ground_capacitance {
            positive(c, "ground capacitance per length")?;
        }
        positive(length.meters(), "bus length")?;
        for i in 0..n {
            positive(inductance[i][i], "self inductance per length")?;
            if coupling_capacitance[i][i] != 0.0 {
                return Err(CouplingError::Shape { what: "Cc must have a zero diagonal" });
            }
            for j in 0..n {
                let (l, lt) = (inductance[i][j], inductance[j][i]);
                if !l.is_finite() {
                    return Err(CouplingError::InvalidParameter {
                        what: "mutual inductance per length",
                        value: l,
                    });
                }
                if (l - lt).abs() > SYMMETRY_TOL * l.abs().max(lt.abs()) {
                    return Err(CouplingError::Shape { what: "L must be symmetric" });
                }
                let cc = coupling_capacitance[i][j];
                if !cc.is_finite() || cc < 0.0 {
                    return Err(CouplingError::InvalidParameter {
                        what: "coupling capacitance per length",
                        value: cc,
                    });
                }
                if (cc - coupling_capacitance[j][i]).abs()
                    > SYMMETRY_TOL * cc.abs().max(coupling_capacitance[j][i].abs())
                {
                    return Err(CouplingError::Shape { what: "Cc must be symmetric" });
                }
            }
        }
        // |k| < 1 per pair (what the circuit-level K element enforces) for a
        // readable error on the common two-conductor mistake ...
        for i in 0..n {
            for j in (i + 1)..n {
                let k = inductance[i][j] / (inductance[i][i] * inductance[j][j]).sqrt();
                if k.abs() >= 1.0 {
                    return Err(CouplingError::Shape {
                        what: "inductive coupling must satisfy |k| < 1 for every pair",
                    });
                }
            }
        }
        // ... but for N ≥ 3 the pairwise bound is necessary, not sufficient:
        // the stored magnetic energy ½·Iᵀ·L·I must be positive for every
        // current vector, i.e. L must be positive definite, or transient
        // simulation diverges silently. Cholesky is the definitive check.
        if !is_positive_definite(&inductance) {
            return Err(CouplingError::Shape {
                what: "the inductance matrix must be positive definite \
                       (the conductors would store negative magnetic energy)",
            });
        }
        Ok(Self { resistance, inductance, ground_capacitance, coupling_capacitance, roles, length })
    }

    /// Number of conductors (signal wires plus shields).
    pub fn conductors(&self) -> usize {
        self.resistance.len()
    }

    /// Role of conductor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn role(&self, i: usize) -> ConductorRole {
        self.roles[i]
    }

    /// Indices of the signal conductors, in order.
    pub fn signal_indices(&self) -> Vec<usize> {
        (0..self.conductors()).filter(|&i| self.roles[i] == ConductorRole::Signal).collect()
    }

    /// Number of signal conductors.
    pub fn signal_count(&self) -> usize {
        self.roles.iter().filter(|r| **r == ConductorRole::Signal).count()
    }

    /// Bus length.
    pub fn length(&self) -> Length {
        self.length
    }

    /// Series resistance of conductor `i`.
    pub fn resistance(&self, i: usize) -> ResistancePerLength {
        ResistancePerLength::from_ohms_per_meter(self.resistance[i])
    }

    /// Self inductance of conductor `i`.
    pub fn self_inductance(&self, i: usize) -> InductancePerLength {
        InductancePerLength::from_henries_per_meter(self.inductance[i][i])
    }

    /// Mutual inductance between conductors `i` and `j` (zero for `i == j`).
    pub fn mutual_inductance(&self, i: usize, j: usize) -> InductancePerLength {
        let m = if i == j { 0.0 } else { self.inductance[i][j] };
        InductancePerLength::from_henries_per_meter(m)
    }

    /// Inductive coupling coefficient `k_ij = M_ij / sqrt(L_ii·L_jj)`
    /// (zero for `i == j`).
    pub fn coupling_coefficient(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.inductance[i][j] / (self.inductance[i][i] * self.inductance[j][j]).sqrt()
        }
    }

    /// Capacitance to ground of conductor `i`.
    pub fn ground_capacitance(&self, i: usize) -> CapacitancePerLength {
        CapacitancePerLength::from_farads_per_meter(self.ground_capacitance[i])
    }

    /// Coupling capacitance between conductors `i` and `j` (zero for `i == j`).
    pub fn coupling_capacitance(&self, i: usize, j: usize) -> CapacitancePerLength {
        let c = if i == j { 0.0 } else { self.coupling_capacitance[i][j] };
        CapacitancePerLength::from_farads_per_meter(c)
    }

    /// Returns the same bus with a new length (as repeater sectioning does).
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::InvalidParameter`] for a non-positive length.
    pub fn with_length(&self, length: Length) -> Result<Self, CouplingError> {
        if !(length.meters() > 0.0) || !length.meters().is_finite() {
            return Err(CouplingError::InvalidParameter {
                what: "bus length",
                value: length.meters(),
            });
        }
        let mut bus = self.clone();
        bus.length = length;
        Ok(bus)
    }

    /// Splits the bus into `sections` equal pieces, as repeater insertion does.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::InvalidParameter`] if `sections` is zero.
    pub fn section(&self, sections: usize) -> Result<Self, CouplingError> {
        if sections == 0 {
            return Err(CouplingError::InvalidParameter { what: "section count", value: 0.0 });
        }
        self.with_length(self.length / sections as f64)
    }

    /// The equivalent isolated line of conductor `i`: its own `R` and self
    /// `L`, with total capacitance `Cg + Σ_j Cc_ij` — the environment the
    /// conductor sees when every neighbour is held quiet at an ideal ground.
    /// This is the single-line baseline that crosstalk delay push-out and
    /// pull-in are measured against.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::LineIndex`] for an out-of-range conductor.
    pub fn isolated_line(&self, i: usize) -> Result<DistributedLine, CouplingError> {
        self.check_index(i)?;
        let cc_sum: f64 = self.coupling_capacitance[i].iter().sum();
        DistributedLine::new(
            ResistancePerLength::from_ohms_per_meter(self.resistance[i]),
            InductancePerLength::from_henries_per_meter(self.inductance[i][i]),
            CapacitancePerLength::from_farads_per_meter(self.ground_capacitance[i] + cc_sum),
            self.length,
        )
        .map_err(CouplingError::from)
    }

    pub(crate) fn check_index(&self, i: usize) -> Result<(), CouplingError> {
        if i < self.conductors() {
            Ok(())
        } else {
            Err(CouplingError::LineIndex { index: i, lines: self.conductors() })
        }
    }

    pub(crate) fn check_signal_index(&self, signal: usize) -> Result<usize, CouplingError> {
        self.signal_indices()
            .get(signal)
            .copied()
            .ok_or(CouplingError::LineIndex { index: signal, lines: self.signal_count() })
    }
}

/// Symmetric uniform-pitch bus description (the common layout: identical
/// conductors, coupling capacitance to nearest neighbours, inductive coupling
/// falling off with separation).
#[derive(Debug, Clone, PartialEq)]
pub struct UniformBusSpec {
    /// Number of signal wires.
    pub lines: usize,
    /// Series resistance of every conductor.
    pub resistance: ResistancePerLength,
    /// Self inductance of every conductor.
    pub self_inductance: InductancePerLength,
    /// Capacitance to ground of every conductor.
    pub ground_capacitance: CapacitancePerLength,
    /// Coupling capacitance between adjacent conductors (non-adjacent pairs
    /// are taken as uncoupled capacitively).
    pub coupling_capacitance: CapacitancePerLength,
    /// Inductive coupling coefficients by separation: `inductive_coupling[d-1]`
    /// is `k` for conductors `d` pitches apart; beyond the vector `k = 0`.
    /// Entries must satisfy `|k| < 1` and decrease in magnitude with distance.
    pub inductive_coupling: Vec<f64>,
    /// Bus length.
    pub length: Length,
}

impl UniformBusSpec {
    /// Builds the N-signal-wire bus (no shields).
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::InvalidParameter`] or [`CouplingError::Shape`]
    /// under the rules of [`CoupledBus::from_matrices`], including non-monotone
    /// or out-of-range coupling falloff.
    pub fn build(&self) -> Result<CoupledBus, CouplingError> {
        self.build_conductors(self.lines, false)
    }

    /// Builds the bus with a grounded shield conductor inserted between every
    /// pair of neighbouring signal wires (`2N − 1` conductors total; signals
    /// sit on even positions). The shields have the same per-unit-length
    /// parasitics as the signal wires; what changes for the signals is that
    /// their nearest capacitive neighbour is now a shield and the
    /// signal-to-signal inductive coupling drops to the separation-2 value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`UniformBusSpec::build`].
    pub fn build_shielded(&self) -> Result<CoupledBus, CouplingError> {
        if self.lines == 0 {
            return Err(CouplingError::InvalidParameter { what: "line count", value: 0.0 });
        }
        self.build_conductors(2 * self.lines - 1, true)
    }

    fn build_conductors(&self, n: usize, shielded: bool) -> Result<CoupledBus, CouplingError> {
        if self.lines == 0 {
            return Err(CouplingError::InvalidParameter { what: "line count", value: 0.0 });
        }
        for w in self.inductive_coupling.windows(2) {
            if w[1].abs() > w[0].abs() {
                return Err(CouplingError::Shape {
                    what: "inductive coupling must not grow with separation",
                });
            }
        }
        let r = self.resistance.ohms_per_meter();
        let l = self.self_inductance.henries_per_meter();
        let cg = self.ground_capacitance.farads_per_meter();
        let cc = self.coupling_capacitance.farads_per_meter();
        if !cc.is_finite() || cc < 0.0 {
            return Err(CouplingError::InvalidParameter {
                what: "coupling capacitance per length",
                value: cc,
            });
        }
        let k_at = |d: usize| self.inductive_coupling.get(d - 1).copied().unwrap_or(0.0);
        let mut inductance = vec![vec![0.0; n]; n];
        let mut coupling = vec![vec![0.0; n]; n];
        for i in 0..n {
            inductance[i][i] = l;
            for j in (i + 1)..n {
                let m = k_at(j - i) * l;
                inductance[i][j] = m;
                inductance[j][i] = m;
                if j - i == 1 {
                    coupling[i][j] = cc;
                    coupling[j][i] = cc;
                }
            }
        }
        let roles =
            (0..n)
                .map(|i| {
                    if shielded && i % 2 == 1 {
                        ConductorRole::Shield
                    } else {
                        ConductorRole::Signal
                    }
                })
                .collect();
        CoupledBus::from_matrices(vec![r; n], inductance, vec![cg; n], coupling, roles, self.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::Length;

    fn spec() -> UniformBusSpec {
        UniformBusSpec {
            lines: 3,
            resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
            self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
            ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            inductive_coupling: vec![0.35, 0.15],
            length: Length::from_millimeters(5.0),
        }
    }

    #[test]
    fn uniform_bus_has_expected_structure() {
        let bus = spec().build().unwrap();
        assert_eq!(bus.conductors(), 3);
        assert_eq!(bus.signal_count(), 3);
        assert_eq!(bus.signal_indices(), vec![0, 1, 2]);
        assert!((bus.coupling_coefficient(0, 1) - 0.35).abs() < 1e-12);
        assert!((bus.coupling_coefficient(0, 2) - 0.15).abs() < 1e-12);
        assert_eq!(bus.coupling_coefficient(1, 1), 0.0);
        // Coupling capacitance is nearest-neighbour only.
        assert!(bus.coupling_capacitance(0, 1).farads_per_meter() > 0.0);
        assert_eq!(bus.coupling_capacitance(0, 2).farads_per_meter(), 0.0);
        let m01 = bus.mutual_inductance(0, 1).henries_per_meter();
        assert!((m01 - 0.35 * 0.5e-6).abs() < 1e-12);
        assert_eq!(bus.mutual_inductance(2, 2).henries_per_meter(), 0.0);
    }

    #[test]
    fn shielded_bus_interleaves_shields() {
        let bus = spec().build_shielded().unwrap();
        assert_eq!(bus.conductors(), 5);
        assert_eq!(bus.signal_count(), 3);
        assert_eq!(bus.signal_indices(), vec![0, 2, 4]);
        assert_eq!(bus.role(1), ConductorRole::Shield);
        assert_eq!(bus.role(2), ConductorRole::Signal);
        // Signal-to-signal capacitive coupling disappears behind the shield
        // and the inductive coupling drops to the separation-2 value.
        assert_eq!(bus.coupling_capacitance(0, 2).farads_per_meter(), 0.0);
        assert!((bus.coupling_coefficient(0, 2) - 0.15).abs() < 1e-12);
        assert!((bus.coupling_coefficient(0, 1) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn isolated_line_adds_coupling_capacitance_to_ground() {
        let bus = spec().build().unwrap();
        // The middle wire sees Cc on both sides.
        let mid = bus.isolated_line(1).unwrap();
        let edge = bus.isolated_line(0).unwrap();
        let cg = 0.21e-9;
        let cc = 0.1e-9;
        assert!((mid.capacitance_per_length().farads_per_meter() - (cg + 2.0 * cc)).abs() < 1e-15);
        assert!((edge.capacitance_per_length().farads_per_meter() - (cg + cc)).abs() < 1e-15);
        assert!(bus.isolated_line(3).is_err());
    }

    #[test]
    fn sectioning_preserves_per_length_data() {
        let bus = spec().build().unwrap();
        let half = bus.section(2).unwrap();
        assert!((half.length().millimeters() - 2.5).abs() < 1e-12);
        assert_eq!(half.coupling_coefficient(0, 1), bus.coupling_coefficient(0, 1));
        assert!(bus.section(0).is_err());
    }

    #[test]
    fn malformed_matrices_are_rejected() {
        let len = Length::from_millimeters(1.0);
        let ok_l = vec![vec![5e-7, 1e-7], vec![1e-7, 5e-7]];
        let ok_cc = vec![vec![0.0, 1e-10], vec![1e-10, 0.0]];
        let roles = vec![ConductorRole::Signal; 2];
        // Baseline is fine.
        assert!(CoupledBus::from_matrices(
            vec![1e3; 2],
            ok_l.clone(),
            vec![1e-10; 2],
            ok_cc.clone(),
            roles.clone(),
            len
        )
        .is_ok());
        // Asymmetric L.
        let bad_l = vec![vec![5e-7, 1e-7], vec![2e-7, 5e-7]];
        assert!(matches!(
            CoupledBus::from_matrices(
                vec![1e3; 2],
                bad_l,
                vec![1e-10; 2],
                ok_cc.clone(),
                roles.clone(),
                len
            ),
            Err(CouplingError::Shape { .. })
        ));
        // |k| >= 1.
        let tight = vec![vec![5e-7, 5e-7], vec![5e-7, 5e-7]];
        assert!(matches!(
            CoupledBus::from_matrices(
                vec![1e3; 2],
                tight,
                vec![1e-10; 2],
                ok_cc.clone(),
                roles.clone(),
                len
            ),
            Err(CouplingError::Shape { .. })
        ));
        // Non-zero Cc diagonal.
        let bad_cc = vec![vec![1e-12, 1e-10], vec![1e-10, 0.0]];
        assert!(matches!(
            CoupledBus::from_matrices(
                vec![1e3; 2],
                ok_l.clone(),
                vec![1e-10; 2],
                bad_cc,
                roles.clone(),
                len
            ),
            Err(CouplingError::Shape { .. })
        ));
        // Negative ground capacitance.
        assert!(matches!(
            CoupledBus::from_matrices(
                vec![1e3; 2],
                ok_l.clone(),
                vec![-1e-10, 1e-10],
                ok_cc.clone(),
                roles.clone(),
                len
            ),
            Err(CouplingError::InvalidParameter { .. })
        ));
        // Empty bus.
        assert!(matches!(
            CoupledBus::from_matrices(vec![], vec![], vec![], vec![], vec![], len),
            Err(CouplingError::Shape { .. })
        ));
        // Growing falloff in the uniform builder.
        let mut s = spec();
        s.inductive_coupling = vec![0.1, 0.3];
        assert!(matches!(s.build(), Err(CouplingError::Shape { .. })));
        // Zero lines error cleanly from both builders (regression: the
        // shielded conductor count 2N − 1 must not underflow first).
        let mut s = spec();
        s.lines = 0;
        assert!(matches!(s.build(), Err(CouplingError::InvalidParameter { .. })));
        assert!(matches!(s.build_shielded(), Err(CouplingError::InvalidParameter { .. })));
    }

    #[test]
    fn non_positive_definite_inductance_is_rejected() {
        // Regression: every pair satisfies |k| = 0.6 < 1, but the 3×3 matrix
        // with k = −0.6 everywhere has the eigenvalue L·(1 − 2·0.6) < 0 —
        // negative stored energy, which made transient runs diverge silently.
        let l = 5e-7;
        let m = -0.6 * l;
        let bad = vec![vec![l, m, m], vec![m, l, m], vec![m, m, l]];
        let err = CoupledBus::from_matrices(
            vec![1e3; 3],
            bad,
            vec![1e-10; 3],
            vec![vec![0.0; 3]; 3],
            vec![ConductorRole::Signal; 3],
            Length::from_millimeters(1.0),
        );
        assert!(matches!(err, Err(CouplingError::Shape { .. })));
        // The same matrix through the uniform builder (monotone |k| falloff
        // passes the per-pair checks) must also be rejected.
        let mut s = spec();
        s.inductive_coupling = vec![-0.6, -0.6];
        assert!(matches!(s.build(), Err(CouplingError::Shape { .. })));
        // A strongly but physically coupled bus still builds.
        let mut s = spec();
        s.inductive_coupling = vec![0.45, 0.2];
        assert!(s.build().is_ok());
        assert!(s.build_shielded().is_ok());
    }
}
