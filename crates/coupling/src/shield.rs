//! Shield-insertion evaluation: grounded wires between the signal lines.
//!
//! Inserting a grounded shield between neighbouring signal wires removes
//! their direct coupling capacitance (the shield intercepts the field lines)
//! and pushes their inductive coupling out to the next separation distance,
//! at the cost of one extra routing track per shield. This module quantifies
//! that trade for a [`UniformBusSpec`]: the victim's crosstalk metrics with
//! and without shields, plus the track overhead.

use crate::bus::UniformBusSpec;
use crate::crosstalk::{crosstalk_metrics, CrosstalkMetrics};
use crate::error::CouplingError;
use crate::netlist::BusDrive;

/// Before/after comparison of shield insertion on one victim wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShieldingEvaluation {
    /// Victim metrics on the bare bus.
    pub unshielded: CrosstalkMetrics,
    /// Victim metrics with a grounded shield between every signal pair.
    pub shielded: CrosstalkMetrics,
    /// Extra routing tracks per signal wire: `(2N − 1)/N − 1`.
    pub track_overhead: f64,
}

impl ShieldingEvaluation {
    /// Factor by which shielding reduced the peak victim noise (> 1 is a win).
    ///
    /// If shields suppress the noise below measurement entirely, the ratio
    /// saturates at `f64::INFINITY` rather than producing `NaN` (and `1.0`
    /// when both buses are already noiseless).
    pub fn noise_reduction(&self) -> f64 {
        saturating_ratio(
            self.unshielded.victim_peak_noise.volts(),
            self.shielded.victim_peak_noise.volts(),
        )
    }

    /// Factor by which shielding tightened the magnitude of the odd/even
    /// delay spread. (Behind shields the capacitive spread collapses and the
    /// residual inductive coupling can make even mode the slower one, so the
    /// *signed* spreads are not comparable — the magnitudes are.)
    ///
    /// The shielded spread passes through zero in some parameter regimes; the
    /// ratio then saturates at `f64::INFINITY` rather than producing `NaN`
    /// (and `1.0` when both spreads are zero).
    pub fn delay_spread_reduction(&self) -> f64 {
        saturating_ratio(
            self.unshielded.delay_spread_fraction().abs(),
            self.shielded.delay_spread_fraction().abs(),
        )
    }
}

/// `before / after` with the zero-denominator corner pinned: `1.0` when both
/// are zero (shielding changed nothing) and `f64::INFINITY` when shielding
/// suppressed the quantity completely — never `NaN`.
fn saturating_ratio(before: f64, after: f64) -> f64 {
    if after == 0.0 {
        if before == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        before / after
    }
}

/// Evaluates grounded-shield insertion for one victim wire of a uniform bus.
///
/// # Errors
///
/// Propagates bus-construction and simulation errors.
pub fn evaluate_shielding(
    spec: &UniformBusSpec,
    victim: usize,
    drive: &BusDrive,
) -> Result<ShieldingEvaluation, CouplingError> {
    let bare = spec.build()?;
    let shielded = spec.build_shielded()?;
    let unshielded = crosstalk_metrics(&bare, victim, drive)?;
    let with_shields = crosstalk_metrics(&shielded, victim, drive)?;
    let n = spec.lines as f64;
    Ok(ShieldingEvaluation {
        unshielded,
        shielded: with_shields,
        track_overhead: (2.0 * n - 1.0) / n - 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{
        Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
        ResistancePerLength, Voltage,
    };

    #[test]
    fn shields_reduce_victim_noise() {
        // The acceptance-criterion scenario: inserting grounded shields into
        // a 3-line bus must reduce the peak noise on the quiet middle victim.
        let spec = UniformBusSpec {
            lines: 3,
            resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
            self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
            ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            inductive_coupling: vec![0.35, 0.15],
            length: Length::from_millimeters(5.0),
        };
        let drive = BusDrive::new(
            Resistance::from_ohms(112.5),
            Capacitance::from_femtofarads(120.0),
            Voltage::from_volts(1.8),
        )
        .with_sections(10);
        let eval = evaluate_shielding(&spec, 1, &drive).unwrap();
        assert!(
            eval.shielded.victim_peak_noise < eval.unshielded.victim_peak_noise,
            "shielded noise {} must be below unshielded {}",
            eval.shielded.victim_peak_noise,
            eval.unshielded.victim_peak_noise
        );
        assert!(eval.noise_reduction() > 1.5, "reduction {}", eval.noise_reduction());
        // Shields also tighten the odd/even delay spread (in magnitude: the
        // residual inductive coupling can flip its sign).
        assert!(
            eval.shielded.delay_spread_fraction().abs()
                < eval.unshielded.delay_spread_fraction().abs()
        );
        assert!(eval.delay_spread_reduction() > 1.0);
        // 3 signals pick up 2 shields.
        assert!((eval.track_overhead - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_ratios_never_produce_nan() {
        assert_eq!(saturating_ratio(0.0, 0.0), 1.0);
        assert_eq!(saturating_ratio(0.3, 0.0), f64::INFINITY);
        assert!((saturating_ratio(0.3, 0.1) - 3.0).abs() < 1e-12);
    }
}
