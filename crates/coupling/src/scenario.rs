//! Switching patterns: what each signal wire of the bus does at `t = 0`.
//!
//! Crosstalk depends on the *pattern* of simultaneous transitions:
//!
//! * **victim-quiet** — the victim holds still while every aggressor rises;
//!   the victim waveform is pure coupled noise;
//! * **odd mode** — neighbours switch opposite to the victim; each coupling
//!   capacitor sees twice the swing (Miller factor 2), the slowest case for
//!   capacitively dominated buses;
//! * **even mode** — every wire switches together; the coupling capacitors
//!   carry no current and the victim runs fastest.
//!
//! Arbitrary aggressor vectors are expressed as an explicit list of
//! [`LineDrive`]s, one per signal wire (shield conductors are grounded
//! automatically and take no pattern entry).

use rlckit_circuit::SourceWaveform;
use rlckit_units::{Time, Voltage};

use crate::error::CouplingError;

/// Delay after `t = 0` within which a falling edge completes. Far below any
/// physically meaningful timestep, so a fall behaves as an ideal step while
/// keeping the piece-wise-linear corner times strictly ordered.
const FALL_EPSILON: Time = Time::from_seconds(1e-18);

/// What one signal wire does at `t = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LineDrive {
    /// Steps from 0 to the supply at `t = 0`.
    #[default]
    Rising,
    /// Starts charged at the supply and steps to 0 at `t = 0`.
    Falling,
    /// Driver holds the wire at 0 through its output resistance.
    Quiet,
    /// Driver holds the wire at the supply through its output resistance.
    QuietHigh,
}

impl LineDrive {
    /// The source waveform implementing this drive for a given supply.
    pub fn waveform(self, supply: Voltage) -> SourceWaveform {
        match self {
            Self::Rising => SourceWaveform::Step { amplitude: supply, delay: Time::ZERO },
            Self::Falling => SourceWaveform::PieceWiseLinear {
                points: vec![(Time::ZERO, supply), (FALL_EPSILON, Voltage::ZERO)],
            },
            Self::Quiet => SourceWaveform::Dc { level: Voltage::ZERO },
            Self::QuietHigh => SourceWaveform::Dc { level: supply },
        }
    }

    /// Steady-state level the wire settles to, for a given supply.
    pub fn final_level(self, supply: Voltage) -> Voltage {
        match self {
            Self::Rising | Self::QuietHigh => supply,
            Self::Falling | Self::Quiet => Voltage::ZERO,
        }
    }

    /// Returns `true` if this drive transitions at `t = 0`.
    pub fn is_switching(self) -> bool {
        matches!(self, Self::Rising | Self::Falling)
    }
}

/// One [`LineDrive`] per signal wire of a bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchingPattern {
    drives: Vec<LineDrive>,
}

impl SwitchingPattern {
    /// Creates a pattern from an explicit aggressor vector.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::InvalidParameter`] for an empty vector.
    pub fn new(drives: Vec<LineDrive>) -> Result<Self, CouplingError> {
        if drives.is_empty() {
            return Err(CouplingError::InvalidParameter {
                what: "switching pattern length",
                value: 0.0,
            });
        }
        Ok(Self { drives })
    }

    /// Every wire rises together (the fast case).
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::InvalidParameter`] for `lines == 0`.
    pub fn even_mode(lines: usize) -> Result<Self, CouplingError> {
        Self::new(vec![LineDrive::Rising; lines])
    }

    /// The victim rises while every other wire falls (the slow case for
    /// capacitively dominated buses).
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::InvalidParameter`] for `lines == 0` and
    /// [`CouplingError::LineIndex`] for an out-of-range victim.
    pub fn odd_mode(victim: usize, lines: usize) -> Result<Self, CouplingError> {
        Self::check_victim(victim, lines)?;
        let mut drives = vec![LineDrive::Falling; lines];
        drives[victim] = LineDrive::Rising;
        Self::new(drives)
    }

    /// The victim holds quiet at 0 while every aggressor rises; the victim
    /// waveform is the coupled noise.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::InvalidParameter`] for `lines == 0` and
    /// [`CouplingError::LineIndex`] for an out-of-range victim.
    pub fn victim_quiet(victim: usize, lines: usize) -> Result<Self, CouplingError> {
        Self::check_victim(victim, lines)?;
        let mut drives = vec![LineDrive::Rising; lines];
        drives[victim] = LineDrive::Quiet;
        Self::new(drives)
    }

    fn check_victim(victim: usize, lines: usize) -> Result<(), CouplingError> {
        if victim < lines {
            Ok(())
        } else {
            Err(CouplingError::LineIndex { index: victim, lines })
        }
    }

    /// Number of signal wires the pattern covers.
    pub fn lines(&self) -> usize {
        self.drives.len()
    }

    /// The per-wire drives.
    pub fn drives(&self) -> &[LineDrive] {
        &self.drives
    }

    /// Drive of signal wire `i`.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError::LineIndex`] for an out-of-range wire.
    pub fn drive(&self, i: usize) -> Result<LineDrive, CouplingError> {
        self.drives
            .get(i)
            .copied()
            .ok_or(CouplingError::LineIndex { index: i, lines: self.drives.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_patterns() {
        let even = SwitchingPattern::even_mode(3).unwrap();
        assert_eq!(even.drives(), &[LineDrive::Rising; 3]);
        let odd = SwitchingPattern::odd_mode(1, 3).unwrap();
        assert_eq!(odd.drives(), &[LineDrive::Falling, LineDrive::Rising, LineDrive::Falling]);
        let quiet = SwitchingPattern::victim_quiet(0, 2).unwrap();
        assert_eq!(quiet.drives(), &[LineDrive::Quiet, LineDrive::Rising]);
        assert_eq!(quiet.lines(), 2);
        assert_eq!(quiet.drive(1).unwrap(), LineDrive::Rising);
        assert!(quiet.drive(2).is_err());
        assert!(SwitchingPattern::even_mode(0).is_err());
        assert!(SwitchingPattern::odd_mode(3, 3).is_err());
        assert!(SwitchingPattern::victim_quiet(9, 3).is_err());
        assert!(SwitchingPattern::new(vec![]).is_err());
    }

    #[test]
    fn drive_waveforms_have_the_right_endpoints() {
        let vdd = Voltage::from_volts(1.8);
        let at = |ps: f64| Time::from_picoseconds(ps);
        let rising = LineDrive::Rising.waveform(vdd);
        assert_eq!(rising.value_at(Time::ZERO).volts(), 0.0);
        assert_eq!(rising.value_at(at(1.0)).volts(), 1.8);
        let falling = LineDrive::Falling.waveform(vdd);
        assert_eq!(falling.value_at(Time::ZERO).volts(), 1.8);
        assert_eq!(falling.value_at(at(1.0)).volts(), 0.0);
        assert_eq!(LineDrive::Quiet.waveform(vdd).value_at(at(5.0)).volts(), 0.0);
        assert_eq!(LineDrive::QuietHigh.waveform(vdd).value_at(at(5.0)).volts(), 1.8);
        assert_eq!(LineDrive::Falling.final_level(vdd).volts(), 0.0);
        assert_eq!(LineDrive::QuietHigh.final_level(vdd).volts(), 1.8);
        assert!(LineDrive::Rising.is_switching());
        assert!(!LineDrive::Quiet.is_switching());
    }
}
