//! Bus-aware repeater evaluation: how crosstalk shifts the paper's optimum.
//!
//! The paper's closed forms (Eqs. 14–15) pick the repeater size `h` and
//! section count `k` for an *isolated* RLC line. On a bus, the worst-case
//! switching pattern (odd mode) slows every section down, and — because the
//! coupling capacitance contributes Miller charge per section — the delay
//! landscape over `k` shifts. This module quantifies both effects by
//! simulation: it takes the closed-form optimum of the victim's isolated
//! line, simulates one repeated section of the *coupled* bus under odd- and
//! even-mode switching, and scans neighbouring integer section counts for
//! the worst-case-optimal choice.
//!
//! Every repeated section is the same circuit: a bus of length `l/k` driven
//! by `R0/h` per wire and loaded by `h·C0` (the next repeater's input), so
//! the total delay of a `k`-section design is `k` times the simulated section
//! delay — the same uniform-section argument the paper's appendix makes.

use rlckit_interconnect::Technology;
use rlckit_repeater::{RepeaterDesign, RepeaterProblem};
use rlckit_units::Time;

use crate::bus::CoupledBus;
use crate::crosstalk::{delay_with_retry, suggested_options};
use crate::error::CouplingError;
use crate::netlist::BusDrive;
use crate::scenario::SwitchingPattern;

/// How the repeater optimum of one victim wire shifts on a coupled bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusRepeaterShift {
    /// The paper's closed-form RLC optimum for the victim's isolated line.
    pub isolated_optimum: RepeaterDesign,
    /// Simulated total delay of that design with the bus in even mode.
    pub even_mode_delay: Time,
    /// Simulated total delay of that design under worst-case (odd-mode)
    /// switching.
    pub worst_case_delay: Time,
    /// Worst-case-optimal integer section count found by the local scan.
    pub bus_sections: usize,
    /// Simulated worst-case total delay at [`BusRepeaterShift::bus_sections`].
    pub bus_worst_case_delay: Time,
}

impl BusRepeaterShift {
    /// Worst-case delay push-out of the isolated optimum, as a fraction of
    /// its even-mode delay.
    pub fn pushout_fraction(&self) -> f64 {
        (self.worst_case_delay.seconds() - self.even_mode_delay.seconds())
            / self.even_mode_delay.seconds()
    }

    /// How many sections the worst-case optimum moved by, relative to the
    /// isolated closed form (positive: the bus wants more repeaters).
    pub fn section_shift(&self) -> i64 {
        self.bus_sections as i64 - self.isolated_optimum.rounded_sections() as i64
    }
}

/// Evaluates repeater insertion for one victim wire of a coupled bus in a
/// given technology.
///
/// `ladder_sections` controls the discretisation of each simulated repeated
/// section. Expect six transient runs (even + odd mode at the closed-form
/// optimum, plus up to four scanned neighbouring section counts), each of
/// which may retry up to twice more with an extended horizon if the output
/// does not cross 50% in time.
///
/// # Errors
///
/// Propagates repeater-problem, bus-construction and simulation errors.
pub fn evaluate_bus_repeaters(
    bus: &CoupledBus,
    victim: usize,
    technology: &Technology,
    ladder_sections: usize,
) -> Result<BusRepeaterShift, CouplingError> {
    let conductor = bus.check_signal_index(victim)?;
    let line = bus.isolated_line(conductor)?;
    let problem = RepeaterProblem::for_line(&line, technology)?;
    let isolated_optimum = problem.rlc_optimum();
    let h = isolated_optimum.size;
    let k0 = isolated_optimum.rounded_sections();

    let lines = bus.signal_count();
    let odd = SwitchingPattern::odd_mode(victim, lines)?;
    let even = SwitchingPattern::even_mode(lines)?;

    let drive = BusDrive::new(
        technology.buffer_resistance(h)?,
        technology.buffer_capacitance(h)?,
        technology.supply,
    )
    .with_sections(ladder_sections);

    let section_delay = |k: usize, pattern: &SwitchingPattern| -> Result<Time, CouplingError> {
        let section_bus = bus.section(k)?;
        let options = suggested_options(&section_bus, &drive)?;
        let delay = delay_with_retry(&section_bus, pattern, &drive, &options, victim)?;
        Ok(delay * k as f64)
    };

    let even_mode_delay = section_delay(k0, &even)?;
    let worst_case_delay = section_delay(k0, &odd)?;

    // Local scan over integer section counts around the closed-form optimum.
    let mut bus_sections = k0;
    let mut bus_worst_case_delay = worst_case_delay;
    for k in k0.saturating_sub(2).max(1)..=k0 + 2 {
        if k == k0 {
            continue;
        }
        let delay = section_delay(k, &odd)?;
        if delay < bus_worst_case_delay {
            bus_worst_case_delay = delay;
            bus_sections = k;
        }
    }

    Ok(BusRepeaterShift {
        isolated_optimum,
        even_mode_delay,
        worst_case_delay,
        bus_sections,
        bus_worst_case_delay,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::UniformBusSpec;
    use rlckit_units::{CapacitancePerLength, InductancePerLength, Length, ResistancePerLength};

    #[test]
    fn worst_case_switching_pushes_the_repeated_delay_out() {
        // A long resistive intermediate-layer bus in 0.18 µm: the closed form
        // wants several repeaters, and odd-mode switching must cost delay.
        let tech = Technology::node_180nm();
        let bus = UniformBusSpec {
            lines: 3,
            resistance: ResistancePerLength::from_ohms_per_millimeter(40.0),
            self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.4),
            ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.16),
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.08),
            inductive_coupling: vec![0.3, 0.12],
            length: Length::from_millimeters(8.0),
        }
        .build()
        .unwrap();
        let shift = evaluate_bus_repeaters(&bus, 1, &tech, 10).unwrap();
        assert!(shift.isolated_optimum.rounded_sections() >= 2, "scenario should want repeaters");
        assert!(
            shift.worst_case_delay > shift.even_mode_delay,
            "odd mode {} must be slower than even mode {}",
            shift.worst_case_delay,
            shift.even_mode_delay
        );
        assert!(shift.pushout_fraction() > 0.05, "push-out {}", shift.pushout_fraction());
        assert!(shift.bus_sections >= 1);
        assert!(
            shift.bus_worst_case_delay.seconds() <= shift.worst_case_delay.seconds() + 1e-18,
            "the scanned optimum cannot be worse than the closed-form point"
        );
        // The shift is small and reported consistently.
        assert!(shift.section_shift().abs() <= 2);
    }
}
