//! Error type shared by the coupling subsystem.

use std::error::Error;
use std::fmt;

use rlckit_circuit::CircuitError;
use rlckit_interconnect::InterconnectError;
use rlckit_repeater::RepeaterError;

/// Error returned by coupled-bus construction, simulation and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CouplingError {
    /// A bus parameter is not usable (non-positive, NaN, out of range, ...).
    InvalidParameter {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A per-unit-length matrix has the wrong shape or violates a structural
    /// requirement (symmetry, zero diagonal, positive definiteness).
    Shape {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
    /// A line index is out of range for this bus.
    LineIndex {
        /// The raw index supplied.
        index: usize,
        /// How many lines the bus has.
        lines: usize,
    },
    /// An underlying circuit construction or analysis failed.
    Circuit(CircuitError),
    /// An underlying interconnect computation failed.
    Interconnect(InterconnectError),
    /// An underlying repeater-insertion computation failed.
    Repeater(RepeaterError),
    /// A requested measurement could not be computed.
    Measurement {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for CouplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { what, value } => write!(f, "invalid {what}: {value}"),
            Self::Shape { what } => write!(f, "malformed bus matrices: {what}"),
            Self::LineIndex { index, lines } => {
                write!(f, "line {index} is out of range for a bus of {lines} lines")
            }
            Self::Circuit(e) => write!(f, "circuit error: {e}"),
            Self::Interconnect(e) => write!(f, "interconnect error: {e}"),
            Self::Repeater(e) => write!(f, "repeater error: {e}"),
            Self::Measurement { reason } => write!(f, "measurement failed: {reason}"),
        }
    }
}

impl Error for CouplingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            Self::Interconnect(e) => Some(e),
            Self::Repeater(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for CouplingError {
    fn from(e: CircuitError) -> Self {
        Self::Circuit(e)
    }
}

impl From<InterconnectError> for CouplingError {
    fn from(e: InterconnectError) -> Self {
        Self::Interconnect(e)
    }
}

impl From<RepeaterError> for CouplingError {
    fn from(e: RepeaterError) -> Self {
        Self::Repeater(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CouplingError::InvalidParameter { what: "pitch", value: -1.0 }
            .to_string()
            .contains("pitch"));
        assert!(CouplingError::Shape { what: "L must be symmetric" }
            .to_string()
            .contains("symmetric"));
        assert!(CouplingError::LineIndex { index: 5, lines: 3 }.to_string().contains('5'));
        let circuit: CouplingError = CircuitError::EmptyCircuit.into();
        assert!(circuit.to_string().contains("circuit"));
        assert!(Error::source(&circuit).is_some());
        assert!(CouplingError::Measurement { reason: "no crossing".into() }
            .to_string()
            .contains("no crossing"));
    }
}
