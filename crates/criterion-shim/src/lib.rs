//! A minimal, dependency-free stand-in for the [`criterion`] benchmark crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the workspace's `benches/` targets
//! building and running with the same source: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up once,
//! then timed over `sample_size` samples of an auto-scaled batch of
//! iterations, and the per-iteration minimum / mean are printed to stdout.
//! There is no statistical analysis, HTML report or comparison baseline.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Drives the closures being measured, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id, `group/function` when run inside a group.
    pub id: String,
    /// Minimum observed time per iteration, in seconds.
    pub min_seconds: f64,
    /// Mean observed time per iteration, in seconds.
    pub mean_seconds: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Identifier for a parameterised benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10, measurements: Vec::new() }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API compatibility;
    /// the shim ignores the arguments).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(id.to_owned(), sample_size, f);
        self
    }

    /// All measurements recorded so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Prints a closing line (the real criterion renders its summary here).
    pub fn final_summary(&self) {
        println!("criterion shim: {} benchmark(s) measured", self.measurements.len());
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        // Warm-up run, also used to scale the per-sample iteration count so
        // very fast routines are timed over a meaningful interval.
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        let warmup = bencher.elapsed.as_secs_f64().max(1e-9);
        let target_sample_seconds = 2e-3;
        let iters = ((target_sample_seconds / warmup).ceil() as u64).clamp(1, 1_000_000);

        let mut min = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..sample_size {
            let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut bencher);
            let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;
            min = min.min(per_iter);
            total += per_iter;
        }
        let mean = total / sample_size as f64;
        println!("{id:<60} min {:>12}  mean {:>12}", format_seconds(min), format_seconds(mean));
        self.measurements.push(Measurement {
            id,
            min_seconds: min,
            mean_seconds: mean,
            samples: sample_size,
        });
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks a function under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, samples, f);
        self
    }

    /// Benchmarks a function taking an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn format_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Bundles benchmark functions into a runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_function() {
        let mut c = Criterion::default();
        c.sample_size(3);
        c.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64) + 1));
        assert_eq!(c.measurements().len(), 1);
        let m = &c.measurements()[0];
        assert_eq!(m.id, "add");
        assert!(m.min_seconds >= 0.0);
        assert!(m.mean_seconds >= m.min_seconds);
    }

    #[test]
    fn groups_prefix_their_name() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("group");
            g.sample_size(2);
            g.bench_function("f", |b| b.iter(|| 2 + 2));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        let ids: Vec<&str> = c.measurements().iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids, ["group/f", "group/7"]);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
