//! The committed golden transcript is a contract: replaying
//! `tests/server/requests.ndjson` through a single-worker engine must
//! reproduce `tests/server/responses.expected` **byte for byte** — any
//! drift in validation messages, response field order, float formatting or
//! cache provenance fails here (and in CI's server smoke gate, which
//! replays the same transcript through the actual `rlckit-server --stdin`
//! binary) until the transcript is deliberately re-blessed:
//!
//! ```text
//! cargo run --release -p rlckit-server -- --stdin --workers 1 \
//!     < tests/server/requests.ndjson > tests/server/responses.expected
//! ```
//!
//! This file holds exactly one test: the engine's pattern cache is
//! process-global, and a second concurrent engine in the same binary could
//! reorder cold-vs-warm factorizations.

use std::path::PathBuf;

use rlckit_server::{Engine, ServerConfig};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/server")
}

#[test]
fn golden_transcript_replays_byte_for_byte() {
    let requests = std::fs::read_to_string(golden_dir().join("requests.ndjson"))
        .expect("the golden request file is committed");
    let expected = std::fs::read_to_string(golden_dir().join("responses.expected"))
        .expect("the golden response file is committed");

    // The same configuration the CI gate runs the binary with:
    // one worker (deterministic streaming order), default caches.
    let engine =
        Engine::new(ServerConfig { workers: 1, ..ServerConfig::default() }).expect("engine starts");
    let mut out = Vec::new();
    engine.serve_stream(requests.as_bytes(), &mut out).expect("transcript serves");
    let got = String::from_utf8(out).expect("responses are UTF-8");

    // Compare line-by-line first for a readable failure, then whole-buffer
    // to catch trailing-byte drift.
    for (i, (g, w)) in got.lines().zip(expected.lines()).enumerate() {
        assert_eq!(g, w, "response line {} drifted from the blessed transcript", i + 1);
    }
    assert_eq!(got, expected, "transcript must match byte for byte");
}
