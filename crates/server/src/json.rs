//! Minimal newline-friendly JSON reader/writer for the wire protocol.
//!
//! The workspace is dependency-free, so the daemon carries its own JSON
//! layer: a recursive-descent parser into a small [`Value`] tree (objects
//! keep their key order) and escape/format helpers for the single-line
//! responses. The subset is exactly RFC 8259 minus nothing the protocol
//! needs: strings with every escape (including `\uXXXX` and surrogate
//! pairs), numbers as `f64`, arrays, objects, booleans and `null`.

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving declaration order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (rejects
    /// fractions, negatives and anything beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&v) {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this value is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Self::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The field list, if this value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Self::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a field of an object (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a byte offset plus a short description of the first problem.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(value)
}

/// A parse failure: byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input line.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is a &str, so the
                    // bytes are valid; find the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input slice is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated unicode escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("numeric token is ASCII");
        text.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Value::Num)
            .ok_or_else(|| self.err(format!("invalid number \"{text}\"")))
    }
}

/// Appends `s` as a JSON string (with quotes) to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON number: shortest round-trip representation for
/// finite values, `null` for NaN/±∞ (which JSON cannot carry).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(
            r#"{"id":"r1","evaluator":"delay_model","base":{"line_length_mm":12.5},
               "axes":[{"param":"driver_size","values":[50,100]}],"deadline_ms":1000}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(1000));
        let axes = v.get("axes").unwrap().as_arr().unwrap();
        let values = axes[0].get("values").unwrap().as_arr().unwrap();
        assert_eq!(values[1].as_f64(), Some(100.0));
        assert_eq!(v.get("base").unwrap().get("line_length_mm").unwrap().as_f64(), Some(12.5));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\n\t\u00e9\ud83d\ude00µ""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\té😀µ"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{}extra",
            "\"\\ud800\"",
            "\"\\q\"",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn numbers_and_integers_convert_exactly() {
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn writer_escapes_and_handles_nonfinite() {
        let mut out = String::new();
        push_str_escaped(&mut out, "a\"b\\\n\u{1}");
        assert_eq!(out, r#""a\"b\\\n\u0001""#);
        let mut n = String::new();
        push_f64(&mut n, 0.1);
        n.push(' ');
        push_f64(&mut n, f64::NAN);
        assert_eq!(n, "0.1 null");
        // Shortest round-trip: parse(format(v)) is bit-identical.
        let v = 1.0 / 3.0;
        let mut s = String::new();
        push_f64(&mut s, v);
        assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits());
    }
}
