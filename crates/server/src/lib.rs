//! Batched scenario-evaluation daemon for `rlckit`.
//!
//! Everything upstream of this crate is a library or a one-shot binary: you
//! link `rlckit-sweep`, build a [`SweepSpec`](rlckit_sweep::SweepSpec), run
//! it, exit — and every process pays the full cost of sparse symbolic
//! analysis, factorization and evaluation from scratch. This crate turns
//! the same typed evaluation space into a **long-running service** so that
//! cost is paid once and amortised across requests:
//!
//! * [`engine`] — the shared evaluation engine: a bounded cell queue with
//!   explicit backpressure, a worker pool, per-request deadlines and
//!   cancellation, and two cache layers (the memo + disk-backed
//!   [`ResultStore`](rlckit_sweep::ResultStore) over whole results, and the
//!   process-global [`pattern_cache`](rlckit_circuit::pattern_cache)
//!   sharing sparse factorization work across matching MNA patterns);
//! * [`request`] — newline-delimited JSON requests validated into the
//!   existing typed [`Scenario`](rlckit_sweep::Scenario) /
//!   [`SweepSpec`](rlckit_sweep::SweepSpec) space, with netlist-style
//!   `code` / `message` / `hint` diagnostics on every rejection;
//! * [`response`] — deterministic single-line response rendering (fixed
//!   field order, shortest-round-trip floats, no timestamps) so golden
//!   transcripts replay byte-for-byte;
//! * [`json`] — the zero-dependency JSON parser and escaper underneath
//!   both.
//!
//! The wire protocol is specified field-by-field in `docs/PROTOCOL.md`;
//! operational knobs (worker count, queue depth, cache directory and
//! budget, deadlines) live in [`ServerConfig`] and are surfaced as CLI
//! flags by the `rlckit-server` binary — see `docs/OPERATIONS.md`.
//!
//! # Example: one-shot evaluation over an in-memory stream
//!
//! ```
//! use rlckit_server::{Engine, ServerConfig};
//!
//! let engine = Engine::new(ServerConfig {
//!     workers: 1,
//!     pattern_cache: false, // keep the doctest independent of global state
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let request = "{\"id\":\"r1\",\"evaluator\":\"delay_model\",\
//!                \"axes\":[{\"param\":\"line_length_mm\",\"values\":[5,10]}]}\n";
//! let mut reply = Vec::new();
//! engine.serve_stream(request.as_bytes(), &mut reply).unwrap();
//! let reply = String::from_utf8(reply).unwrap();
//! let lines: Vec<&str> = reply.lines().collect();
//! assert!(lines[0].starts_with("{\"type\":\"ack\",\"id\":\"r1\",\"cells\":2"));
//! assert!(lines[3].starts_with("{\"type\":\"done\",\"id\":\"r1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod json;
pub mod request;
pub mod response;

pub use engine::{Engine, EngineStats, ServerConfig};
pub use request::RequestError;

use std::io::{BufReader, BufWriter};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Serves TCP connections on `listener` until the engine drains.
///
/// The listener is polled in non-blocking mode (~25 ms cadence) so a
/// `shutdown` operation received on one connection stops the accept loop
/// promptly; each accepted connection is handled on its own thread via
/// [`Engine::serve_stream`]. In-flight connections finish their current
/// conversation before the function returns.
///
/// # Errors
///
/// Returns the error of a listener that cannot be switched to non-blocking
/// mode, or a non-transient `accept` failure.
pub fn serve_listener(engine: &Arc<Engine>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut handles = Vec::new();
    while !engine.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                // Responses are small flushed lines; Nagle + delayed ACK
                // would add tens of milliseconds to every request.
                stream.set_nodelay(true)?;
                let engine = Arc::clone(engine);
                handles.push(std::thread::spawn(move || {
                    let reader = BufReader::new(stream.try_clone()?);
                    let writer = BufWriter::new(stream);
                    engine.serve_stream(reader, writer)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
    for handle in handles {
        // Connection I/O errors (client hangups) are not server failures.
        let _ = handle.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    #[test]
    fn tcp_round_trip_serves_requests_and_honours_shutdown() {
        let engine = Engine::new(ServerConfig {
            workers: 1,
            pattern_cache: false,
            ..ServerConfig::default()
        })
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || serve_listener(&engine, listener))
        };

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"op\":\"ping\"}\n{\"id\":\"t\",\"evaluator\":\"delay_model\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "{\"type\":\"pong\"}\n");
        let mut saw_done = false;
        for _ in 0..3 {
            line.clear();
            reader.read_line(&mut line).unwrap();
            saw_done |= line.starts_with("{\"type\":\"done\",\"id\":\"t\"");
        }
        assert!(saw_done, "the request must complete over TCP");
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "{\"type\":\"pong\"}\n");
        server.join().unwrap().unwrap();
        assert!(engine.draining());
    }
}
