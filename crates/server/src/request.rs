//! Wire-request validation: JSON lines into the typed scenario space.
//!
//! Every inbound line is parsed ([`parse_line`]) into a [`Request`] — either
//! a control operation ([`Op`]) or an evaluation job ([`Job`]) whose base
//! scenario, axes and deadline have been fully validated against the typed
//! [`Scenario`]/[`Param`] space of `rlckit-sweep`. Anything malformed
//! produces a structured [`RequestError`] carrying a stable machine-readable
//! code, a message pinpointing the offending field and a remedial hint —
//! the same error shape the netlist front-end uses for deck diagnostics.

use rlckit_sweep::{
    Axis, BusCrosstalkEvaluator, BusRepeaterEvaluator, DelayModelEvaluator, Evaluator,
    MeshDelayEvaluator, Param, ReducedDelayEvaluator, RepeaterDesignPointEvaluator,
    RepeaterOptimumEvaluator, Scenario, SramReadEvaluator, SweepCell, SweepSpec, TechnologyNode,
    TreeDelayEvaluator,
};

use crate::json::{self, Value};

/// Every evaluator the daemon can serve, by wire name.
pub const EVALUATOR_NAMES: [&str; 9] = [
    "delay_model",
    "repeater_optimum",
    "repeater_design_point",
    "reduced_delay",
    "bus_crosstalk",
    "bus_repeater",
    "tree_delay",
    "mesh_delay",
    "sram_read",
];

/// Every scenario parameter addressable from the wire, by field name.
pub const PARAM_NAMES: [&str; 19] = [
    "technology",
    "line_length_mm",
    "resistance_ohm_per_mm",
    "inductance_nh_per_mm",
    "capacitance_ff_per_um",
    "driver_size",
    "sections",
    "bus_lines",
    "coupling_cap_ff_per_um",
    "inductive_coupling",
    "shielded",
    "ladder_sections",
    "reduction_order",
    "tree_levels",
    "tree_fanout",
    "mesh_rows",
    "mesh_cols",
    "sram_rows",
    "sram_cols",
];

/// Upper bound on any integer-valued scenario parameter — large enough for
/// every real workload, small enough that one request cannot ask the
/// evaluators to build an absurd system.
const MAX_SIZE_PARAM: u64 = 1_000_000;

/// Resolves a wire evaluator name to its (zero-sized, `'static`) instance.
pub fn evaluator_by_name(name: &str) -> Option<&'static dyn Evaluator> {
    match name {
        "delay_model" => Some(&DelayModelEvaluator),
        "repeater_optimum" => Some(&RepeaterOptimumEvaluator),
        "repeater_design_point" => Some(&RepeaterDesignPointEvaluator),
        "reduced_delay" => Some(&ReducedDelayEvaluator),
        "bus_crosstalk" => Some(&BusCrosstalkEvaluator),
        "bus_repeater" => Some(&BusRepeaterEvaluator),
        "tree_delay" => Some(&TreeDelayEvaluator),
        "mesh_delay" => Some(&MeshDelayEvaluator),
        "sram_read" => Some(&SramReadEvaluator),
        _ => None,
    }
}

/// A validated inbound request.
pub enum Request {
    /// A control operation (`{"op": ...}` lines).
    Op(Op),
    /// An evaluation job.
    Evaluate(Job),
}

/// The control operations of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; answered immediately with `{"type":"pong"}`.
    Ping,
    /// Cache/queue/counter snapshot.
    Stats,
    /// Graceful drain: finish queued work, then stop accepting.
    Shutdown,
}

/// A fully validated evaluation job: the expanded cells of one request.
pub struct Job {
    /// Echoed request id.
    pub id: String,
    /// The evaluator every cell runs under.
    pub evaluator: &'static dyn Evaluator,
    /// Axis names in declaration order (empty for a single-point request).
    pub axis_names: Vec<String>,
    /// The expanded grid, in deterministic row-major order.
    pub cells: Vec<SweepCell>,
    /// Optional per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// A structured request diagnostic: stable code, message, remedial hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Machine-readable error class (`bad_json`, `unknown_param`, …).
    pub code: &'static str,
    /// Human-readable description naming the offending field or value.
    pub message: String,
    /// One-line remedial hint.
    pub hint: &'static str,
}

impl RequestError {
    fn new(code: &'static str, message: impl Into<String>, hint: &'static str) -> Self {
        Self { code, message: message.into(), hint }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("evaluator", &self.evaluator.name())
            .field("axis_names", &self.axis_names)
            .field("cells", &self.cells.len())
            .field("deadline_ms", &self.deadline_ms)
            .finish()
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Op(op) => f.debug_tuple("Op").field(op).finish(),
            Self::Evaluate(job) => f.debug_tuple("Evaluate").field(job).finish(),
        }
    }
}

/// Parses and validates one wire line.
///
/// # Errors
///
/// Returns a [`RequestError`] (paired with the request id when one was
/// recoverable from the line) describing the first problem found.
pub fn parse_line(line: &str) -> Result<Request, (Option<String>, RequestError)> {
    let doc = json::parse(line).map_err(|e| {
        (
            None,
            RequestError::new(
                "bad_json",
                format!("request is not valid JSON: {e}"),
                "send one complete JSON object per line",
            ),
        )
    })?;
    let id = doc.get("id").and_then(|v| v.as_str()).map(str::to_owned);
    validate(&doc, &id).map_err(|e| (id, e))
}

fn validate(doc: &Value, id: &Option<String>) -> Result<Request, RequestError> {
    let obj = doc.as_obj().ok_or_else(|| {
        RequestError::new(
            "bad_request",
            "request line must be a JSON object",
            "wrap the request fields in {...}",
        )
    })?;

    if let Some(op) = doc.get("op") {
        let name = op.as_str().ok_or_else(|| {
            RequestError::new(
                "bad_request",
                "\"op\" must be a string",
                "valid operations: ping, stats, shutdown",
            )
        })?;
        return match name {
            "ping" => Ok(Request::Op(Op::Ping)),
            "stats" => Ok(Request::Op(Op::Stats)),
            "shutdown" => Ok(Request::Op(Op::Shutdown)),
            other => Err(RequestError::new(
                "bad_request",
                format!("unknown operation \"{other}\""),
                "valid operations: ping, stats, shutdown",
            )),
        };
    }

    for (key, _) in obj {
        if !matches!(key.as_str(), "id" | "evaluator" | "base" | "axes" | "deadline_ms") {
            return Err(RequestError::new(
                "bad_request",
                format!("unknown request field \"{key}\""),
                "evaluation requests carry: id, evaluator, base, axes, deadline_ms",
            ));
        }
    }

    let id = id.clone().ok_or_else(|| {
        RequestError::new(
            "bad_request",
            "evaluation request is missing its \"id\" string",
            "give every request a unique string id; responses echo it",
        )
    })?;

    let eval_name = doc.get("evaluator").and_then(|v| v.as_str()).ok_or_else(|| {
        RequestError::new(
            "bad_request",
            "evaluation request is missing its \"evaluator\" string",
            "pick one of the built-in evaluators (see docs/PROTOCOL.md)",
        )
    })?;
    let evaluator = evaluator_by_name(eval_name).ok_or_else(|| {
        RequestError::new(
            "unknown_evaluator",
            format!("unknown evaluator \"{eval_name}\""),
            "valid evaluators: delay_model, repeater_optimum, repeater_design_point, \
             reduced_delay, bus_crosstalk, bus_repeater, tree_delay, mesh_delay, sram_read",
        )
    })?;

    let mut base = Scenario::default();
    if let Some(overrides) = doc.get("base") {
        let fields = overrides.as_obj().ok_or_else(|| {
            RequestError::new(
                "bad_request",
                "\"base\" must be an object of scenario field overrides",
                "example: \"base\": {\"line_length_mm\": 12.5, \"shielded\": true}",
            )
        })?;
        for (name, value) in fields {
            base.apply(&parse_param(name, value)?);
        }
    }

    let mut axes: Vec<Axis> = Vec::new();
    if let Some(axes_doc) = doc.get("axes") {
        let list = axes_doc.as_arr().ok_or_else(|| {
            RequestError::new(
                "bad_request",
                "\"axes\" must be an array",
                "example: \"axes\": [{\"param\": \"driver_size\", \"values\": [50, 100]}]",
            )
        })?;
        for (i, axis_doc) in list.iter().enumerate() {
            axes.push(parse_axis(i, axis_doc)?);
        }
    }

    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(v) => Some(v.as_u64().filter(|&ms| ms > 0).ok_or_else(|| {
            RequestError::new(
                "bad_request",
                "\"deadline_ms\" must be a positive integer",
                "omit the field for no deadline",
            )
        })?),
    };

    let (axis_names, cells) = if axes.is_empty() {
        // A scenario-only request: one cell, no axis columns.
        (Vec::new(), vec![SweepCell { index: 0, scenario: base, labels: Vec::new() }])
    } else {
        let mut spec = SweepSpec::new(base);
        for axis in axes {
            spec = spec.axis(axis);
        }
        let cells = spec.expand().map_err(|e| {
            RequestError::new(
                "bad_request",
                format!("axes do not expand to a grid: {e}"),
                "every axis needs at least one value",
            )
        })?;
        (spec.axis_names(), cells)
    };

    Ok(Request::Evaluate(Job { id, evaluator, axis_names, cells, deadline_ms }))
}

fn parse_axis(index: usize, doc: &Value) -> Result<Axis, RequestError> {
    let param_name = doc.get("param").and_then(|v| v.as_str()).ok_or_else(|| {
        RequestError::new(
            "bad_request",
            format!("axis {index} is missing its \"param\" string"),
            "each axis names one scenario parameter and lists its values",
        )
    })?;
    let values = doc.get("values").and_then(|v| v.as_arr()).ok_or_else(|| {
        RequestError::new(
            "bad_request",
            format!("axis {index} (\"{param_name}\") is missing its \"values\" array"),
            "each axis names one scenario parameter and lists its values",
        )
    })?;
    if values.is_empty() {
        return Err(RequestError::new(
            "bad_request",
            format!("axis {index} (\"{param_name}\") has no values"),
            "every axis needs at least one value",
        ));
    }
    let name = match doc.get("name") {
        None => param_name.to_owned(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| {
                RequestError::new(
                    "bad_request",
                    format!("axis {index} has a non-string \"name\""),
                    "\"name\" overrides the label column header and must be a string",
                )
            })?
            .to_owned(),
    };
    let params = values
        .iter()
        .map(|v| parse_param(param_name, v))
        .collect::<Result<Vec<Param>, RequestError>>()?;
    Ok(Axis::new(name, params))
}

/// Parses one `field: value` pair into a typed [`Param`] assignment.
fn parse_param(name: &str, value: &Value) -> Result<Param, RequestError> {
    let bad_value = |expected: &str| {
        RequestError::new(
            "bad_value",
            format!("parameter \"{name}\" expects {expected}"),
            "see docs/PROTOCOL.md for every parameter's type and unit",
        )
    };
    let float = |ctor: fn(f64) -> Param| -> Result<Param, RequestError> {
        let v = value.as_f64().ok_or_else(|| bad_value("a finite number"))?;
        if v <= 0.0 {
            return Err(bad_value("a positive number"));
        }
        Ok(ctor(v))
    };
    let coupling = |ctor: fn(f64) -> Param| -> Result<Param, RequestError> {
        let v = value.as_f64().ok_or_else(|| bad_value("a finite number"))?;
        if v < 0.0 {
            return Err(bad_value("a non-negative number"));
        }
        Ok(ctor(v))
    };
    let size = |ctor: fn(usize) -> Param| -> Result<Param, RequestError> {
        let v = value
            .as_u64()
            .filter(|&v| (1..=MAX_SIZE_PARAM).contains(&v))
            .ok_or_else(|| bad_value("an integer in 1..=1000000"))?;
        Ok(ctor(v as usize))
    };
    match name {
        "technology" => {
            let tag = value.as_str().ok_or_else(|| bad_value("a technology name string"))?;
            let node = TechnologyNode::ROADMAP
                .into_iter()
                .find(|n| n.name() == tag)
                .ok_or_else(|| bad_value("one of: 0.25um, 0.18um, 0.13um, 90nm"))?;
            Ok(Param::Technology(node))
        }
        "line_length_mm" => float(Param::LineLengthMm),
        "resistance_ohm_per_mm" => float(Param::ResistanceOhmPerMm),
        "inductance_nh_per_mm" => float(Param::InductanceNhPerMm),
        "capacitance_ff_per_um" => float(Param::CapacitanceFfPerUm),
        "driver_size" => float(Param::DriverSize),
        "sections" => float(Param::Sections),
        "bus_lines" => size(Param::BusLines),
        "coupling_cap_ff_per_um" => coupling(Param::CouplingCapFfPerUm),
        "inductive_coupling" => coupling(Param::InductiveCoupling),
        "shielded" => Ok(Param::Shielded(value.as_bool().ok_or_else(|| bad_value("a boolean"))?)),
        "ladder_sections" => size(Param::LadderSections),
        "reduction_order" => size(Param::ReductionOrder),
        "tree_levels" => size(Param::TreeLevels),
        "tree_fanout" => size(Param::TreeFanout),
        "mesh_rows" => size(Param::MeshRows),
        "mesh_cols" => size(Param::MeshCols),
        "sram_rows" => size(Param::SramRows),
        "sram_cols" => size(Param::SramCols),
        other => Err(RequestError::new(
            "unknown_param",
            format!("unknown scenario parameter \"{other}\""),
            "valid parameters are the Scenario field names (see docs/PROTOCOL.md)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_evaluator_resolves() {
        for name in EVALUATOR_NAMES {
            let ev = evaluator_by_name(name).expect("registered evaluator");
            assert_eq!(ev.name(), name);
            assert!(!ev.columns().is_empty());
        }
        assert!(evaluator_by_name("nope").is_none());
    }

    #[test]
    fn single_point_requests_synthesize_one_cell() {
        let req =
            parse_line(r#"{"id":"a","evaluator":"delay_model","base":{"line_length_mm":12.5}}"#)
                .unwrap();
        let Request::Evaluate(job) = req else { panic!("expected a job") };
        assert_eq!(job.id, "a");
        assert_eq!(job.cells.len(), 1);
        assert!(job.axis_names.is_empty());
        assert_eq!(job.cells[0].scenario.line_length_mm, 12.5);
        assert_eq!(job.deadline_ms, None);
    }

    #[test]
    fn axes_expand_row_major_with_the_last_axis_fastest() {
        let req = parse_line(
            r#"{"id":"g","evaluator":"delay_model",
                "axes":[{"param":"line_length_mm","values":[5,10]},
                        {"param":"driver_size","values":[50,100,200]}],
                "deadline_ms":2000}"#,
        )
        .unwrap();
        let Request::Evaluate(job) = req else { panic!("expected a job") };
        assert_eq!(job.cells.len(), 6);
        assert_eq!(job.axis_names, ["line_length_mm", "driver_size"]);
        assert_eq!(job.deadline_ms, Some(2000));
        assert_eq!(job.cells[0].labels, ["5", "50"]);
        assert_eq!(job.cells[1].labels, ["5", "100"]);
        assert_eq!(job.cells[3].labels, ["10", "50"]);
        assert_eq!(job.cells[4].scenario.driver_size, 100.0);
    }

    #[test]
    fn ops_parse_and_unknown_ops_are_diagnosed() {
        assert!(matches!(parse_line(r#"{"op":"ping"}"#), Ok(Request::Op(Op::Ping))));
        assert!(matches!(parse_line(r#"{"op":"stats"}"#), Ok(Request::Op(Op::Stats))));
        assert!(matches!(parse_line(r#"{"op":"shutdown"}"#), Ok(Request::Op(Op::Shutdown))));
        let (_, err) = parse_line(r#"{"op":"reboot"}"#).unwrap_err();
        assert_eq!(err.code, "bad_request");
        assert!(err.message.contains("reboot"));
    }

    #[test]
    fn diagnostics_carry_codes_messages_and_hints() {
        let cases = [
            ("not json at all", "bad_json"),
            (r#"{"evaluator":"delay_model"}"#, "bad_request"),
            (r#"{"id":"x","evaluator":"warp_drive"}"#, "unknown_evaluator"),
            (r#"{"id":"x","evaluator":"delay_model","base":{"warp":1}}"#, "unknown_param"),
            (r#"{"id":"x","evaluator":"delay_model","base":{"line_length_mm":-1}}"#, "bad_value"),
            (r#"{"id":"x","evaluator":"delay_model","base":{"bus_lines":0}}"#, "bad_value"),
            (
                r#"{"id":"x","evaluator":"delay_model","axes":[{"param":"driver_size"}]}"#,
                "bad_request",
            ),
            (
                r#"{"id":"x","evaluator":"delay_model","axes":[{"param":"driver_size","values":[]}]}"#,
                "bad_request",
            ),
            (r#"{"id":"x","evaluator":"delay_model","deadline_ms":0}"#, "bad_request"),
            (r#"{"id":"x","evaluator":"delay_model","bogus_field":1}"#, "bad_request"),
        ];
        for (line, code) in cases {
            let (_, err) = parse_line(line).unwrap_err();
            assert_eq!(err.code, code, "line {line:?}");
            assert!(!err.message.is_empty());
            assert!(!err.hint.is_empty());
        }
        // The id is recovered even from otherwise-broken requests.
        let (id, _) = parse_line(r#"{"id":"keep-me","evaluator":"warp"}"#).unwrap_err();
        assert_eq!(id.as_deref(), Some("keep-me"));
    }

    #[test]
    fn technology_parses_by_display_name() {
        let req =
            parse_line(r#"{"id":"t","evaluator":"delay_model","base":{"technology":"90nm"}}"#)
                .unwrap();
        let Request::Evaluate(job) = req else { panic!("expected a job") };
        assert_eq!(job.cells[0].scenario.technology, TechnologyNode::N90);
        let (_, err) =
            parse_line(r#"{"id":"t","evaluator":"delay_model","base":{"technology":"7nm"}}"#)
                .unwrap_err();
        assert_eq!(err.code, "bad_value");
    }
}
