//! `rlckit-server` — the batched scenario-evaluation daemon.
//!
//! Two modes share one engine and one wire protocol (`docs/PROTOCOL.md`):
//!
//! * **TCP daemon** (default): `rlckit-server --addr 127.0.0.1:7117`
//!   accepts newline-delimited JSON connections until a `shutdown`
//!   operation drains it.
//! * **One-shot stdin** (`--stdin`): reads requests from standard input,
//!   writes responses to standard output, exits at EOF. This is the mode
//!   the CI golden-transcript gate replays (`--workers 1` for
//!   byte-for-byte determinism).
//!
//! Operational knobs are documented in `docs/OPERATIONS.md`.

use std::process::ExitCode;

use rlckit_server::{serve_listener, Engine, ServerConfig};

const USAGE: &str = "\
rlckit-server: batched scenario-evaluation daemon

USAGE:
    rlckit-server [OPTIONS]

OPTIONS:
    --stdin                 one-shot mode: requests on stdin, responses on stdout
    --addr HOST:PORT        TCP listen address (default 127.0.0.1:7117)
    --workers N             evaluation threads (default 2; 1 = deterministic order)
    --queue-depth N         maximum queued cells before backpressure (default 1024)
    --cache-dir DIR         disk-backed result store directory (default: memory only)
    --cache-budget BYTES    result-store byte budget (default 67108864)
    --deadline-ms MS        default per-request deadline (default 0 = none)
    --no-pattern-cache      disable cross-request factorization sharing
    --help                  print this help
";

struct Cli {
    stdin: bool,
    addr: String,
    config: ServerConfig,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli =
        Cli { stdin: false, addr: "127.0.0.1:7117".to_owned(), config: ServerConfig::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--stdin" => cli.stdin = true,
            "--no-pattern-cache" => cli.config.pattern_cache = false,
            "--addr" => cli.addr = value("--addr")?.to_owned(),
            "--workers" => {
                cli.config.workers = parse_number(value("--workers")?, "--workers")?;
                if cli.config.workers == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
            }
            "--queue-depth" => {
                cli.config.queue_depth = parse_number(value("--queue-depth")?, "--queue-depth")?;
                if cli.config.queue_depth == 0 {
                    return Err("--queue-depth must be at least 1".to_owned());
                }
            }
            "--cache-dir" => cli.config.cache_dir = Some(value("--cache-dir")?.into()),
            "--cache-budget" => {
                cli.config.cache_budget = parse_number(value("--cache-budget")?, "--cache-budget")?;
            }
            "--deadline-ms" => {
                cli.config.default_deadline_ms =
                    parse_number(value("--deadline-ms")?, "--deadline-ms")?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cli)
}

fn parse_number<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{flag}: {raw:?} is not a valid number"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let engine = match Engine::new(cli.config) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: cannot start engine: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = if cli.stdin {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        engine.serve_stream(stdin.lock(), stdout.lock())
    } else {
        match std::net::TcpListener::bind(&cli.addr) {
            Ok(listener) => {
                eprintln!("rlckit-server listening on {}", cli.addr);
                serve_listener(&engine, listener)
            }
            Err(e) => {
                eprintln!("error: cannot bind {}: {e}", cli.addr);
                return ExitCode::FAILURE;
            }
        }
    };
    engine.join();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
