//! The evaluation engine: bounded queue, worker pool, dual caches.
//!
//! One [`Engine`] owns everything shared across connections:
//!
//! * a **bounded cell queue** — requests are admitted whole or rejected
//!   whole ([`response::reject`] with a retry delay), so an overloaded
//!   daemon sheds load explicitly instead of buffering without bound;
//! * a **worker pool** evaluating cells concurrently, each worker checking
//!   the request's deadline/cancellation flag before touching a scenario;
//! * the **result cache** — an in-memory memo over
//!   [`rlckit_sweep::cache_key`] fronting an optional disk-backed
//!   [`ResultStore`], so repeated scenarios replay bit-exactly across
//!   requests (and, with a cache directory, across restarts);
//! * the **pattern cache** — when enabled, the engine holds a
//!   [`PatternCacheGuard`] for its lifetime so every sparse factorisation
//!   in the workers shares symbolic analyses and frozen-pivot refactor
//!   templates across requests with matching MNA patterns.
//!
//! Connections are handled by [`Engine::serve_stream`]: requests on one
//! stream are processed sequentially, cells of one request stream back in
//! deterministic index order (a reorder buffer over the workers' completion
//! order), and the whole exchange is free of timestamps — which is what
//! lets CI replay a golden request file byte-for-byte with `--workers 1`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use rlckit_circuit::pattern_cache::{self, PatternCacheGuard};
use rlckit_sweep::{cache_key, Evaluator, ResultStore, Scenario};

use crate::request::{self, Op, Request};
use crate::response;

/// Engine construction knobs, all with serving-ready defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads evaluating cells (1 = fully deterministic streaming).
    pub workers: usize,
    /// Maximum queued cells; requests that do not fit whole are rejected.
    pub queue_depth: usize,
    /// Directory of the disk-backed result store (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
    /// Byte budget of the disk-backed result store.
    pub cache_budget: u64,
    /// Share factorisations across same-pattern requests.
    pub pattern_cache: bool,
    /// Deadline applied to requests that do not carry their own, in
    /// milliseconds (`0` = none).
    pub default_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 1024,
            cache_dir: None,
            cache_budget: rlckit_sweep::cache::DEFAULT_STORE_BUDGET,
            pattern_cache: true,
            default_deadline_ms: 0,
        }
    }
}

/// Cumulative engine counters, reported by the `stats` operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Evaluation requests admitted (acknowledged).
    pub requests: u64,
    /// Evaluation requests rejected by backpressure.
    pub rejected: u64,
    /// Cells computed by an evaluator.
    pub evaluated: u64,
    /// Cells answered from the result cache (memo or disk).
    pub cached: u64,
    /// Cells that failed evaluation.
    pub failed: u64,
    /// Cells skipped by deadline/cancellation.
    pub cancelled: u64,
}

/// How one cell ended.
enum Outcome {
    Row { values: Vec<f64>, cached: bool },
    Failed(String),
    Cancelled,
}

/// One unit of worker work.
struct CellJob {
    evaluator: &'static dyn Evaluator,
    scenario: Scenario,
    index: usize,
    labels: Vec<String>,
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
    tx: Sender<(usize, Vec<String>, Outcome)>,
}

/// State shared between connections and workers.
struct Shared {
    queue: Mutex<VecDeque<CellJob>>,
    work_ready: Condvar,
    draining: AtomicBool,
    memo: Mutex<HashMap<u64, Vec<f64>>>,
    store: Option<Mutex<ResultStore>>,
    stats: Mutex<EngineStats>,
}

impl Shared {
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<CellJob>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_stats(&self) -> MutexGuard<'_, EngineStats> {
        self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The shared evaluation engine (see the module docs).
pub struct Engine {
    config: ServerConfig,
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Keeps the process-global factorisation cache active for the engine's
    /// lifetime (restores the prior state on drop).
    _pattern_guard: Option<PatternCacheGuard>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("config", &self.config).finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds the engine: opens the result store (if configured), enables
    /// the pattern cache (if configured) and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the [`rlckit_sweep::SweepError`] of a result-store directory
    /// that cannot be created or scanned.
    pub fn new(config: ServerConfig) -> Result<Arc<Self>, rlckit_sweep::SweepError> {
        let store = match &config.cache_dir {
            Some(dir) => Some(Mutex::new(ResultStore::open(dir, config.cache_budget)?)),
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            memo: Mutex::new(HashMap::new()),
            store,
            stats: Mutex::new(EngineStats::default()),
        });
        let pattern_guard = config.pattern_cache.then(PatternCacheGuard::enable);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Arc::new(Self {
            config,
            shared,
            workers: Mutex::new(workers),
            _pattern_guard: pattern_guard,
        }))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Whether a graceful drain has been requested (`shutdown` op).
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::Relaxed)
    }

    /// A copy of the cumulative engine counters.
    pub fn stats(&self) -> EngineStats {
        *self.shared.lock_stats()
    }

    /// Requests a graceful drain: queued cells still complete, no new
    /// evaluation requests are admitted, workers exit once idle.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
    }

    /// Drains and joins the worker pool (idempotent).
    pub fn join(&self) {
        self.begin_drain();
        let handles: Vec<_> =
            self.workers.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Serves one newline-delimited JSON conversation: reads request lines
    /// from `input` until EOF (or a `shutdown` op), writing every response
    /// line to `output`. Used for both TCP connections and `--stdin` mode.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error on either side of the stream.
    pub fn serve_stream(&self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let _span = rlckit_telemetry::span("server.request");
            match request::parse_line(&line) {
                Err((id, err)) => {
                    writeln!(output, "{}", response::error(id.as_deref(), &err))?;
                }
                Ok(Request::Op(Op::Ping)) => {
                    writeln!(output, "{}", response::pong())?;
                }
                Ok(Request::Op(Op::Stats)) => {
                    writeln!(output, "{}", self.render_stats())?;
                }
                Ok(Request::Op(Op::Shutdown)) => {
                    self.begin_drain();
                    writeln!(output, "{}", response::pong())?;
                    output.flush()?;
                    break;
                }
                Ok(Request::Evaluate(job)) => {
                    self.run_job(job, &mut output)?;
                }
            }
            output.flush()?;
        }
        Ok(())
    }

    /// Admits, executes and streams one evaluation job.
    fn run_job(&self, job: request::Job, output: &mut impl Write) -> std::io::Result<()> {
        let cells = job.cells.len();
        if self.draining() {
            let err = request::RequestError {
                code: "shutting_down",
                message: "the daemon is draining and no longer admits requests".into(),
                hint: "reconnect to a fresh instance",
            };
            return writeln!(output, "{}", response::error(Some(&job.id), &err));
        }
        if cells > self.config.queue_depth {
            let err = request::RequestError {
                code: "too_large",
                message: format!(
                    "request expands to {cells} cells but the queue holds at most {}",
                    self.config.queue_depth
                ),
                hint: "split the sweep into smaller requests",
            };
            return writeln!(output, "{}", response::error(Some(&job.id), &err));
        }

        let deadline_ms = job.deadline_ms.or_else(|| {
            (self.config.default_deadline_ms > 0).then_some(self.config.default_deadline_ms)
        });
        let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let cancelled = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel();

        // Admission is all-or-nothing under one queue lock: either every
        // cell fits under the depth bound or the request is rejected whole.
        {
            let mut queue = self.shared.lock_queue();
            if queue.len() + cells > self.config.queue_depth {
                drop(queue);
                self.shared.lock_stats().rejected += 1;
                rlckit_telemetry::counter_add("server.rejected", 1);
                return writeln!(output, "{}", response::reject(&job.id, 100));
            }
            for cell in job.cells {
                queue.push_back(CellJob {
                    evaluator: job.evaluator,
                    scenario: cell.scenario,
                    index: cell.index,
                    labels: cell.labels,
                    cancelled: Arc::clone(&cancelled),
                    deadline,
                    tx: tx.clone(),
                });
            }
            self.shared.work_ready.notify_all();
        }
        drop(tx);
        self.shared.lock_stats().requests += 1;

        writeln!(
            output,
            "{}",
            response::ack(&job.id, cells, &job.axis_names, job.evaluator.columns())
        )?;
        output.flush()?;

        // Stream results in index order: completions arrive in worker order,
        // a reorder buffer holds the out-of-order ones.
        let mut pending: BTreeMap<usize, (Vec<String>, Outcome)> = BTreeMap::new();
        let mut next_emit = 0usize;
        let mut received = 0usize;
        let (mut evaluated, mut cached, mut failed, mut cancelled_count) = (0, 0, 0, 0);
        while received < cells {
            let message = match deadline {
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(left.max(Duration::from_millis(1))) {
                        Ok(m) => m,
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                            // Deadline passed: flag the request; workers now
                            // report the remaining cells as cancelled.
                            cancelled.store(true, Ordering::Relaxed);
                            continue;
                        }
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                },
            };
            let (index, labels, outcome) = message;
            received += 1;
            pending.insert(index, (labels, outcome));
            while let Some((labels, outcome)) = pending.remove(&next_emit) {
                match &outcome {
                    Outcome::Row { values, cached: was_cached } => {
                        if *was_cached {
                            cached += 1;
                        } else {
                            evaluated += 1;
                        }
                        writeln!(
                            output,
                            "{}",
                            response::cell(&job.id, next_emit, &labels, values, *was_cached)
                        )?;
                    }
                    Outcome::Failed(reason) => {
                        failed += 1;
                        writeln!(
                            output,
                            "{}",
                            response::cell_error(&job.id, next_emit, &labels, reason)
                        )?;
                    }
                    Outcome::Cancelled => {
                        cancelled_count += 1;
                    }
                }
                output.flush()?;
                next_emit += 1;
            }
        }
        {
            let mut stats = self.shared.lock_stats();
            stats.evaluated += evaluated as u64;
            stats.cached += cached as u64;
            stats.failed += failed as u64;
            stats.cancelled += cancelled_count as u64;
        }
        writeln!(output, "{}", response::done(&job.id, evaluated, cached, failed, cancelled_count))
    }

    /// Renders the `stats` reply: engine counters plus both cache layers.
    fn render_stats(&self) -> String {
        let s = self.stats();
        let queue_len = self.shared.lock_queue().len();
        let memo_len = self.shared.memo.lock().unwrap_or_else(PoisonError::into_inner).len();
        let pattern = pattern_cache::stats();
        let mut out = format!(
            "{{\"type\":\"stats\",\"requests\":{},\"rejected\":{},\"evaluated\":{},\
             \"cached\":{},\"failed\":{},\"cancelled\":{},\"queue_len\":{queue_len},\
             \"memo_len\":{memo_len}",
            s.requests, s.rejected, s.evaluated, s.cached, s.failed, s.cancelled,
        );
        if let Some(store) = &self.shared.store {
            let store = store.lock().unwrap_or_else(PoisonError::into_inner);
            let ss = store.stats();
            out.push_str(&format!(
                ",\"store\":{{\"records\":{},\"bytes\":{},\"hits\":{},\"misses\":{},\
                 \"evictions\":{},\"corrupt\":{}}}",
                store.len(),
                store.total_bytes(),
                ss.hits,
                ss.misses,
                ss.evictions,
                ss.corrupt,
            ));
        }
        out.push_str(&format!(
            ",\"pattern\":{{\"entries\":{},\"value_hits\":{},\"refactor_hits\":{},\
             \"misses\":{},\"fallbacks\":{},\"symbolic_hits\":{},\"evictions\":{}}}}}",
            pattern_cache::len(),
            pattern.value_hits,
            pattern.refactor_hits,
            pattern.misses,
            pattern.fallbacks,
            pattern.symbolic_hits,
            pattern.evictions,
        ));
        out
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.join();
    }
}

/// The worker loop: pop a cell, honour deadline/cancellation, consult the
/// result cache, evaluate, report. Exits once the engine drains and the
/// queue is empty.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.draining.load(Ordering::Relaxed) {
                    return;
                }
                queue = shared.work_ready.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = run_cell(shared, &job);
        // A dropped receiver (client gone) just discards the result.
        let _ = job.tx.send((job.index, job.labels, outcome));
    }
}

/// Evaluates one cell through the two result-cache tiers.
fn run_cell(shared: &Shared, job: &CellJob) -> Outcome {
    if job.cancelled.load(Ordering::Relaxed) || job.deadline.is_some_and(|d| Instant::now() >= d) {
        return Outcome::Cancelled;
    }
    let _span = rlckit_telemetry::span_indexed("server.cell", job.index as u64);
    let key = cache_key(job.evaluator, &job.scenario);
    {
        let memo = shared.memo.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(values) = memo.get(&key) {
            rlckit_telemetry::counter_add("server.cache_hits", 1);
            return Outcome::Row { values: values.clone(), cached: true };
        }
    }
    if let Some(store) = &shared.store {
        let hit = store.lock().unwrap_or_else(PoisonError::into_inner).get(key);
        if let Some(values) = hit {
            shared.memo.lock().unwrap_or_else(PoisonError::into_inner).insert(key, values.clone());
            rlckit_telemetry::counter_add("server.cache_hits", 1);
            return Outcome::Row { values, cached: true };
        }
    }
    rlckit_telemetry::counter_add("server.cache_misses", 1);
    match job.evaluator.evaluate(&job.scenario) {
        Ok(values) => {
            shared.memo.lock().unwrap_or_else(PoisonError::into_inner).insert(key, values.clone());
            if let Some(store) = &shared.store {
                // Disk persistence is best-effort: an unwritable store must
                // not fail the evaluation that produced the row.
                let _ = store.lock().unwrap_or_else(PoisonError::into_inner).insert(key, &values);
            }
            Outcome::Row { values, cached: false }
        }
        Err(e) => Outcome::Failed(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_lines(engine: &Engine, input: &str) -> Vec<String> {
        let mut out = Vec::new();
        engine.serve_stream(Cursor::new(input.to_owned()), &mut out).unwrap();
        String::from_utf8(out).unwrap().lines().map(str::to_owned).collect()
    }

    fn quiet_config() -> ServerConfig {
        // Pattern cache off in unit tests: the process-global cache would
        // need the cross-crate test lock; the dedicated pattern-cache tests
        // cover that integration.
        ServerConfig { workers: 1, pattern_cache: false, ..ServerConfig::default() }
    }

    #[test]
    fn ping_stats_and_malformed_lines_round_trip() {
        let engine = Engine::new(quiet_config()).unwrap();
        let lines = run_lines(&engine, "{\"op\":\"ping\"}\nnot json\n{\"op\":\"stats\"}\n");
        assert_eq!(lines[0], "{\"type\":\"pong\"}");
        assert!(lines[1].contains("\"code\":\"bad_json\""));
        assert!(lines[2].starts_with("{\"type\":\"stats\""));
        assert!(crate::json::parse(&lines[2]).is_ok());
    }

    #[test]
    fn jobs_stream_cells_in_index_order_and_memoise() {
        let engine = Engine::new(ServerConfig { workers: 3, ..quiet_config() }).unwrap();
        let req = "{\"id\":\"j1\",\"evaluator\":\"delay_model\",\
                   \"axes\":[{\"param\":\"driver_size\",\"values\":[50,100,200]}]}\n";
        let lines = run_lines(&engine, req);
        assert!(lines[0].starts_with("{\"type\":\"ack\",\"id\":\"j1\",\"cells\":3"));
        for (i, line) in lines[1..4].iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"type\":\"cell\",\"id\":\"j1\",\"index\":{i}")),
                "cells must stream in index order, got {line}"
            );
            assert!(line.ends_with("\"cached\":false}"));
        }
        assert_eq!(lines[4], "{\"type\":\"done\",\"id\":\"j1\",\"evaluated\":3,\"cached\":0,\"failed\":0,\"cancelled\":0}");

        // The same request again: all three cells replay from the memo,
        // with byte-identical values.
        let again = run_lines(&engine, req);
        assert_eq!(again[4], "{\"type\":\"done\",\"id\":\"j1\",\"evaluated\":0,\"cached\":3,\"failed\":0,\"cancelled\":0}");
        for (a, b) in lines[1..4].iter().zip(&again[1..4]) {
            assert_eq!(
                a.replace("\"cached\":false", "\"cached\":true"),
                *b,
                "cache replay must be byte-identical apart from provenance"
            );
        }
    }

    #[test]
    fn oversized_requests_and_draining_are_diagnosed() {
        let engine = Engine::new(ServerConfig { queue_depth: 2, ..quiet_config() }).unwrap();
        let req = "{\"id\":\"big\",\"evaluator\":\"delay_model\",\
                   \"axes\":[{\"param\":\"driver_size\",\"values\":[1,2,3]}]}\n";
        let lines = run_lines(&engine, req);
        assert!(lines[0].contains("\"code\":\"too_large\""), "{}", lines[0]);

        engine.begin_drain();
        let lines = run_lines(&engine, "{\"id\":\"late\",\"evaluator\":\"delay_model\"}\n");
        assert!(lines[0].contains("\"code\":\"shutting_down\""), "{}", lines[0]);
    }

    #[test]
    fn shutdown_op_stops_the_conversation() {
        let engine = Engine::new(quiet_config()).unwrap();
        let lines = run_lines(&engine, "{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n");
        assert_eq!(lines.len(), 1, "no lines may be processed after shutdown");
        assert!(engine.draining());
    }

    #[test]
    fn failed_cells_report_structured_per_cell_errors() {
        let engine = Engine::new(quiet_config()).unwrap();
        // reduction_order too large for the ladder: the evaluator errors.
        let req = "{\"id\":\"f\",\"evaluator\":\"reduced_delay\",\
                   \"base\":{\"ladder_sections\":2,\"reduction_order\":500}}\n";
        let lines = run_lines(&engine, req);
        assert!(lines[1].contains("\"error\":"), "{}", lines[1]);
        assert!(lines[2].contains("\"failed\":1"), "{}", lines[2]);
    }

    #[test]
    fn disk_store_persists_results_across_engines() {
        let dir = std::env::temp_dir().join(format!("rlckit-server-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServerConfig { cache_dir: Some(dir.clone()), ..quiet_config() };
        let req = "{\"id\":\"p\",\"evaluator\":\"delay_model\"}\n";
        let first = {
            let engine = Engine::new(config.clone()).unwrap();
            run_lines(&engine, req)
        };
        assert!(first[1].ends_with("\"cached\":false}"));
        let second = {
            let engine = Engine::new(config).unwrap();
            run_lines(&engine, req)
        };
        assert!(second[1].ends_with("\"cached\":true}"), "{}", second[1]);
        assert_eq!(
            first[1].replace("\"cached\":false", "\"cached\":true"),
            second[1],
            "disk replay must be bit-exact"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deadline_cancels_remaining_cells() {
        let engine = Engine::new(quiet_config()).unwrap();
        // A deliberately heavy sweep with a 1 ms deadline: most (possibly
        // all) cells must come back cancelled, and the request still ends
        // with a well-formed done line.
        let req = "{\"id\":\"d\",\"evaluator\":\"mesh_delay\",\
                   \"base\":{\"mesh_rows\":40,\"mesh_cols\":40},\
                   \"axes\":[{\"param\":\"driver_size\",\"values\":[40,50,60,70,80]}],\
                   \"deadline_ms\":1}\n";
        let lines = run_lines(&engine, req);
        let done = lines.last().unwrap();
        assert!(done.starts_with("{\"type\":\"done\",\"id\":\"d\""), "{done}");
        let doc = crate::json::parse(done).unwrap();
        let cancelled = doc.get("cancelled").unwrap().as_u64().unwrap();
        assert!(cancelled >= 1, "the 1ms deadline must cancel cells: {done}");
    }
}
