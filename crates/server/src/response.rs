//! Single-line JSON response rendering.
//!
//! Every response is one `\n`-terminated JSON object with a `"type"` tag.
//! Rendering is fully deterministic — fields appear in a fixed order, floats
//! use the shortest round-trip representation ([`crate::json::push_f64`]),
//! and no timestamps or timings are embedded — so a single-worker replay of
//! a request file is byte-for-byte reproducible (the CI golden gate).

use crate::json::{push_f64, push_str_escaped};
use crate::request::RequestError;

/// `{"type":"pong"}` — the ping reply.
pub fn pong() -> String {
    "{\"type\":\"pong\"}".to_owned()
}

/// The job acknowledgement: cell count and metric columns, sent before any
/// cell results.
pub fn ack(id: &str, cells: usize, axis_names: &[String], columns: &[&str]) -> String {
    let mut out = String::from("{\"type\":\"ack\",\"id\":");
    push_str_escaped(&mut out, id);
    out.push_str(",\"cells\":");
    out.push_str(&cells.to_string());
    out.push_str(",\"axes\":[");
    for (i, name) in axis_names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_escaped(&mut out, name);
    }
    out.push_str("],\"columns\":[");
    for (i, col) in columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_escaped(&mut out, col);
    }
    out.push_str("]}");
    out
}

/// One successful cell: axis labels, metric values, cache provenance.
pub fn cell(id: &str, index: usize, labels: &[String], values: &[f64], cached: bool) -> String {
    let mut out = String::from("{\"type\":\"cell\",\"id\":");
    push_str_escaped(&mut out, id);
    out.push_str(",\"index\":");
    out.push_str(&index.to_string());
    out.push_str(",\"labels\":[");
    for (i, label) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_escaped(&mut out, label);
    }
    out.push_str("],\"values\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(&mut out, *v);
    }
    out.push_str("],\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    out.push('}');
    out
}

/// One failed cell: the evaluation error instead of values.
pub fn cell_error(id: &str, index: usize, labels: &[String], error: &str) -> String {
    let mut out = String::from("{\"type\":\"cell\",\"id\":");
    push_str_escaped(&mut out, id);
    out.push_str(",\"index\":");
    out.push_str(&index.to_string());
    out.push_str(",\"labels\":[");
    for (i, label) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_escaped(&mut out, label);
    }
    out.push_str("],\"error\":");
    push_str_escaped(&mut out, error);
    out.push('}');
    out
}

/// The job trailer: how every cell ended.
pub fn done(id: &str, evaluated: usize, cached: usize, failed: usize, cancelled: usize) -> String {
    let mut out = String::from("{\"type\":\"done\",\"id\":");
    push_str_escaped(&mut out, id);
    out.push_str(&format!(
        ",\"evaluated\":{evaluated},\"cached\":{cached},\"failed\":{failed},\
         \"cancelled\":{cancelled}}}"
    ));
    out
}

/// A structured request diagnostic (code / message / hint), echoing the id
/// when one was recoverable.
pub fn error(id: Option<&str>, err: &RequestError) -> String {
    let mut out = String::from("{\"type\":\"error\",\"id\":");
    match id {
        Some(id) => push_str_escaped(&mut out, id),
        None => out.push_str("null"),
    }
    out.push_str(",\"code\":");
    push_str_escaped(&mut out, err.code);
    out.push_str(",\"message\":");
    push_str_escaped(&mut out, &err.message);
    out.push_str(",\"hint\":");
    push_str_escaped(&mut out, err.hint);
    out.push('}');
    out
}

/// Backpressure: the queue cannot take the request; retry after the given
/// delay.
pub fn reject(id: &str, retry_after_ms: u64) -> String {
    let mut out = String::from("{\"type\":\"reject\",\"id\":");
    push_str_escaped(&mut out, id);
    out.push_str(&format!(",\"code\":\"overloaded\",\"retry_after_ms\":{retry_after_ms}}}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_single_line_json_with_fixed_field_order() {
        let labels = vec!["10".to_owned(), "50".to_owned()];
        let lines = [
            pong(),
            ack("r1", 6, &["len".to_owned()], &["delay_ps", "err_pct"]),
            cell("r1", 0, &labels, &[1.5, f64::NAN], true),
            cell_error("r1", 1, &labels, "no 50% crossing"),
            done("r1", 4, 2, 1, 1),
            error(
                None,
                &RequestError {
                    code: "bad_json",
                    message: "oops \"quoted\"".into(),
                    hint: "send JSON",
                },
            ),
            reject("r2", 100),
        ];
        for line in &lines {
            assert!(!line.contains('\n'), "{line} must be single-line");
            assert!(crate::json::parse(line).is_ok(), "{line} must be valid JSON");
        }
        assert_eq!(
            lines[1],
            "{\"type\":\"ack\",\"id\":\"r1\",\"cells\":6,\"axes\":[\"len\"],\
             \"columns\":[\"delay_ps\",\"err_pct\"]}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"cell\",\"id\":\"r1\",\"index\":0,\"labels\":[\"10\",\"50\"],\
             \"values\":[1.5,null],\"cached\":true}"
        );
        assert_eq!(
            lines[4],
            "{\"type\":\"done\",\"id\":\"r1\",\"evaluated\":4,\"cached\":2,\
             \"failed\":1,\"cancelled\":1}"
        );
    }
}
