//! Deterministic exporters: the frozen [`ProfileSnapshot`], its
//! `PROFILE_<name>.json` serialisation and the human-readable summary table.
//!
//! The JSON document follows the same conventions as the workspace's
//! `BENCH_*.json` perf trajectories (flat machine-written records, escaped
//! strings, `null` for non-finite numbers, records sorted by name) so the
//! same dependency-free tooling style can audit both. The schema:
//!
//! ```json
//! {
//!   "profile": "<name>",
//!   "spans":      [{"name": …, "count": …, "total_s": …, "self_s": …, "min_s": …, "max_s": …}],
//!   "counters":   [{"name": …, "value": …}],
//!   "gauges":     [{"name": …, "value": …}],
//!   "histograms": [{"name": …, "count": …, "sum_s": …, "buckets": [{"le_s": …, "count": …}]}],
//!   "health":     {"info": …, "warning": …, "error": …,
//!                  "sites": [{"site": …, "metric": …, "severity": …, "count": …, "worst": …, "threshold": …}]}
//! }
//! ```

use std::fmt::Write as _;

use crate::health::{self, HealthReport};
use crate::metrics;

/// Frozen statistics of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Full slash-joined span path (`"transient.run/sparse.solve"`).
    pub name: String,
    /// Number of completed occurrences.
    pub count: u64,
    /// Summed wall time over all occurrences, seconds.
    pub total_seconds: f64,
    /// Summed wall time minus time spent in child spans, seconds.
    pub self_seconds: f64,
    /// Shortest single occurrence, seconds.
    pub min_seconds: f64,
    /// Longest single occurrence, seconds.
    pub max_seconds: f64,
}

/// Frozen contents of one duration histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed durations, seconds.
    pub sum_seconds: f64,
    /// Non-empty power-of-two buckets as `(upper edge in seconds, count)`,
    /// ascending by edge.
    pub buckets: Vec<(f64, u64)>,
}

/// A deterministic, point-in-time copy of the whole metrics registry.
///
/// Every section is sorted by name, so two snapshots of identical registry
/// contents serialise byte-identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileSnapshot {
    /// Span statistics, sorted by path.
    pub spans: Vec<SpanSnapshot>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Aggregated numerical-health events, rows sorted by `(site, metric)`.
    pub health: HealthReport,
}

/// Builds a snapshot from the live registry.
pub(crate) fn snapshot() -> ProfileSnapshot {
    let spans = metrics::lock_spans()
        .iter()
        .map(|(path, stat)| SpanSnapshot {
            name: path.clone(),
            count: stat.count,
            total_seconds: stat.total_seconds,
            self_seconds: stat.self_seconds,
            min_seconds: stat.min_seconds,
            max_seconds: stat.max_seconds,
        })
        .collect();
    let histograms = metrics::histograms_snapshot()
        .into_iter()
        .map(|(name, count, sum_seconds, buckets)| HistogramSnapshot {
            name,
            count,
            sum_seconds,
            buckets,
        })
        .collect();
    ProfileSnapshot {
        spans,
        counters: metrics::counters_snapshot(),
        gauges: metrics::gauges_snapshot(),
        histograms,
        health: health::snapshot_report(),
    }
}

impl ProfileSnapshot {
    /// Value of the counter `name`, if it was ever recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of the gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Statistics of the exact span path `name`, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans whose path ends in the leaf `name` (aggregating one kernel
    /// across its calling contexts).
    pub fn spans_with_leaf<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanSnapshot> {
        self.spans.iter().filter(move |s| s.name == name || s.name.ends_with(&format!("/{name}")))
    }

    /// Renders the snapshot as a deterministic flat JSON document.
    pub fn to_json(&self, profile: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"profile\": \"{}\",", escape_json(profile));
        let _ = writeln!(out, "  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"count\": {}, \"total_s\": {}, \"self_s\": {}, \
                 \"min_s\": {}, \"max_s\": {}}}{}",
                escape_json(&s.name),
                s.count,
                json_number(s.total_seconds),
                json_number(s.self_seconds),
                json_number(s.min_seconds),
                json_number(s.max_seconds),
                comma(i, self.spans.len())
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"counters\": [");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"value\": {value}}}{}",
                escape_json(name),
                comma(i, self.counters.len())
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"gauges\": [");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"value\": {}}}{}",
                escape_json(name),
                json_number(*value),
                comma(i, self.gauges.len())
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(le, n)| format!("{{\"le_s\": {}, \"count\": {n}}}", json_number(*le)))
                .collect();
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"count\": {}, \"sum_s\": {}, \"buckets\": [{}]}}{}",
                escape_json(&h.name),
                h.count,
                json_number(h.sum_seconds),
                buckets.join(", "),
                comma(i, self.histograms.len())
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"health\": {{\"info\": {}, \"warning\": {}, \"error\": {}, \"sites\": [",
            self.health.info, self.health.warning, self.health.error
        );
        for (i, site) in self.health.sites.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"site\": \"{}\", \"metric\": \"{}\", \"severity\": \"{}\", \
                 \"count\": {}, \"worst\": {}, \"threshold\": {}}}{}",
                escape_json(site.site),
                escape_json(site.metric),
                site.severity.name(),
                site.count,
                json_number(site.worst_value),
                json_number(site.threshold),
                comma(i, self.health.sites.len())
            );
        }
        let _ = writeln!(out, "  ]}}");
        let _ = write!(out, "}}");
        out
    }

    /// The canonical file name for a profile: `PROFILE_<name>.json`.
    pub fn file_name(profile: &str) -> String {
        format!("PROFILE_{profile}.json")
    }

    /// Writes the snapshot to `PROFILE_<profile>.json` under `dir`,
    /// returning the path written.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write(
        &self,
        profile: &str,
        dir: &std::path::Path,
    ) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(Self::file_name(profile));
        std::fs::write(&path, self.to_json(profile))?;
        Ok(path)
    }

    /// Renders a human-readable summary: the top spans ranked by self time,
    /// then the counter, gauge and histogram dumps.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== profile summary ==");
        if self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty() {
            let _ = writeln!(out, "(no telemetry recorded — is the collector enabled?)");
            return out;
        }
        let mut ranked: Vec<&SpanSnapshot> = self.spans.iter().collect();
        ranked.sort_by(|a, b| {
            b.self_seconds
                .partial_cmp(&a.self_seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        let _ = writeln!(out, "top spans by self time:");
        let _ = writeln!(out, "  {:>12}  {:>12}  {:>8}  span", "self(s)", "total(s)", "count");
        for s in ranked.iter().take(15) {
            let _ = writeln!(
                out,
                "  {:>12.6}  {:>12.6}  {:>8}  {}",
                s.self_seconds, s.total_seconds, s.count, s.name
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for h in &self.histograms {
                let mean = if h.count > 0 { h.sum_seconds / h.count as f64 } else { 0.0 };
                let _ = writeln!(
                    out,
                    "  {}: {} observation(s), mean {:.3e} s, {} bucket(s)",
                    h.name,
                    h.count,
                    mean,
                    h.buckets.len()
                );
            }
        }
        if !self.health.is_empty() {
            let _ = writeln!(
                out,
                "health: {} info / {} warning / {} error",
                self.health.info, self.health.warning, self.health.error
            );
            for site in self.health.worst_sites(10) {
                let _ = writeln!(
                    out,
                    "  [{}] {} {}: worst {:.3e} (threshold {:.3e}, {} event(s))",
                    site.severity.name(),
                    site.site,
                    site.metric,
                    site.worst_value,
                    site.threshold,
                    site.count
                );
            }
        }
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Escapes backslash, quote and control characters (same contract as the
/// perf-trajectory writer in `rlckit-bench`, re-implemented here because
/// this crate sits below it in the dependency graph).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a number so the output is always valid JSON (no NaN/inf
/// literals).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::{counter_add, gauge_set, observe_seconds, span, Collector};

    fn populated_snapshot() -> ProfileSnapshot {
        Collector::reset();
        {
            let _outer = span("export.outer");
            let _inner = span("export.inner");
            counter_add("export.counter", 5);
            gauge_set("export.gauge", 2.25);
            observe_seconds("export.hist", 1e-6);
            observe_seconds("export.hist", 3e-3);
            crate::check_metric("export.site", "backward_error", 0.5, 1.0, 2.0);
        }
        Collector::snapshot()
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        let snapshot = populated_snapshot();
        let json = snapshot.to_json("unit");
        assert_eq!(json, snapshot.to_json("unit"), "serialisation must be deterministic");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"profile\": \"unit\""));
        assert!(json.contains("\"name\": \"export.outer/export.inner\""));
        assert!(json.contains("\"name\": \"export.counter\", \"value\": 5"));
        assert!(json.contains("\"name\": \"export.gauge\", \"value\": 2.25"));
        assert!(json.contains("\"le_s\""));
        assert!(json.contains("\"health\": {\"info\": 1, \"warning\": 0, \"error\": 0"));
        assert!(json.contains(
            "{\"site\": \"export.site\", \"metric\": \"backward_error\", \
             \"severity\": \"info\", \"count\": 1, \"worst\": 0.5, \"threshold\": 1}"
        ));
        assert_eq!(ProfileSnapshot::file_name("unit"), "PROFILE_unit.json");
        // Escaping mirrors the perf-trajectory writer.
        assert_eq!(escape_json("a\n\"b\"\u{1}"), "a\\n\\\"b\\\"\\u0001");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn write_round_trips_to_disk() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        let snapshot = populated_snapshot();
        let dir = std::env::temp_dir();
        let path = snapshot.write("export_unit_test", &dir).expect("writable temp dir");
        let body = std::fs::read_to_string(&path).expect("file exists");
        assert_eq!(body, snapshot.to_json("export_unit_test"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn summary_ranks_spans_and_dumps_counters() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        let snapshot = populated_snapshot();
        let summary = snapshot.summary();
        assert!(summary.contains("top spans by self time"));
        assert!(summary.contains("export.outer"));
        assert!(summary.contains("export.counter = 5"));
        assert!(summary.contains("export.gauge = 2.25"));
        assert!(summary.contains("export.hist"));
        // Accessors agree with the rendered sections.
        assert_eq!(snapshot.counter("export.counter"), Some(5));
        assert_eq!(snapshot.counter("export.absent"), None);
        assert_eq!(snapshot.gauge("export.gauge"), Some(2.25));
        assert_eq!(snapshot.spans_with_leaf("export.inner").count(), 1);
    }

    #[test]
    fn empty_snapshot_summary_points_at_the_collector() {
        let snapshot = ProfileSnapshot::default();
        assert!(snapshot.summary().contains("no telemetry recorded"));
    }
}
