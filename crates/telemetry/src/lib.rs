//! Zero-dependency tracing and metrics for the `rlckit` hot paths.
//!
//! Every expensive phase of the workspace — sparse symbolic analysis and
//! numeric (re)factorisation, banded/dense kernels, MNA assembly, transient
//! stepping, block-Arnoldi reduction, the sweep executor — carries an
//! instrumentation site from this crate. The sites are **free when profiling
//! is off**: each one costs a single relaxed atomic load (see [`enabled`]),
//! so the instrumented kernels keep their benchmarked performance.
//!
//! Profiling is activated either by setting `RLCKIT_PROFILE=1` in the
//! environment (read once, lazily) or programmatically through a
//! [`Collector`] handle. While active, three kinds of measurements flow into
//! one process-wide, thread-safe registry:
//!
//! * **spans** ([`span`]) — RAII-timed regions with parent nesting. A span's
//!   registry key is its full slash-joined path (`"transient.run/
//!   transient.stepping/sparse.solve"`), built from a per-thread span stack,
//!   and each key accumulates call count, total wall time, **self** time
//!   (total minus the time spent in child spans) and min/max durations on
//!   the monotonic clock;
//! * **counters / gauges** ([`counter_add`] / [`gauge_set`]) — atomic event
//!   counts (cache hits, Arnoldi deflations, transient steps) and
//!   last-write-wins measurements (fill ratio, pivot growth);
//! * **histograms** ([`observe_seconds`]) — power-of-two-bucketed duration
//!   distributions (per-step time, per-worker busy time).
//!
//! [`Collector::snapshot`] freezes everything into a deterministic
//! [`ProfileSnapshot`], which renders as a human-readable summary table
//! ([`ProfileSnapshot::summary`]) or as a flat `PROFILE_<name>.json`
//! document ([`ProfileSnapshot::write`]) following the same dependency-free
//! JSON conventions as the workspace's `BENCH_*.json` perf trajectories.
//!
//! Two further observability layers share the same activation machinery:
//!
//! * **numerical health** ([`health_event`] / [`check_metric`]) — structured
//!   events from the solver kernels (backward error, condition estimates,
//!   pivot growth, step residuals), aggregated per `(site, metric)` into the
//!   [`HealthReport`] attached to every [`ProfileSnapshot`]. Health
//!   monitoring rides the **profiling** gate: active exactly when [`enabled`]
//!   is;
//! * **timeline traces** ([`trace_enabled`], `RLCKIT_TRACE=1` or
//!   [`Collector::enable_trace`]) — every span additionally records its
//!   begin/end timestamps per thread, and [`Collector::trace_snapshot`]
//!   freezes them into a [`TraceSnapshot`] that serialises as Chrome
//!   trace-event-format JSON (`TRACE_<name>.json`, loadable in
//!   `chrome://tracing` or Perfetto). Sweep worker spans carry their cell
//!   index ([`span_indexed`]), so slow or unhealthy cells are attributable
//!   on the timeline.
//!
//! # Output directory
//!
//! Writers of `PROFILE_*.json` / `TRACE_*.json` documents resolve their
//! target directory with [`output_dir`]: the `RLCKIT_PROFILE_DIR`
//! environment variable (when set and non-empty) takes precedence over the
//! caller-supplied default (the workspace root for the bench binaries, the
//! current directory otherwise). The variable is consulted at write time,
//! not cached.
//!
//! This crate sits at the very bottom of the workspace graph (it depends
//! only on `std`), so every other crate can instrument without cycles.
//!
//! # Example
//!
//! ```
//! use rlckit_telemetry::{counter_add, span, Collector};
//!
//! let collector = Collector::enable();
//! {
//!     let _outer = span("outer");
//!     let _inner = span("inner");
//!     counter_add("events", 3);
//! }
//! let snapshot = Collector::snapshot();
//! assert_eq!(snapshot.counter("events"), Some(3));
//! assert!(snapshot.span("outer/inner").is_some());
//! drop(collector);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod health;
mod metrics;
mod span;
mod trace;

pub use export::{HistogramSnapshot, ProfileSnapshot, SpanSnapshot};
pub use health::{check_metric, health_event, HealthReport, HealthSite, Severity};
pub use metrics::{counter_add, gauge_set, observe_seconds};
pub use span::{span, span_indexed, SpanGuard};
pub use trace::{TraceEvent, TraceSnapshot};

use std::sync::atomic::{AtomicU8, Ordering};

/// Global activation state: `UNINIT` until the first site runs (or a
/// [`Collector`] forces a state), then a resolved bitmask — `INIT` plus the
/// active layer bits.
const UNINIT: u8 = 0;
/// Set once the environment has been resolved; distinguishes "everything
/// off" from "not yet initialised".
const INIT: u8 = 1;
/// Profiling (spans, metrics, health monitoring) is active.
pub(crate) const PROFILE: u8 = 2;
/// Timeline tracing (per-span begin/end timestamps) is active.
pub(crate) const TRACE: u8 = 4;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Resolved activation bitmask — one relaxed load after the first call.
#[inline]
pub(crate) fn state_bits() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s == UNINIT {
        init_from_env()
    } else {
        s
    }
}

/// Returns `true` when profiling is active.
///
/// This is the per-site gate every instrumentation point starts with. After
/// the first call it is exactly **one relaxed atomic load** — the contract
/// that keeps the disabled kernels at their uninstrumented speed. The first
/// call in a process resolves the `RLCKIT_PROFILE` and `RLCKIT_TRACE`
/// environment variables (any non-empty value other than `"0"` activates
/// the corresponding layer).
#[inline]
pub fn enabled() -> bool {
    state_bits() & PROFILE != 0
}

/// Returns `true` when timeline tracing is active (same one-relaxed-load
/// contract as [`enabled`]; first call resolves `RLCKIT_TRACE`).
#[inline]
pub fn trace_enabled() -> bool {
    state_bits() & TRACE != 0
}

/// Cold path of [`state_bits`]: resolve the environment once. A racing
/// [`Collector`] wins over the environment (compare-exchange from `UNINIT`).
#[cold]
fn init_from_env() -> u8 {
    let flag = |name: &str| match std::env::var(name) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    };
    let mut from_env = INIT;
    if flag("RLCKIT_PROFILE") {
        from_env |= PROFILE;
    }
    if flag("RLCKIT_TRACE") {
        from_env |= TRACE;
    }
    let _ = STATE.compare_exchange(UNINIT, from_env, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed)
}

/// Resolves the directory profile/trace documents should be written to:
/// the `RLCKIT_PROFILE_DIR` environment variable when set and non-empty,
/// otherwise the caller's `default`. Consulted at write time, never cached.
pub fn output_dir(default: &std::path::Path) -> std::path::PathBuf {
    match std::env::var_os("RLCKIT_PROFILE_DIR") {
        Some(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => default.to_path_buf(),
    }
}

/// A handle over the process-wide metrics collector.
///
/// [`Collector::enable`] switches profiling on and returns an RAII guard
/// that restores the previous activation state when dropped, so a scoped
/// measurement (a bench assertion, a test) cannot leak profiling overhead
/// into the rest of the process. The registry itself is cumulative across
/// enable/disable cycles; use [`Collector::reset`] to clear it.
#[derive(Debug)]
pub struct Collector {
    previous: u8,
}

impl Collector {
    /// Resolves the current state, then stores `(state | set) & !clear`,
    /// returning a guard that restores the full previous byte on drop.
    fn shift(set: u8, clear: u8) -> Self {
        let previous = state_bits();
        STATE.store((previous | set | INIT) & !clear, Ordering::Relaxed);
        Self { previous }
    }

    /// Switches profiling on, returning a guard that restores the previous
    /// state on drop.
    #[must_use]
    pub fn enable() -> Self {
        Self::shift(PROFILE, 0)
    }

    /// Switches profiling off, returning a guard that restores the previous
    /// state on drop.
    #[must_use]
    pub fn disable() -> Self {
        Self::shift(0, PROFILE)
    }

    /// Switches timeline tracing on, returning a guard that restores the
    /// previous state on drop. Tracing composes with profiling: each layer
    /// has its own bit, and a guard only touches the bit it names.
    #[must_use]
    pub fn enable_trace() -> Self {
        Self::shift(TRACE, 0)
    }

    /// Switches timeline tracing off, returning a guard that restores the
    /// previous state on drop.
    #[must_use]
    pub fn disable_trace() -> Self {
        Self::shift(0, TRACE)
    }

    /// Whether profiling is currently active (same gate as [`enabled`]).
    pub fn is_enabled() -> bool {
        enabled()
    }

    /// Freezes the current registry contents into a deterministic snapshot.
    pub fn snapshot() -> ProfileSnapshot {
        export::snapshot()
    }

    /// Freezes the timeline events recorded so far into a deterministic
    /// [`TraceSnapshot`] (Chrome trace-event-format on export).
    pub fn trace_snapshot() -> TraceSnapshot {
        trace::snapshot()
    }

    /// Clears every span, counter, gauge, histogram, health site and trace
    /// event accumulated so far.
    pub fn reset() {
        metrics::reset();
        health::reset();
        trace::reset();
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        STATE.store(self.previous, Ordering::Relaxed);
    }
}

/// Serialisation helper for tests that toggle the process-global collector.
///
/// The activation state (and every registry behind it) is process-global, so
/// tests that enable/disable the collector — in this crate or any downstream
/// crate's test binary — must not interleave. Such tests take
/// [`lock`](test_support::lock) for their whole body; ordinary tests that
/// never touch the collector need not.
pub mod test_support {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Acquires the process-wide telemetry test lock (poisoning ignored:
    /// a panicked test must not cascade into unrelated failures).
    pub fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_guard_restores_the_previous_state() {
        let _serial = test_support::lock();
        let baseline = Collector::disable();
        assert!(!enabled());
        {
            let _on = Collector::enable();
            assert!(enabled());
            {
                let _off = Collector::disable();
                assert!(!enabled());
            }
            assert!(enabled(), "inner guard must restore the enabled state");
        }
        assert!(!enabled(), "outer guard must restore the disabled state");
        drop(baseline);
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _serial = test_support::lock();
        let _off = Collector::disable();
        Collector::reset();
        counter_add("lib.disabled_counter", 7);
        gauge_set("lib.disabled_gauge", 1.0);
        observe_seconds("lib.disabled_hist", 0.5);
        {
            let _span = span("lib.disabled_span");
        }
        let snapshot = Collector::snapshot();
        assert_eq!(snapshot.counter("lib.disabled_counter"), None);
        assert_eq!(snapshot.gauge("lib.disabled_gauge"), None);
        assert!(snapshot.span("lib.disabled_span").is_none());
        assert!(snapshot.histograms.iter().all(|h| h.name != "lib.disabled_hist"));
    }
}
