//! Zero-dependency tracing and metrics for the `rlckit` hot paths.
//!
//! Every expensive phase of the workspace — sparse symbolic analysis and
//! numeric (re)factorisation, banded/dense kernels, MNA assembly, transient
//! stepping, block-Arnoldi reduction, the sweep executor — carries an
//! instrumentation site from this crate. The sites are **free when profiling
//! is off**: each one costs a single relaxed atomic load (see [`enabled`]),
//! so the instrumented kernels keep their benchmarked performance.
//!
//! Profiling is activated either by setting `RLCKIT_PROFILE=1` in the
//! environment (read once, lazily) or programmatically through a
//! [`Collector`] handle. While active, three kinds of measurements flow into
//! one process-wide, thread-safe registry:
//!
//! * **spans** ([`span`]) — RAII-timed regions with parent nesting. A span's
//!   registry key is its full slash-joined path (`"transient.run/
//!   transient.stepping/sparse.solve"`), built from a per-thread span stack,
//!   and each key accumulates call count, total wall time, **self** time
//!   (total minus the time spent in child spans) and min/max durations on
//!   the monotonic clock;
//! * **counters / gauges** ([`counter_add`] / [`gauge_set`]) — atomic event
//!   counts (cache hits, Arnoldi deflations, transient steps) and
//!   last-write-wins measurements (fill ratio, pivot growth);
//! * **histograms** ([`observe_seconds`]) — power-of-two-bucketed duration
//!   distributions (per-step time, per-worker busy time).
//!
//! [`Collector::snapshot`] freezes everything into a deterministic
//! [`ProfileSnapshot`], which renders as a human-readable summary table
//! ([`ProfileSnapshot::summary`]) or as a flat `PROFILE_<name>.json`
//! document ([`ProfileSnapshot::write`]) following the same dependency-free
//! JSON conventions as the workspace's `BENCH_*.json` perf trajectories.
//!
//! This crate sits at the very bottom of the workspace graph (it depends
//! only on `std`), so every other crate can instrument without cycles.
//!
//! # Example
//!
//! ```
//! use rlckit_telemetry::{counter_add, span, Collector};
//!
//! let collector = Collector::enable();
//! {
//!     let _outer = span("outer");
//!     let _inner = span("inner");
//!     counter_add("events", 3);
//! }
//! let snapshot = Collector::snapshot();
//! assert_eq!(snapshot.counter("events"), Some(3));
//! assert!(snapshot.span("outer/inner").is_some());
//! drop(collector);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod span;

pub use export::{HistogramSnapshot, ProfileSnapshot, SpanSnapshot};
pub use metrics::{counter_add, gauge_set, observe_seconds};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};

/// Global activation state: unresolved until the first site runs (or a
/// [`Collector`] forces a state), then a plain on/off flag.
const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Returns `true` when profiling is active.
///
/// This is the per-site gate every instrumentation point starts with. After
/// the first call it is exactly **one relaxed atomic load** — the contract
/// that keeps the disabled kernels at their uninstrumented speed. The first
/// call in a process resolves the `RLCKIT_PROFILE` environment variable
/// (any non-empty value other than `"0"` activates profiling).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_from_env(),
    }
}

/// Cold path of [`enabled`]: resolve the environment once. A racing
/// [`Collector`] wins over the environment (compare-exchange from `UNINIT`).
#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("RLCKIT_PROFILE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    };
    let from_env = if on { ON } else { OFF };
    let _ = STATE.compare_exchange(UNINIT, from_env, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == ON
}

/// A handle over the process-wide metrics collector.
///
/// [`Collector::enable`] switches profiling on and returns an RAII guard
/// that restores the previous activation state when dropped, so a scoped
/// measurement (a bench assertion, a test) cannot leak profiling overhead
/// into the rest of the process. The registry itself is cumulative across
/// enable/disable cycles; use [`Collector::reset`] to clear it.
#[derive(Debug)]
pub struct Collector {
    previous: u8,
}

impl Collector {
    /// Switches profiling on, returning a guard that restores the previous
    /// state on drop.
    #[must_use]
    pub fn enable() -> Self {
        Self { previous: STATE.swap(ON, Ordering::Relaxed) }
    }

    /// Switches profiling off, returning a guard that restores the previous
    /// state on drop.
    #[must_use]
    pub fn disable() -> Self {
        Self { previous: STATE.swap(OFF, Ordering::Relaxed) }
    }

    /// Whether profiling is currently active (same gate as [`enabled`]).
    pub fn is_enabled() -> bool {
        enabled()
    }

    /// Freezes the current registry contents into a deterministic snapshot.
    pub fn snapshot() -> ProfileSnapshot {
        export::snapshot()
    }

    /// Clears every span, counter, gauge and histogram accumulated so far.
    pub fn reset() {
        metrics::reset();
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        STATE.store(self.previous, Ordering::Relaxed);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The activation state is process-global, so tests that toggle it must
    /// not interleave; every test that enables/disables takes this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_guard_restores_the_previous_state() {
        let _serial = test_support::lock();
        let baseline = Collector::disable();
        assert!(!enabled());
        {
            let _on = Collector::enable();
            assert!(enabled());
            {
                let _off = Collector::disable();
                assert!(!enabled());
            }
            assert!(enabled(), "inner guard must restore the enabled state");
        }
        assert!(!enabled(), "outer guard must restore the disabled state");
        drop(baseline);
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _serial = test_support::lock();
        let _off = Collector::disable();
        Collector::reset();
        counter_add("lib.disabled_counter", 7);
        gauge_set("lib.disabled_gauge", 1.0);
        observe_seconds("lib.disabled_hist", 0.5);
        {
            let _span = span("lib.disabled_span");
        }
        let snapshot = Collector::snapshot();
        assert_eq!(snapshot.counter("lib.disabled_counter"), None);
        assert_eq!(snapshot.gauge("lib.disabled_gauge"), None);
        assert!(snapshot.span("lib.disabled_span").is_none());
        assert!(snapshot.histograms.iter().all(|h| h.name != "lib.disabled_hist"));
    }
}
