//! Timeline trace recording and Chrome trace-event-format export.
//!
//! When tracing is active ([`trace_enabled`](crate::trace_enabled), via
//! `RLCKIT_TRACE=1` or [`Collector::enable_trace`](crate::Collector)),
//! every span additionally records one complete event — leaf name, optional
//! index tag, thread id, begin timestamp and duration — into a process-wide
//! buffer. [`snapshot`] freezes the buffer into a [`TraceSnapshot`] whose
//! [`to_json`](TraceSnapshot::to_json) output follows the Chrome
//! trace-event format (`"ph": "X"` complete events, microsecond units), so
//! a `TRACE_<name>.json` document loads directly in `chrome://tracing` or
//! Perfetto.
//!
//! Timestamps are measured against a process-wide epoch pinned at the first
//! traced span open, so every `ts` is non-negative. The buffer is capped at
//! [`MAX_EVENTS`]; past the cap events are counted as dropped rather than
//! recorded, keeping long sweeps bounded in memory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Hard cap on buffered events (~1M); beyond it events are dropped and
/// counted so the export can report the truncation.
pub(crate) const MAX_EVENTS: usize = 1 << 20;

/// One complete ("ph":"X") timeline event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span leaf name (static, as passed to `span`/`span_indexed`).
    pub name: &'static str,
    /// Optional index tag (`span_indexed`), rendered as `name[index]`.
    pub index: Option<u64>,
    /// Recording thread id (small integers assigned in first-span order).
    pub tid: u64,
    /// Begin timestamp in microseconds since the trace epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

#[derive(Default)]
struct Buffer {
    events: Vec<TraceEvent>,
    dropped: u64,
}

fn buffer() -> MutexGuard<'static, Buffer> {
    static BUFFER: OnceLock<Mutex<Buffer>> = OnceLock::new();
    BUFFER.get_or_init(Mutex::default).lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-wide trace epoch, pinned the first time it is needed (the
/// first traced span **open**, so begin timestamps are never negative).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small, stable per-thread id for the `tid` field (assigned from 1 in the
/// order threads first record a traced span).
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Records one complete event. Called from the span guard's drop path only
/// when the span was created with tracing active.
pub(crate) fn record(name: &'static str, index: Option<u64>, begin: Instant, end: Instant) {
    let epoch = epoch();
    let ts_us = end.min(begin).duration_since(epoch).as_secs_f64() * 1e6;
    let dur_us = end.saturating_duration_since(begin).as_secs_f64() * 1e6;
    let tid = thread_id();
    let mut buf = buffer();
    if buf.events.len() >= MAX_EVENTS {
        buf.dropped += 1;
        return;
    }
    buf.events.push(TraceEvent { name, index, tid, ts_us, dur_us });
}

/// Freezes the buffered events into a deterministic snapshot (sorted by
/// begin timestamp, then thread id, then name).
pub(crate) fn snapshot() -> TraceSnapshot {
    let buf = buffer();
    let mut events = buf.events.clone();
    let dropped = buf.dropped;
    drop(buf);
    events.sort_by(|a, b| {
        a.ts_us
            .partial_cmp(&b.ts_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.tid.cmp(&b.tid))
            .then_with(|| a.name.cmp(b.name))
    });
    TraceSnapshot { events, dropped }
}

/// Clears the trace buffer and the dropped-event count.
pub(crate) fn reset() {
    let mut buf = buffer();
    buf.events.clear();
    buf.dropped = 0;
}

/// A frozen timeline: every traced span as a complete event, ordered by
/// begin timestamp.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Complete events sorted by `(ts_us, tid, name)`.
    pub events: Vec<TraceEvent>,
    /// Events discarded after the buffer cap was reached.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Whether any event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events whose leaf name matches `name` (index tags ignored).
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Renders the snapshot as a Chrome trace-event-format JSON document:
    /// `{"displayTimeUnit": "ms", "traceEvents": [...]}` with one
    /// `"ph": "X"` complete event per span, microsecond `ts`/`dur`, `pid`
    /// fixed at 1 and per-thread `tid`s. Indexed spans render their name as
    /// `name[index]`.
    pub fn to_json(&self, trace: &str) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\n");
        out.push_str("  \"displayTimeUnit\": \"ms\",\n");
        out.push_str(&format!(
            "  \"otherData\": {{\"trace\": \"{}\", \"dropped_events\": {}}},\n",
            escape_json(trace),
            self.dropped
        ));
        out.push_str("  \"traceEvents\": [\n");
        for (i, event) in self.events.iter().enumerate() {
            let name = match event.index {
                Some(index) => format!("{}[{index}]", event.name),
                None => event.name.to_string(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cat\": \"rlckit\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}{}\n",
                escape_json(&name),
                json_number(event.ts_us),
                json_number(event.dur_us),
                event.tid,
                comma(i, self.events.len()),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// File name convention for trace documents: `TRACE_<trace>.json`.
    pub fn file_name(trace: &str) -> String {
        format!("TRACE_{trace}.json")
    }

    /// Writes the JSON document as `TRACE_<trace>.json` under `dir`
    /// (resolve `dir` with [`output_dir`](crate::output_dir) to honour
    /// `RLCKIT_PROFILE_DIR`).
    pub fn write(&self, trace: &str, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(Self::file_name(trace));
        std::fs::write(&path, self.to_json(trace))?;
        Ok(path)
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::{span, span_indexed, Collector};

    #[test]
    fn traced_spans_produce_chrome_events() {
        let _serial = crate::test_support::lock();
        let _profile = Collector::disable();
        let _trace = Collector::enable_trace();
        Collector::reset();
        {
            let _outer = span("trace.outer");
            let _inner = span_indexed("trace.cell", 7);
        }
        let snapshot = Collector::trace_snapshot();
        assert_eq!(snapshot.events.len(), 2);
        assert_eq!(snapshot.dropped, 0);
        assert_eq!(snapshot.events_named("trace.outer").count(), 1);
        let cell = snapshot.events_named("trace.cell").next().expect("indexed event");
        assert_eq!(cell.index, Some(7));
        assert!(cell.ts_us >= 0.0 && cell.dur_us >= 0.0);

        let json = snapshot.to_json("test");
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"name\": \"trace.cell[7]\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"displayTimeUnit\": \"ms\""));
        Collector::reset();
    }

    #[test]
    fn tracing_disabled_records_no_events() {
        let _serial = crate::test_support::lock();
        let _profile = Collector::enable();
        let _trace = Collector::disable_trace();
        Collector::reset();
        {
            let _span = span("trace.silent");
        }
        assert!(Collector::trace_snapshot().is_empty());
        // ...but the registry still sees the span: the layers are independent.
        assert!(Collector::snapshot().span("trace.silent").is_some());
        Collector::reset();
    }

    #[test]
    fn snapshot_is_sorted_by_begin_timestamp() {
        let _serial = crate::test_support::lock();
        let _trace = Collector::enable_trace();
        Collector::reset();
        for _ in 0..8 {
            let _span = span("trace.sorted");
        }
        let snapshot = Collector::trace_snapshot();
        assert!(snapshot.events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        Collector::reset();
    }
}
