//! Numerical-health event aggregation.
//!
//! Solver kernels report scalar health metrics — backward error after a
//! solve, condition estimates after a factorisation, pivot growth, transient
//! step residuals — through [`check_metric`]. Every metric in this module
//! follows one contract: **larger is worse**. A measurement is classified
//! against its site's warning/error thresholds and folded into a
//! per-`(site, metric)` aggregate (event counts per severity, worst value
//! observed, the threshold that classification used), which
//! [`snapshot_report`] freezes into the [`HealthReport`] attached to every
//! [`ProfileSnapshot`](crate::ProfileSnapshot).
//!
//! Like every other site in this crate, health recording is free when
//! profiling is off: both entry points start with the
//! [`enabled`](crate::enabled) gate.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// How alarming a health measurement is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A routine measurement within its thresholds; recorded so the report
    /// shows how often each check ran and the worst value it ever saw.
    Info,
    /// The metric crossed its warning threshold: accuracy is degrading but
    /// results are still usable.
    Warning,
    /// The metric crossed its error threshold: results at this site are
    /// numerically suspect.
    Error,
}

impl Severity {
    /// Stable lower-case name used in JSON documents and summaries.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Per-`(site, metric)` aggregate.
#[derive(Debug, Clone)]
struct SiteStat {
    info: u64,
    warning: u64,
    error: u64,
    /// Largest value observed (larger is worse by module contract).
    worst: f64,
    /// The threshold the worst observation was classified against.
    threshold: f64,
    /// Highest severity observed at this site.
    severity: Severity,
}

fn registry() -> MutexGuard<'static, BTreeMap<(&'static str, &'static str), SiteStat>> {
    static SITES: OnceLock<Mutex<BTreeMap<(&'static str, &'static str), SiteStat>>> =
        OnceLock::new();
    SITES.get_or_init(Mutex::default).lock().unwrap_or_else(PoisonError::into_inner)
}

/// Records one pre-classified health event at `site` for `metric`.
///
/// `value` is the measurement, `threshold` the limit it was judged against.
/// No-op unless profiling is [`enabled`](crate::enabled). Most callers want
/// [`check_metric`], which classifies for them.
pub fn health_event(
    severity: Severity,
    site: &'static str,
    metric: &'static str,
    value: f64,
    threshold: f64,
) {
    if !crate::enabled() {
        return;
    }
    let mut sites = registry();
    let stat = sites.entry((site, metric)).or_insert(SiteStat {
        info: 0,
        warning: 0,
        error: 0,
        worst: f64::NEG_INFINITY,
        threshold,
        severity,
    });
    match severity {
        Severity::Info => stat.info += 1,
        Severity::Warning => stat.warning += 1,
        Severity::Error => stat.error += 1,
    }
    // A NaN measurement is maximally bad and pins the worst slot; otherwise
    // the largest value wins (larger is worse by module contract).
    if !stat.worst.is_nan() && (value.is_nan() || value > stat.worst) {
        stat.worst = value;
        stat.threshold = threshold;
    }
    stat.severity = stat.severity.max(severity);
}

/// Classifies `value` against the two thresholds (larger is worse: above
/// `error_threshold` → [`Severity::Error`], above `warn_threshold` →
/// [`Severity::Warning`], otherwise [`Severity::Info`]) and records the
/// event. Non-finite values are always errors. Returns the severity chosen,
/// or `None` when profiling is disabled and nothing was recorded.
pub fn check_metric(
    site: &'static str,
    metric: &'static str,
    value: f64,
    warn_threshold: f64,
    error_threshold: f64,
) -> Option<Severity> {
    if !crate::enabled() {
        return None;
    }
    let (severity, threshold) = if !value.is_finite() || value > error_threshold {
        (Severity::Error, error_threshold)
    } else if value > warn_threshold {
        (Severity::Warning, warn_threshold)
    } else {
        (Severity::Info, warn_threshold)
    };
    health_event(severity, site, metric, value, threshold);
    Some(severity)
}

/// One `(site, metric)` row of a [`HealthReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSite {
    /// Instrumentation site, e.g. `"sparse.solve"`.
    pub site: &'static str,
    /// Metric name, e.g. `"backward_error"`.
    pub metric: &'static str,
    /// Total events recorded at this site (all severities).
    pub count: u64,
    /// Worst (largest) value observed.
    pub worst_value: f64,
    /// Threshold the worst observation was classified against.
    pub threshold: f64,
    /// Highest severity observed at this site.
    pub severity: Severity,
}

/// Aggregated numerical-health state: per-severity totals plus one row per
/// `(site, metric)` pair, sorted by key for determinism.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Total info-severity events.
    pub info: u64,
    /// Total warning-severity events.
    pub warning: u64,
    /// Total error-severity events.
    pub error: u64,
    /// Per-`(site, metric)` rows, sorted by `(site, metric)`.
    pub sites: Vec<HealthSite>,
}

impl HealthReport {
    /// Whether any event has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The row for `(site, metric)`, if any events were recorded there.
    pub fn site(&self, site: &str, metric: &str) -> Option<&HealthSite> {
        self.sites.iter().find(|s| s.site == site && s.metric == metric)
    }

    /// The `k` most alarming rows: highest severity first, then largest
    /// worst-value-to-threshold ratio.
    pub fn worst_sites(&self, k: usize) -> Vec<&HealthSite> {
        let ratio = |s: &HealthSite| {
            if !s.worst_value.is_finite() {
                f64::INFINITY
            } else if s.threshold > 0.0 {
                s.worst_value / s.threshold
            } else {
                s.worst_value
            }
        };
        let mut rows: Vec<&HealthSite> = self.sites.iter().collect();
        rows.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| ratio(b).partial_cmp(&ratio(a)).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| (a.site, a.metric).cmp(&(b.site, b.metric)))
        });
        rows.truncate(k);
        rows
    }
}

/// Freezes the current health aggregates into a deterministic report.
pub(crate) fn snapshot_report() -> HealthReport {
    let sites = registry();
    let mut report = HealthReport::default();
    for (&(site, metric), stat) in sites.iter() {
        report.info += stat.info;
        report.warning += stat.warning;
        report.error += stat.error;
        report.sites.push(HealthSite {
            site,
            metric,
            count: stat.info + stat.warning + stat.error,
            worst_value: stat.worst,
            threshold: stat.threshold,
            severity: stat.severity,
        });
    }
    report
}

/// Clears every health aggregate.
pub(crate) fn reset() {
    registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    #[test]
    fn check_metric_classifies_and_aggregates() {
        let _serial = crate::test_support::lock();
        let _on = Collector::enable();
        Collector::reset();
        assert_eq!(
            check_metric("health.test_site", "residual", 1e-14, 1e-10, 1e-6),
            Some(Severity::Info)
        );
        assert_eq!(
            check_metric("health.test_site", "residual", 1e-8, 1e-10, 1e-6),
            Some(Severity::Warning)
        );
        assert_eq!(
            check_metric("health.test_site", "residual", 1e-3, 1e-10, 1e-6),
            Some(Severity::Error)
        );
        let report = snapshot_report();
        assert_eq!((report.info, report.warning, report.error), (1, 1, 1));
        let site = report.site("health.test_site", "residual").expect("row recorded");
        assert_eq!(site.count, 3);
        assert_eq!(site.severity, Severity::Error);
        assert_eq!(site.worst_value, 1e-3);
        assert_eq!(site.threshold, 1e-6);
        Collector::reset();
    }

    #[test]
    fn non_finite_values_are_errors_and_pin_the_worst_slot() {
        let _serial = crate::test_support::lock();
        let _on = Collector::enable();
        Collector::reset();
        check_metric("health.nan_site", "residual", 1e-20, 1e-10, 1e-6);
        assert_eq!(
            check_metric("health.nan_site", "residual", f64::NAN, 1e-10, 1e-6),
            Some(Severity::Error)
        );
        let report = snapshot_report();
        let site = report.site("health.nan_site", "residual").expect("row recorded");
        assert_eq!(site.severity, Severity::Error);
        assert!(site.worst_value.is_nan());
        Collector::reset();
    }

    #[test]
    fn disabled_health_checks_record_nothing() {
        let _serial = crate::test_support::lock();
        let _off = Collector::disable();
        Collector::reset();
        assert_eq!(check_metric("health.off_site", "residual", 1e9, 1.0, 2.0), None);
        health_event(Severity::Error, "health.off_site", "residual", 1e9, 1.0);
        assert!(snapshot_report().is_empty());
    }

    #[test]
    fn worst_sites_orders_by_severity_then_ratio() {
        let _serial = crate::test_support::lock();
        let _on = Collector::enable();
        Collector::reset();
        check_metric("health.rank_a", "m", 0.5, 1.0, 10.0); // info, ratio 0.5
        check_metric("health.rank_b", "m", 5.0, 1.0, 10.0); // warning, ratio 5
        check_metric("health.rank_c", "m", 2.0, 1.0, 10.0); // warning, ratio 2
        check_metric("health.rank_d", "m", 20.0, 1.0, 10.0); // error
        let report = snapshot_report();
        let worst: Vec<&str> = report.worst_sites(3).iter().map(|s| s.site).collect();
        assert_eq!(worst, ["health.rank_d", "health.rank_b", "health.rank_c"]);
        Collector::reset();
    }
}
