//! RAII timed spans with parent nesting.
//!
//! Each thread keeps a stack of the spans currently open on it. Opening a
//! span pushes a frame whose path is the parent's path plus its own name;
//! dropping the guard pops the frame, charges the elapsed time to the parent
//! frame's child accumulator (which is how **self time** — total minus
//! children — falls out without any post-processing) and folds the
//! occurrence into the registry under the full path.
//!
//! A span participates in up to two layers, decided once at creation time
//! (so toggling a layer mid-span never half-records anything): the metrics
//! **registry** when profiling is on, and the **timeline trace** buffer
//! when tracing is on ([`trace_enabled`](crate::trace_enabled)). The span
//! stack and path allocation are registry concerns; a trace-only span skips
//! them entirely and just records its leaf name plus timestamps.

use std::cell::RefCell;
use std::time::Instant;

/// One open span on the current thread.
struct Frame {
    path: String,
    /// Total wall time of already-finished direct children, seconds.
    child_seconds: f64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Opens a timed span named `name`, nested under whatever span is currently
/// open on this thread.
///
/// When profiling and tracing are both off this is a single relaxed atomic
/// load and the returned guard is inert. When profiling is on, the span
/// records its wall-clock duration (monotonic [`Instant`] clock) into the
/// registry on drop, keyed by its slash-joined path — so the same kernel
/// shows up separately per calling context (`"sparse.factor"` vs
/// `"transient.run/sparse.factor"`), exactly like a flame graph. When
/// tracing is on, the span also records a begin/duration timeline event
/// under its leaf name (see [`Collector::trace_snapshot`](crate::Collector)).
///
/// Guards are expected to drop in LIFO order (the natural result of binding
/// them to scopes). Out-of-order drops are tolerated: any deeper frames
/// still open are folded into their parents as if closed at that moment.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with_index(name, None)
}

/// Opens a timed span whose timeline event carries an index tag, rendered
/// as `name[index]` in trace exports.
///
/// The registry path is unaffected — indexed instances aggregate under the
/// plain `name`, keeping registry key cardinality bounded — but on the
/// trace timeline each instance is individually attributable (the sweep
/// executor tags each worker cell span with its cell index this way).
#[inline]
pub fn span_indexed(name: &'static str, index: u64) -> SpanGuard {
    span_with_index(name, Some(index))
}

#[inline]
fn span_with_index(name: &'static str, index: Option<u64>) -> SpanGuard {
    let state = crate::state_bits();
    let profiled = state & crate::PROFILE != 0;
    let traced = state & crate::TRACE != 0;
    if !profiled && !traced {
        return SpanGuard(None);
    }
    if traced {
        // Pin the trace epoch at span *open* so begin timestamps are never
        // negative, no matter which span finishes first.
        crate::trace::epoch();
    }
    let registry = if profiled {
        Some(SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{name}", parent.path),
                None => name.to_owned(),
            };
            stack.push(Frame { path: path.clone(), child_seconds: 0.0 });
            (path, stack.len())
        }))
    } else {
        None
    };
    SpanGuard(Some(ActiveSpan { name, index, registry, traced, start: Instant::now() }))
}

/// Live state of an enabled span between [`span`] and the guard's drop.
#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    index: Option<u64>,
    /// Registry bookkeeping — slash-joined path and the stack length right
    /// after this span's frame was pushed (used to find, and defensively
    /// close past, the frame on drop). `None` for trace-only spans.
    registry: Option<(String, usize)>,
    /// Whether this span records a timeline event on drop.
    traced: bool,
    start: Instant,
}

/// RAII guard returned by [`span`]; records the timing when dropped.
#[derive(Debug)]
#[must_use = "a span measures the scope holding its guard; dropping it immediately records nothing useful"]
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let end = Instant::now();
        if active.traced {
            crate::trace::record(active.name, active.index, active.start, end);
        }
        let Some((path, depth)) = active.registry else {
            return;
        };
        let elapsed = end.saturating_duration_since(active.start).as_secs_f64();
        let child_seconds = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Defensive: drop any deeper frames an out-of-order caller left
            // open, then pop our own.
            stack.truncate(depth);
            let child = stack.pop().map_or(0.0, |frame| frame.child_seconds);
            if let Some(parent) = stack.last_mut() {
                parent.child_seconds += elapsed;
            }
            child
        });
        let self_seconds = (elapsed - child_seconds).max(0.0);
        crate::metrics::record_span(&path, elapsed, self_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::Collector;

    #[test]
    fn nesting_builds_paths_and_self_time_excludes_children() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        Collector::reset();
        {
            let _outer = span("span.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("span.inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let snapshot = Collector::snapshot();
        let outer = snapshot.span("span.outer").expect("outer span recorded");
        let inner = snapshot.span("span.outer/span.inner").expect("inner span nested under outer");
        assert!(snapshot.span("span.inner").is_none(), "inner must not appear as a root span");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_seconds >= inner.total_seconds);
        // Outer self time excludes the inner child entirely.
        assert!(
            outer.self_seconds <= outer.total_seconds - inner.total_seconds + 1e-6,
            "outer self {} vs total {} minus inner {}",
            outer.self_seconds,
            outer.total_seconds,
            inner.total_seconds
        );
        assert!(inner.self_seconds > 0.0);
        assert!(outer.min_seconds <= outer.max_seconds);
    }

    #[test]
    fn sibling_spans_share_a_parent_path_and_aggregate_by_count() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        Collector::reset();
        {
            let _parent = span("span.parent");
            for _ in 0..3 {
                let _child = span("span.child");
            }
        }
        let snapshot = Collector::snapshot();
        assert_eq!(snapshot.span("span.parent/span.child").map(|s| s.count), Some(3));
    }

    #[test]
    fn spans_opened_while_disabled_stay_inert_across_a_late_enable() {
        let _serial = test_support::lock();
        let off = Collector::disable();
        let trace_off = Collector::disable_trace();
        Collector::reset();
        let guard = span("span.inert");
        let on = Collector::enable();
        let trace_on = Collector::enable_trace();
        drop(guard); // created disabled ⇒ records nothing even though now enabled
        assert!(Collector::snapshot().span("span.inert").is_none());
        assert!(Collector::trace_snapshot().events_named("span.inert").next().is_none());
        drop(trace_on);
        drop(on);
        drop(trace_off);
        drop(off);
    }

    #[test]
    fn indexed_spans_aggregate_under_the_plain_name_in_the_registry() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        let _trace_off = Collector::disable_trace();
        Collector::reset();
        for i in 0..4 {
            let _cell = span_indexed("span.cell", i);
        }
        let snapshot = Collector::snapshot();
        assert_eq!(snapshot.span("span.cell").map(|s| s.count), Some(4));
        assert!(snapshot.spans.iter().all(|s| !s.name.contains('[')));
        Collector::reset();
    }
}
