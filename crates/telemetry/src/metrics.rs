//! The thread-safe metrics registry: counters, gauges, duration histograms
//! and span statistics.
//!
//! Counters, gauges and histogram buckets are plain atomics behind a
//! read-mostly `RwLock<BTreeMap>`: the write lock is only taken the first
//! time a name appears, after which concurrent recordings from the sweep
//! worker pool are lock-free `fetch_add`s on shared `Arc`ed cells. Span
//! statistics are keyed by dynamic path strings and folded under a `Mutex`
//! (span *ends* are orders of magnitude rarer than counter bumps).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};

/// Number of power-of-two duration buckets: bucket `i` holds durations in
/// `[2^i, 2^{i+1})` nanoseconds (bucket 0 additionally holds sub-ns
/// observations), so 48 buckets span one nanosecond to ~3 days.
pub(crate) const HISTOGRAM_BUCKETS: usize = 48;

/// A fixed-layout concurrent duration histogram.
#[derive(Debug)]
pub(crate) struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Sum of observed durations in nanoseconds (saturating).
    sum_ns: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, seconds: f64) {
        let ns = seconds_to_ns(seconds);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating accumulation: overflow would need ~584 years of
        // recorded time, but stay defensive rather than wrap.
        let mut current = self.sum_ns.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(ns);
            match self.sum_ns.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub(crate) fn sum_seconds(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Non-empty buckets as `(inclusive upper bound in seconds, count)`,
    /// ascending.
    pub(crate) fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_seconds(i), n))
            })
            .collect()
    }
}

/// Maps a duration to nanoseconds for bucketing; non-finite and negative
/// observations clamp to zero rather than poisoning the histogram.
fn seconds_to_ns(seconds: f64) -> u64 {
    if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e9).min(u64::MAX as f64) as u64
    } else {
        0
    }
}

/// Bucket of a nanosecond duration: `floor(log2(ns))`, clamped to the table.
pub(crate) fn bucket_index(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Exclusive upper bound of bucket `i`, in seconds (`2^{i+1}` ns); the last
/// bucket is unbounded and reports its nominal edge.
pub(crate) fn bucket_upper_seconds(i: usize) -> f64 {
    2f64.powi(i as i32 + 1) * 1e-9
}

/// Accumulated statistics of one span path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanStat {
    pub(crate) count: u64,
    pub(crate) total_seconds: f64,
    pub(crate) self_seconds: f64,
    pub(crate) min_seconds: f64,
    pub(crate) max_seconds: f64,
}

/// The process-wide registry. Metric maps are keyed by `&'static str`
/// because every instrumentation site names its metric with a literal;
/// span paths are built at runtime and keyed by `String`.
pub(crate) struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(BTreeMap::new()),
        gauges: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
    })
}

/// Looks up (or lazily creates) the shared cell for `name`. The read lock
/// covers the common path; the write lock is only taken on first use of a
/// name. Lock poisoning is ignored — the maps hold atomics whose state is
/// valid regardless of where a panicking thread stopped.
fn cell<V>(
    map: &RwLock<BTreeMap<&'static str, Arc<V>>>,
    name: &'static str,
    new: fn() -> V,
) -> Arc<V> {
    if let Some(v) = map.read().unwrap_or_else(PoisonError::into_inner).get(name) {
        return Arc::clone(v);
    }
    let mut writer = map.write().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(writer.entry(name).or_insert_with(|| Arc::new(new())))
}

/// Adds `delta` to the counter `name`. One relaxed atomic load when
/// profiling is off.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    cell(&registry().counters, name, || AtomicU64::new(0)).fetch_add(delta, Ordering::Relaxed);
}

/// Sets the gauge `name` to `value` (last write wins). One relaxed atomic
/// load when profiling is off.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    cell(&registry().gauges, name, || AtomicU64::new(0)).store(value.to_bits(), Ordering::Relaxed);
}

/// Records one duration observation into the histogram `name`. One relaxed
/// atomic load when profiling is off.
#[inline]
pub fn observe_seconds(name: &'static str, seconds: f64) {
    if !crate::enabled() {
        return;
    }
    cell(&registry().histograms, name, Histogram::new).record(seconds);
}

/// Folds one finished span occurrence into the stats of its path.
pub(crate) fn record_span(path: &str, total_seconds: f64, self_seconds: f64) {
    let mut spans = lock_spans();
    match spans.get_mut(path) {
        Some(stat) => {
            stat.count += 1;
            stat.total_seconds += total_seconds;
            stat.self_seconds += self_seconds;
            stat.min_seconds = stat.min_seconds.min(total_seconds);
            stat.max_seconds = stat.max_seconds.max(total_seconds);
        }
        None => {
            spans.insert(
                path.to_owned(),
                SpanStat {
                    count: 1,
                    total_seconds,
                    self_seconds,
                    min_seconds: total_seconds,
                    max_seconds: total_seconds,
                },
            );
        }
    }
}

pub(crate) fn lock_spans() -> MutexGuard<'static, BTreeMap<String, SpanStat>> {
    registry().spans.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears every accumulated metric (the registered names are forgotten,
/// not just zeroed, so snapshots after a reset only show fresh activity).
pub(crate) fn reset() {
    let r = registry();
    r.counters.write().unwrap_or_else(PoisonError::into_inner).clear();
    r.gauges.write().unwrap_or_else(PoisonError::into_inner).clear();
    r.histograms.write().unwrap_or_else(PoisonError::into_inner).clear();
    lock_spans().clear();
}

/// Snapshot accessors used by the exporter.
pub(crate) fn counters_snapshot() -> Vec<(String, u64)> {
    registry()
        .counters
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(name, v)| ((*name).to_owned(), v.load(Ordering::Relaxed)))
        .collect()
}

pub(crate) fn gauges_snapshot() -> Vec<(String, f64)> {
    registry()
        .gauges
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(name, v)| ((*name).to_owned(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect()
}

/// One exported histogram: `(name, count, sum_seconds, nonzero (le, count) buckets)`.
pub(crate) type HistogramRow = (String, u64, f64, Vec<(f64, u64)>);

pub(crate) fn histograms_snapshot() -> Vec<HistogramRow> {
    registry()
        .histograms
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(name, h)| ((*name).to_owned(), h.count(), h.sum_seconds(), h.nonzero_buckets()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::Collector;

    #[test]
    fn bucket_index_follows_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        // Everything past the table clamps into the last bucket.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Bucket upper bounds are the exclusive power-of-two edges.
        assert!((bucket_upper_seconds(0) - 2e-9).abs() < 1e-18);
        assert!((bucket_upper_seconds(9) - 1024e-9).abs() < 1e-12);
    }

    #[test]
    fn pathological_observations_clamp_to_zero() {
        assert_eq!(seconds_to_ns(f64::NAN), 0);
        assert_eq!(seconds_to_ns(f64::INFINITY), 0);
        assert_eq!(seconds_to_ns(-1.0), 0);
        assert_eq!(seconds_to_ns(1e-12), 0); // sub-ns rounds down
        assert_eq!(seconds_to_ns(1.5e-9), 1);
    }

    #[test]
    fn histogram_buckets_observations_where_expected() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        Collector::reset();
        // 100 ns → bucket 6 ([64, 128) ns, upper edge 128 ns); 1 ms → bucket
        // 19 ([~0.52, ~1.05) ms, upper edge 2^20 ns).
        observe_seconds("metrics.bucketing", 100e-9);
        observe_seconds("metrics.bucketing", 100e-9);
        observe_seconds("metrics.bucketing", 1e-3);
        let snapshot = Collector::snapshot();
        let h = snapshot
            .histograms
            .iter()
            .find(|h| h.name == "metrics.bucketing")
            .expect("histogram recorded");
        assert_eq!(h.count, 3);
        assert!((h.sum_seconds - (200e-9 + 1e-3)).abs() < 1e-9);
        assert_eq!(h.buckets.len(), 2, "two distinct buckets: {:?}", h.buckets);
        let (edge_fast, n_fast) = h.buckets[0];
        let (edge_slow, n_slow) = h.buckets[1];
        assert_eq!(n_fast, 2);
        assert!((edge_fast - 128e-9).abs() < 1e-15, "100 ns lands in [64, 128) ns");
        assert_eq!(n_slow, 1);
        assert!((edge_slow - 2f64.powi(20) * 1e-9).abs() < 1e-12, "1 ms lands under 2^20 ns");
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        Collector::reset();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        counter_add("metrics.concurrent", 1);
                    }
                });
            }
        });
        let snapshot = Collector::snapshot();
        assert_eq!(snapshot.counter("metrics.concurrent"), Some(THREADS * PER_THREAD));
    }

    #[test]
    fn gauges_are_last_write_wins_and_reset_clears() {
        let _serial = test_support::lock();
        let _on = Collector::enable();
        Collector::reset();
        gauge_set("metrics.gauge", 1.5);
        gauge_set("metrics.gauge", 2.5);
        assert_eq!(Collector::snapshot().gauge("metrics.gauge"), Some(2.5));
        Collector::reset();
        assert_eq!(Collector::snapshot().gauge("metrics.gauge"), None);
    }
}
