//! Property-based tests of the circuit simulator.
//!
//! Random (but physically sensible) driven RLC ladders must obey the physics
//! no matter which parameters are drawn: the output settles to the supply,
//! the 50% delay is positive and no smaller than (almost) the time of flight,
//! AC analysis at `s = 0` reproduces the DC gain, and the delay measured by
//! the transient solver is consistent with the exact frequency-domain answer
//! at low frequency.

use proptest::prelude::*;

use rlckit_circuit::ac::transfer_function;
use rlckit_circuit::dc::operating_point_at;
use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit_circuit::netlist::Circuit;
use rlckit_circuit::source::SourceWaveform;
use rlckit_numeric::complex::Complex;
use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};

/// A physically plausible driven line:
/// Rt ∈ [10 Ω, 5 kΩ], Lt ∈ [0.1, 50] nH, Ct ∈ [0.1, 2] pF,
/// Rtr ∈ [0, 1 kΩ], CL ∈ [0, 1] pF.
fn arb_spec() -> impl Strategy<Value = LadderSpec> {
    (10.0f64..5e3, 1e-10f64..5e-8, 1e-13f64..2e-12, 0.0f64..1e3, 0.0f64..1e-12).prop_map(
        |(rt, lt, ct, rtr, cl)| LadderSpec {
            total_resistance: Resistance::from_ohms(rt),
            total_inductance: Inductance::from_henries(lt),
            total_capacitance: Capacitance::from_farads(ct),
            segments: 25,
            style: SegmentStyle::Pi,
            driver_resistance: Resistance::from_ohms(rtr),
            load_capacitance: Capacitance::from_farads(cl),
            supply: Voltage::from_volts(1.0),
        },
    )
}

proptest! {
    // Transient simulations are comparatively expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn step_response_delay_is_physical(spec in arb_spec()) {
        let m = measure_step_delay(&spec).expect("simulation runs");
        let tof = (spec.total_inductance.henries()
            * (spec.total_capacitance.farads() + spec.load_capacitance.farads()))
        .sqrt();
        prop_assert!(m.delay_50.seconds() > 0.0);
        // The signal can never beat (much of) the wave time of flight.
        prop_assert!(
            m.delay_50.seconds() > 0.5 * tof,
            "delay {} beat the time of flight {}",
            m.delay_50.seconds(),
            tof
        );
        prop_assert!(m.rise_time.seconds() > 0.0);
        prop_assert!(m.overshoot_percent >= 0.0 && m.overshoot_percent < 120.0);
    }

    #[test]
    fn dc_gain_is_unity_for_any_ladder(spec in arb_spec()) {
        let line = spec.build().expect("builds");
        // At (numerically) zero frequency the line passes DC: gain 1 to the far end.
        let h = transfer_function(&line.circuit, line.source, line.output, Complex::new(1.0, 0.0))
            .expect("solvable");
        prop_assert!((h.re - 1.0).abs() < 1e-3, "near-DC gain {}", h.re);
        prop_assert!(h.im.abs() < 1e-3);
    }

    #[test]
    fn dc_operating_point_tracks_the_source_value(spec in arb_spec(), when_ps in 1.0f64..1000.0) {
        // After the step has fired, the DC solution of the (resistive) network
        // puts the far end at the full supply: capacitors are open, inductors short.
        let line = spec.build().expect("builds");
        let dc = operating_point_at(&line.circuit, Time::from_picoseconds(when_ps))
            .expect("solvable");
        prop_assert!((dc.node_voltage(line.output).volts() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn series_rc_delay_matches_theory_for_random_values(
        r_ohms in 10.0f64..10e3,
        c_farads in 1e-14f64..1e-11,
    ) {
        // Lumped RC low-pass: 50% delay is exactly ln(2)·RC; the simulator must
        // reproduce it for any drawn component values.
        let mut circuit = Circuit::new();
        let input = circuit.add_node();
        let out = circuit.add_node();
        let gnd = circuit.ground();
        circuit
            .add_voltage_source(input, gnd, SourceWaveform::unit_step())
            .expect("valid");
        circuit
            .add_resistor(input, out, Resistance::from_ohms(r_ohms))
            .expect("valid");
        circuit
            .add_capacitor(out, gnd, Capacitance::from_farads(c_farads))
            .expect("valid");

        let tau = r_ohms * c_farads;
        let options = rlckit_circuit::transient::TransientOptions::new(
            Time::from_seconds(6.0 * tau),
            Time::from_seconds(tau / 500.0),
        );
        let result = rlckit_circuit::transient::run_transient(&circuit, &options).expect("runs");
        let delay = result
            .node_voltage(out)
            .delay_50(Voltage::from_volts(1.0))
            .expect("crosses");
        let expected = std::f64::consts::LN_2 * tau;
        prop_assert!(
            (delay.seconds() - expected).abs() / expected < 0.01,
            "delay {} vs ln2·RC {}",
            delay.seconds(),
            expected
        );
    }
}
