//! Property test of the factorization pattern cache: for any (physically
//! sensible) ladder values, routing a sparse factorization through the
//! enabled cache must not change the answer. A cold miss takes the same
//! code path as an uncached factorization, and a value hit replays the
//! stored template verbatim — so both must solve to **bit-identical**
//! vectors against the cache-disabled baseline.

use proptest::prelude::*;

use rlckit_circuit::mna::MnaSystem;
use rlckit_circuit::netlist::Circuit;
use rlckit_circuit::pattern_cache::{self, PatternCacheGuard};
use rlckit_circuit::source::SourceWaveform;
use rlckit_numeric::sparse::SparseLuFactor;
use rlckit_units::{Capacitance, Inductance, Resistance};

/// A driven RLC ladder with per-section values drawn by the property.
fn ladder(r_per: f64, l_ph: f64, c_ff: f64, sections: usize) -> MnaSystem {
    let mut c = Circuit::new();
    let gnd = c.ground();
    let input = c.add_node();
    c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
    let mut prev = input;
    for _ in 0..sections {
        let mid = c.add_node();
        let next = c.add_node();
        c.add_resistor(prev, mid, Resistance::from_ohms(r_per)).unwrap();
        c.add_inductor(mid, next, Inductance::from_picohenries(l_ph)).unwrap();
        c.add_capacitor(next, gnd, Capacitance::from_femtofarads(c_ff)).unwrap();
        prev = next;
    }
    MnaSystem::build(&c).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cached_factorizations_solve_bit_identically_to_cold_ones(
        r_per in 1.0f64..500.0,
        l_ph in 1.0f64..100.0,
        c_ff in 1.0f64..50.0,
    ) {
        let _serial = pattern_cache::test_support::lock();
        let mna = ladder(r_per, l_ph, c_ff, 20);
        let a = mna.assemble_csc_real(1.0, 0.0);
        let b: Vec<f64> = (0..a.dim()).map(|i| 1.0 + i as f64 * 0.25).collect();

        // Baseline: the cache disabled entirely.
        let x_cold = {
            let _off = PatternCacheGuard::disable();
            let f = SparseLuFactor::factor(&a, mna.sparse_symbolic()).expect("cold factor");
            f.solve(&b)
        };

        // Cache enabled: first pass is a miss (same code path as cold),
        // second pass a value hit (template replay).
        let _on = PatternCacheGuard::enable();
        pattern_cache::clear();
        pattern_cache::reset_stats();
        let x_miss = pattern_cache::factor_real(&a, mna.sparse_symbolic())
            .expect("miss factors")
            .solve(&b);
        let x_hit = pattern_cache::factor_real(&a, mna.sparse_symbolic())
            .expect("value hit factors")
            .solve(&b);
        prop_assert_eq!(pattern_cache::stats().misses, 1);
        prop_assert_eq!(pattern_cache::stats().value_hits, 1);

        for ((c, m), h) in x_cold.iter().zip(&x_miss).zip(&x_hit) {
            prop_assert_eq!(c.to_bits(), m.to_bits(), "a cache miss must match cold bit-for-bit");
            prop_assert_eq!(m.to_bits(), h.to_bits(), "a value hit must replay bit-for-bit");
        }
        pattern_cache::clear();
    }
}
