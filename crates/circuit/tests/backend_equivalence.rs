//! Acceptance test for the pluggable solver backend: on a long RLC ladder the
//! banded kernel must reproduce the dense kernel's voltage waveforms to well
//! below any physically meaningful difference.

use rlckit_circuit::ladder::{LadderSpec, SegmentStyle};
use rlckit_circuit::transient::{run_transient, TransientOptions};
use rlckit_circuit::{ResolvedBackend, SolverBackend};
use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};

fn ladder(segments: usize) -> LadderSpec {
    LadderSpec {
        total_resistance: Resistance::from_ohms(500.0),
        total_inductance: Inductance::from_nanohenries(10.0),
        total_capacitance: Capacitance::from_picofarads(1.0),
        segments,
        style: SegmentStyle::Pi,
        driver_resistance: Resistance::from_ohms(250.0),
        load_capacitance: Capacitance::from_picofarads(0.1),
        supply: Voltage::from_volts(1.0),
    }
}

#[test]
fn banded_matches_dense_on_a_200_section_ladder() {
    let spec = ladder(200);
    let line = spec.build().expect("ladder builds");
    // A modest fixed horizon keeps the dense reference run affordable while
    // still covering the 50% crossing and the first ringing cycles.
    let options = TransientOptions::new(Time::from_nanoseconds(0.5), Time::from_picoseconds(1.0));

    let banded = run_transient(&line.circuit, &options.with_backend(SolverBackend::Banded))
        .expect("banded run");
    let dense = run_transient(&line.circuit, &options.with_backend(SolverBackend::Dense))
        .expect("dense run");
    assert_eq!(banded.backend(), ResolvedBackend::Banded);
    assert_eq!(dense.backend(), ResolvedBackend::Dense);

    for node in [line.input, line.output] {
        let wb = banded.node_voltage(node);
        let wd = dense.node_voltage(node);
        let mut max_diff = 0.0f64;
        for (b, d) in wb.values().iter().zip(wd.values().iter()) {
            max_diff = max_diff.max((b - d).abs());
        }
        assert!(max_diff < 1e-9, "waveforms disagree by {max_diff} at node {node:?}");
    }
}

#[test]
fn auto_backend_selects_banded_for_the_ladder_and_matches_it() {
    let spec = ladder(120);
    let line = spec.build().expect("ladder builds");
    let options = TransientOptions::new(Time::from_nanoseconds(0.3), Time::from_picoseconds(1.0));
    let auto = run_transient(&line.circuit, &options).expect("auto run");
    assert_eq!(auto.backend(), ResolvedBackend::Banded);
    let forced = run_transient(&line.circuit, &options.with_backend(SolverBackend::Banded))
        .expect("banded run");
    let wa = auto.node_voltage(line.output);
    let wf = forced.node_voltage(line.output);
    for (a, f) in wa.values().iter().zip(wf.values().iter()) {
        assert_eq!(a, f, "auto must be bit-identical to the banded kernel it picked");
    }
}

#[test]
fn sparse_matches_dense_on_a_wide_tree_and_auto_selects_it() {
    use rlckit_circuit::tree::{TreeBranch, TreeSpec};

    // A flat 30-way fan-out: no ordering gives this a narrow band, so Auto
    // must route to the sparse kernel — whose waveforms must match the dense
    // reference at every sink.
    let mut spec = TreeSpec::new(Resistance::from_ohms(200.0));
    let branch = |parent: Option<usize>| TreeBranch {
        parent,
        total_resistance: Resistance::from_ohms(150.0),
        total_inductance: Inductance::from_nanohenries(3.0),
        total_capacitance: Capacitance::from_picofarads(0.3),
        segments: 6,
        sink_capacitance: Capacitance::from_femtofarads(20.0),
    };
    spec.branches.push(branch(None));
    for _ in 0..30 {
        spec.branches.push(branch(Some(0)));
    }
    let net = spec.build().expect("tree builds");
    let options = TransientOptions::new(Time::from_nanoseconds(0.4), Time::from_picoseconds(1.0));

    let auto =
        run_transient(&net.circuit, &options.with_backend(SolverBackend::Auto)).expect("auto run");
    let sparse = run_transient(&net.circuit, &options.with_backend(SolverBackend::Sparse))
        .expect("sparse run");
    let dense = run_transient(&net.circuit, &options.with_backend(SolverBackend::Dense))
        .expect("dense run");
    assert_eq!(auto.backend(), ResolvedBackend::Sparse);
    assert_eq!(sparse.backend(), ResolvedBackend::Sparse);

    for sink in &net.sinks {
        let ws = sparse.node_voltage(sink.node);
        let wd = dense.node_voltage(sink.node);
        let wa = auto.node_voltage(sink.node);
        let mut max_diff = 0.0f64;
        for ((s, d), a) in ws.values().iter().zip(wd.values().iter()).zip(wa.values().iter()) {
            max_diff = max_diff.max((s - d).abs());
            assert_eq!(s, a, "Auto must be bit-identical to the kernel it picks");
        }
        assert!(max_diff < 1e-9, "sparse vs dense disagree by {max_diff} at sink {sink:?}");
    }
}
