//! Complex-frequency (AC / Laplace-domain) analysis.
//!
//! Solves `(G + s·C)·X(s) = B` at an arbitrary complex frequency `s`, with a
//! single selected source driven at unit amplitude. This gives exact transfer
//! functions of the lumped circuit, used to cross-check the transient solver
//! and to compare a segmented ladder against the exact distributed-line
//! two-port of the `interconnect` crate.
//!
//! The complex system is assembled in band form and factorised through the
//! pluggable solver backend, so frequency sweeps over long ladders run on the
//! banded `O(n·b²)` kernel rather than the dense `O(n³)` one.

use rlckit_numeric::complex::Complex;
use rlckit_numeric::solver::SolverBackend;
use rlckit_units::Frequency;

use crate::error::CircuitError;
use crate::mna::MnaSystem;
use crate::netlist::{Circuit, NodeId, SourceId};
use crate::solve::{factor_complex, FactoredMna};

/// Complex-frequency solution of a circuit for one excitation.
#[derive(Debug, Clone)]
pub struct AcSolution {
    state: Vec<Complex>,
}

impl AcSolution {
    /// Complex node voltage (transfer function value) at `node`.
    pub fn node_voltage(&self, node: NodeId) -> Complex {
        if node.is_ground() {
            Complex::ZERO
        } else {
            self.state[node.index() - 1]
        }
    }
}

/// Solves the circuit at a single complex frequency with `source` driven at
/// unit amplitude (all other sources off).
///
/// # Errors
///
/// Returns [`CircuitError::EmptyCircuit`], [`CircuitError::UnknownSource`], or
/// [`CircuitError::SingularSystem`] if the complex system cannot be factorised.
pub fn solve_at(
    circuit: &Circuit,
    source: SourceId,
    s: Complex,
) -> Result<AcSolution, CircuitError> {
    solve_at_with(circuit, source, s, SolverBackend::Auto)
}

/// Like [`solve_at`], with an explicit choice of solver backend.
///
/// # Errors
///
/// Same conditions as [`solve_at`].
pub fn solve_at_with(
    circuit: &Circuit,
    source: SourceId,
    s: Complex,
    backend: SolverBackend,
) -> Result<AcSolution, CircuitError> {
    let mna = MnaSystem::build(circuit)?;
    let b = mna.unit_excitation(source)?;
    // Assembly is routed by the resolved backend: band storage for the
    // dense/banded kernels, compressed-sparse-column for the sparse kernel.
    let factor = factor_complex(&mna, s, backend, "ac analysis")?;
    let state = factor.solve(&b);
    Ok(AcSolution { state })
}

/// Solves the circuit at one complex frequency for several excitations at
/// once — each source in turn driven at unit amplitude with the others off.
///
/// One factorisation and one blocked multi-right-hand-side substitution
/// ([`FactoredMna::solve_many`]) cover every port, so a full MIMO transfer
/// matrix column set costs one factor instead of one per port.
///
/// # Errors
///
/// Same conditions as [`solve_at`], per source.
pub fn solve_at_many(
    circuit: &Circuit,
    sources: &[SourceId],
    s: Complex,
    backend: SolverBackend,
) -> Result<Vec<AcSolution>, CircuitError> {
    let mna = MnaSystem::build(circuit)?;
    let rhs =
        sources.iter().map(|&source| mna.unit_excitation(source)).collect::<Result<Vec<_>, _>>()?;
    let factor = factor_complex(&mna, s, backend, "ac analysis")?;
    Ok(factor.solve_many(&rhs).into_iter().map(|state| AcSolution { state }).collect())
}

/// Transfer function `V(node)/V(source)` at a single complex frequency.
///
/// # Errors
///
/// Same conditions as [`solve_at`], plus [`CircuitError::UnknownNode`] for a
/// foreign node.
pub fn transfer_function(
    circuit: &Circuit,
    source: SourceId,
    node: NodeId,
    s: Complex,
) -> Result<Complex, CircuitError> {
    circuit.validate_node(node)?;
    Ok(solve_at(circuit, source, s)?.node_voltage(node))
}

/// Magnitude and phase of the transfer function over a list of real frequencies.
///
/// Returns one `(frequency, magnitude, phase_radians)` triple per input
/// frequency.
///
/// # Errors
///
/// Same conditions as [`transfer_function`].
pub fn frequency_sweep(
    circuit: &Circuit,
    source: SourceId,
    node: NodeId,
    frequencies: &[Frequency],
) -> Result<Vec<(Frequency, f64, f64)>, CircuitError> {
    circuit.validate_node(node)?;
    // Assemble the stamps and ordering once; only the factorisation depends
    // on the frequency.
    let mna = MnaSystem::build(circuit)?;
    let b = mna.unit_excitation(source)?;
    let row = mna.row_of_node(node);
    let mut out = Vec::with_capacity(frequencies.len());
    // Factor the first frequency cold, then re-derive the factors per
    // frequency on the warm path: the pattern of `G + s·C` never changes
    // across a sweep, so the sparse kernel only redoes numeric work.
    let mut factor: Option<FactoredMna<Complex>> = None;
    for &f in frequencies {
        let s = Complex::new(0.0, f.angular());
        match factor.as_mut() {
            None => factor = Some(factor_complex(&mna, s, SolverBackend::Auto, "ac analysis")?),
            Some(warm) => warm.refactor_complex(&mna, s, "ac analysis")?,
        }
        let state = factor.as_ref().expect("factored above").solve(&b);
        let h = match row {
            Some(r) => state[r],
            None => Complex::ZERO,
        };
        out.push((f, h.abs(), h.arg()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    /// RC low-pass with τ = 1 ns.
    fn rc_lowpass() -> (Circuit, SourceId, NodeId) {
        let mut c = Circuit::new();
        let input = c.add_node();
        let out = c.add_node();
        let gnd = c.ground();
        let src = c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(input, out, Resistance::from_ohms(1000.0)).unwrap();
        c.add_capacitor(out, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        (c, src, out)
    }

    #[test]
    fn dc_gain_of_lowpass_is_unity() {
        let (c, src, out) = rc_lowpass();
        let h = transfer_function(&c, src, out, Complex::ZERO).unwrap();
        assert!((h.re - 1.0).abs() < 1e-6);
        assert!(h.im.abs() < 1e-9);
    }

    #[test]
    fn corner_frequency_gain_is_minus_3db() {
        let (c, src, out) = rc_lowpass();
        let tau = 1e-9;
        let s = Complex::new(0.0, 1.0 / tau);
        let h = transfer_function(&c, src, out, s).unwrap();
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((h.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-6);
    }

    #[test]
    fn matches_analytic_first_order_transfer() {
        let (c, src, out) = rc_lowpass();
        let tau = 1e-9;
        for &(re, im) in &[(1e8, 5e8), (2e9, -1e9), (0.0, 3e9)] {
            let s = Complex::new(re, im);
            let h = transfer_function(&c, src, out, s).unwrap();
            let want = (s * tau + 1.0).recip();
            assert!((h - want).abs() < 1e-6, "s = {s}: got {h}, want {want}");
        }
    }

    #[test]
    fn series_rlc_resonance() {
        // Series RLC to ground measured across the capacitor: |H| peaks near
        // the resonant frequency for low damping.
        let mut c = Circuit::new();
        let input = c.add_node();
        let mid = c.add_node();
        let out = c.add_node();
        let gnd = c.ground();
        let src = c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(input, mid, Resistance::from_ohms(10.0)).unwrap();
        c.add_inductor(mid, out, Inductance::from_nanohenries(10.0)).unwrap();
        c.add_capacitor(out, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (10e-9f64 * 1e-12).sqrt());
        let freqs: Vec<Frequency> =
            [0.2, 0.5, 1.0, 2.0, 5.0].iter().map(|m| Frequency::from_hertz(m * f0)).collect();
        let sweep = frequency_sweep(&c, src, out, &freqs).unwrap();
        assert_eq!(sweep.len(), 5);
        let gains: Vec<f64> = sweep.iter().map(|(_, g, _)| *g).collect();
        // Gain at resonance exceeds the DC gain (which is ~1).
        assert!(gains[2] > 2.0, "resonant gain {}", gains[2]);
        // Well above resonance the line attenuates.
        assert!(gains[4] < 0.2, "high-frequency gain {}", gains[4]);
    }

    #[test]
    fn backends_agree_on_a_ladder_transfer_function() {
        use crate::ladder::{LadderSpec, SegmentStyle};
        use rlckit_units::Voltage;
        let spec = LadderSpec {
            total_resistance: Resistance::from_ohms(500.0),
            total_inductance: Inductance::from_nanohenries(10.0),
            total_capacitance: Capacitance::from_picofarads(1.0),
            segments: 30,
            style: SegmentStyle::Pi,
            driver_resistance: Resistance::from_ohms(250.0),
            load_capacitance: Capacitance::from_picofarads(0.1),
            supply: Voltage::from_volts(1.0),
        };
        let line = spec.build().unwrap();
        for &(re, im) in &[(0.0, 1e9), (5e8, -2e9), (1e9, 0.0)] {
            let s = Complex::new(re, im);
            let dense = solve_at_with(&line.circuit, line.source, s, SolverBackend::Dense)
                .unwrap()
                .node_voltage(line.output);
            let banded = solve_at_with(&line.circuit, line.source, s, SolverBackend::Banded)
                .unwrap()
                .node_voltage(line.output);
            assert!((dense - banded).abs() < 1e-9, "s = {s}: {dense} vs {banded}");
        }
    }

    #[test]
    fn coupled_inductor_pair_matches_the_transformer_two_port() {
        // Source → R1 → L1‖gnd, magnetically coupled to L2‖gnd loaded by R2:
        // the classical transformer. Closed form (currents flowing plus → minus
        // through each inductor, both plus terminals dotted):
        //   I1 = Vs / (R1 + s·L1 − (s·M)²/(R2 + s·L2))
        //   V2 = s·M·I1·R2 / (R2 + s·L2)
        let r1 = 75.0;
        let r2 = 50.0;
        let l1 = 4e-9f64;
        let l2 = 9e-9;
        let k = 0.6;
        let m = k * (l1 * l2).sqrt();

        let mut c = Circuit::new();
        let input = c.add_node();
        let primary = c.add_node();
        let secondary = c.add_node();
        let gnd = c.ground();
        let src = c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(input, primary, Resistance::from_ohms(r1)).unwrap();
        let first = c.add_inductor(primary, gnd, Inductance::from_henries(l1)).unwrap();
        let second = c.add_inductor(secondary, gnd, Inductance::from_henries(l2)).unwrap();
        c.add_resistor(secondary, gnd, Resistance::from_ohms(r2)).unwrap();
        c.add_mutual_inductor(first, second, k).unwrap();

        for &(re, im) in &[(0.0, 2e9), (0.0, 2e10), (5e8, -8e9), (1e9, 1e9)] {
            let s = Complex::new(re, im);
            let sm = s * m;
            let z2 = Complex::from_real(r2) + s * l2;
            let i1 = (Complex::from_real(r1) + s * l1 - sm * sm * z2.recip()).recip();
            let want = sm * i1 * r2 * z2.recip();
            for backend in [SolverBackend::Dense, SolverBackend::Banded] {
                let got = solve_at_with(&c, src, s, backend).unwrap().node_voltage(secondary);
                assert!(
                    (got - want).abs() < 1e-6 * want.abs().max(1.0),
                    "s = {s} ({backend:?}): got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn solve_at_many_matches_per_source_solves() {
        // Two independently driven RC arms sharing a ground: two ports.
        let mut c = Circuit::new();
        let gnd = c.ground();
        let in1 = c.add_node();
        let out1 = c.add_node();
        let in2 = c.add_node();
        let out2 = c.add_node();
        let s1 = c.add_voltage_source(in1, gnd, SourceWaveform::unit_step()).unwrap();
        let s2 = c.add_voltage_source(in2, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(in1, out1, Resistance::from_ohms(500.0)).unwrap();
        c.add_capacitor(out1, gnd, Capacitance::from_picofarads(2.0)).unwrap();
        c.add_resistor(in2, out2, Resistance::from_ohms(800.0)).unwrap();
        c.add_capacitor(out2, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        c.add_resistor(out1, out2, Resistance::from_ohms(2000.0)).unwrap();

        let s = Complex::new(0.0, 3e8);
        for backend in [SolverBackend::Dense, SolverBackend::Sparse] {
            let many = solve_at_many(&c, &[s1, s2], s, backend).unwrap();
            assert_eq!(many.len(), 2);
            for (source, sol) in [s1, s2].iter().zip(many.iter()) {
                let one = solve_at_with(&c, *source, s, backend).unwrap();
                for node in [out1, out2] {
                    let d = sol.node_voltage(node) - one.node_voltage(node);
                    assert!(d.abs() < 1e-12, "{backend:?}: multi vs single differ by {d}");
                }
            }
        }
    }

    #[test]
    fn unknown_source_and_node_are_errors() {
        let (c, _, out) = rc_lowpass();
        assert!(matches!(
            transfer_function(&c, SourceId(3), out, Complex::ZERO),
            Err(CircuitError::UnknownSource { .. })
        ));
        let (c2, src, _) = rc_lowpass();
        assert!(matches!(
            transfer_function(&c2, src, NodeId(50), Complex::ZERO),
            Err(CircuitError::UnknownNode { .. })
        ));
    }
}
