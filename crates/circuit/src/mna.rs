//! Assembly of the modified nodal analysis (MNA) equations.
//!
//! A linear circuit is described by the differential-algebraic system
//!
//! ```text
//! G·x(t) + C·dx/dt = b(t)
//! ```
//!
//! where `x` stacks the non-ground node voltages followed by the branch
//! currents of voltage sources and inductors. [`MnaSystem::build`] collects
//! the element stamps of the constant `G` and `C` matrices in
//! structure-preserving triplet form — no dense matrix is materialised during
//! assembly — and immediately computes a reverse Cuthill–McKee ordering of
//! the unknowns together with the bandwidth it achieves. Analyses then
//! assemble whatever combination of `G` and `C` they need directly into band
//! storage ([`MnaSystem::assemble_real`] / [`MnaSystem::assemble_complex`])
//! or compressed-sparse-column form ([`MnaSystem::assemble_csc_real`] /
//! [`MnaSystem::assemble_csc_complex`]) and hand it to a
//! [`SolverBackend`](rlckit_numeric::solver::SolverBackend), which picks the
//! banded `O(n·b²)` kernel for ladder-shaped circuits, the fill-reducing
//! sparse kernel for wide-bandwidth (tree-shaped) systems, and the dense
//! kernel for small or genuinely full ones.
//!
//! A small conductance (`GMIN`) is added from every node to ground so that
//! circuits with capacitor-only nodes still have a non-singular `G`, matching
//! common SPICE practice.

use rlckit_numeric::banded::BandedMatrix;
use rlckit_numeric::complex::Complex;
use rlckit_numeric::matrix::{Matrix, Scalar};
use rlckit_numeric::ordering::{gather, permuted_bandwidth, reverse_cuthill_mckee, scatter};
use rlckit_numeric::sparse::{CscMatrix, SparseSymbolic};
use rlckit_units::Time;

use crate::error::CircuitError;
use crate::netlist::{Circuit, Element, NodeId, SourceId};
use crate::source::SourceWaveform;

/// Minimum conductance to ground added at every node (siemens).
pub const GMIN: f64 = 1e-12;

/// One additive contribution to a system matrix: `matrix[row][col] += value`.
type Stamp = (usize, usize, f64);

/// Right-hand-side contribution of one independent source.
#[derive(Debug, Clone)]
enum SourceStamp {
    /// Voltage source occupying the given branch row.
    Voltage { row: usize, waveform: SourceWaveform },
    /// Current source injecting into `plus_row` and drawing from `minus_row`
    /// (either may be `None` when that terminal is ground).
    Current { plus_row: Option<usize>, minus_row: Option<usize>, waveform: SourceWaveform },
}

/// The assembled MNA system of a circuit.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    node_unknowns: usize,
    dim: usize,
    g_stamps: Vec<Stamp>,
    c_stamps: Vec<Stamp>,
    sources: Vec<SourceStamp>,
    source_ids: Vec<usize>,
    /// Bandwidth-reducing relabelling of the unknowns: `perm[logical] = packed`.
    perm: Vec<usize>,
    /// Lower bandwidth of the union pattern of `G` and `C` under `perm`.
    kl: usize,
    /// Upper bandwidth of the union pattern of `G` and `C` under `perm`.
    ku: usize,
    /// Fill-reducing symbolic phase of the union pattern, computed on first
    /// sparse use and shared by every sparse factorisation of this system
    /// (DC, transient, AC frequencies). Behind an [`std::sync::Arc`] so the
    /// process-global [`crate::pattern_cache`] can share one analysis across
    /// *different* systems with the same pattern.
    sparse_symbolic: std::sync::OnceLock<std::sync::Arc<SparseSymbolic>>,
    /// Stamp→CSC scatter map of the union pattern, computed on first CSC
    /// assembly; later assemblies only write values.
    csc_assembly: std::sync::OnceLock<CscAssembly>,
}

/// The triplet→CSC position map behind [`MnaSystem::assemble_csc_real`] and
/// [`MnaSystem::assemble_csc_complex`]: the union sparsity pattern of `G` and
/// `C` (every stamp position kept, even where values cancel, so the pattern
/// is identical for every `(gs, cs)`) plus, per stamp, the index of its value
/// slot. Building it costs one sort of the pattern; every assembly after that
/// is a single `O(stamps)` scatter pass.
#[derive(Debug, Clone)]
struct CscAssembly {
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    /// `g_pos[t]` = value slot of the `t`-th `G` stamp.
    g_pos: Vec<usize>,
    /// `c_pos[t]` = value slot of the `t`-th `C` stamp.
    c_pos: Vec<usize>,
}

impl MnaSystem {
    /// Assembles the MNA stamps for a circuit and computes its
    /// bandwidth-reducing ordering.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyCircuit`] if the circuit has no elements.
    pub fn build(circuit: &Circuit) -> Result<Self, CircuitError> {
        let _span = rlckit_telemetry::span("mna.build");
        if circuit.is_empty() {
            return Err(CircuitError::EmptyCircuit);
        }
        let node_unknowns = circuit.node_count() - 1;

        // Count branch unknowns: one per voltage source and per inductor.
        let branch_count = circuit
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. } | Element::Inductor { .. }))
            .count();
        let dim = node_unknowns + branch_count;
        let dim = dim.max(1);

        let mut g_stamps: Vec<Stamp> = Vec::new();
        let mut c_stamps: Vec<Stamp> = Vec::new();
        let mut sources = Vec::new();
        let mut source_ids = Vec::new();

        // GMIN from every node to ground keeps G invertible.
        for i in 0..node_unknowns {
            g_stamps.push((i, i, GMIN));
        }

        let row_of = |node: NodeId| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.index() - 1)
            }
        };

        let mut next_branch = node_unknowns;
        // Branch row and inductance of every inductor in insertion order,
        // for resolving mutual-coupling references. `Circuit` guarantees a
        // mutual element is inserted after both of its inductors.
        let mut inductors: Vec<(usize, f64)> = Vec::with_capacity(circuit.inductor_count());
        for element in circuit.elements() {
            match element {
                Element::Resistor { plus, minus, value } => {
                    let conductance = 1.0 / value.ohms();
                    stamp_conductance(&mut g_stamps, row_of(*plus), row_of(*minus), conductance);
                }
                Element::Capacitor { plus, minus, value } => {
                    stamp_conductance(&mut c_stamps, row_of(*plus), row_of(*minus), value.farads());
                }
                Element::Inductor { plus, minus, value } => {
                    let b = next_branch;
                    next_branch += 1;
                    stamp_branch_incidence(&mut g_stamps, row_of(*plus), row_of(*minus), b);
                    c_stamps.push((b, b, -value.henries()));
                    inductors.push((b, value.henries()));
                }
                Element::MutualInductor { first, second, coupling } => {
                    // The branch equation of an inductor coupled to another
                    // is v⁺ − v⁻ = L·dI/dt + M·dI_other/dt: the mutual term
                    // is an off-diagonal −M in the storage matrix, mirroring
                    // the −L convention of the diagonal.
                    let (b1, l1) = inductors[first.index()];
                    let (b2, l2) = inductors[second.index()];
                    let mutual = coupling * (l1 * l2).sqrt();
                    c_stamps.push((b1, b2, -mutual));
                    c_stamps.push((b2, b1, -mutual));
                }
                Element::VoltageSource { plus, minus, source, waveform } => {
                    let b = next_branch;
                    next_branch += 1;
                    stamp_branch_incidence(&mut g_stamps, row_of(*plus), row_of(*minus), b);
                    sources.push(SourceStamp::Voltage { row: b, waveform: waveform.clone() });
                    source_ids.push(source.index());
                }
                Element::CurrentSource { plus, minus, source, waveform } => {
                    sources.push(SourceStamp::Current {
                        plus_row: row_of(*plus),
                        minus_row: row_of(*minus),
                        waveform: waveform.clone(),
                    });
                    source_ids.push(source.index());
                }
            }
        }

        // Reverse Cuthill–McKee on the union pattern of G and C: for ladder
        // circuits this interleaves the inductor-branch rows with the node
        // rows they couple to, collapsing the bandwidth to a small constant.
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); dim];
        for &(r, c, _) in g_stamps.iter().chain(c_stamps.iter()) {
            if r != c {
                adjacency[r].push(c);
                adjacency[c].push(r);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        let perm = reverse_cuthill_mckee(dim, &adjacency);
        let (kl, ku) = permuted_bandwidth(
            g_stamps.iter().chain(c_stamps.iter()).map(|&(r, c, _)| (r, c)),
            &perm,
        );
        rlckit_telemetry::gauge_set("mna.dim", dim as f64);
        Ok(Self {
            node_unknowns,
            dim,
            g_stamps,
            c_stamps,
            sources,
            source_ids,
            perm,
            kl,
            ku,
            sparse_symbolic: std::sync::OnceLock::new(),
            csc_assembly: std::sync::OnceLock::new(),
        })
    }

    /// The fill-reducing symbolic phase of the sparse backend, computed
    /// lazily from the union pattern of `G` and `C` on first use and then
    /// shared by every sparse numeric factorisation of this system — the DC,
    /// transient and AC analyses all factor `gs·G + cs·C` matrices with this
    /// one pattern.
    pub fn sparse_symbolic(&self) -> &SparseSymbolic {
        self.sparse_symbolic.get_or_init(|| {
            let analyze = || {
                SparseSymbolic::analyze(
                    self.dim,
                    self.g_stamps.iter().chain(self.c_stamps.iter()).map(|&(r, c, _)| (r, c)),
                )
            };
            if crate::pattern_cache::enabled() {
                let map = self.csc_assembly();
                crate::pattern_cache::shared_symbolic(self.dim, &map.col_ptr, &map.row_idx, analyze)
            } else {
                std::sync::Arc::new(analyze())
            }
        })
    }

    /// A stable 64-bit content hash of this system's union sparsity pattern
    /// (the shared CSC structure behind every `gs·G + cs·C` assembly) —
    /// the key under which [`crate::pattern_cache`] shares symbolic analyses
    /// and factor templates across systems, and a convenient request-level
    /// cache key for services batching many same-topology evaluations.
    pub fn pattern_key(&self) -> u64 {
        let map = self.csc_assembly();
        rlckit_numeric::sparse::csc_pattern_key(self.dim, &map.col_ptr, &map.row_idx)
    }

    /// Number of stamp entries in the union of `G` and `C` (an upper bound on
    /// the non-zeros of any assembled `gs·G + cs·C`).
    pub fn stamp_count(&self) -> usize {
        self.g_stamps.len() + self.c_stamps.len()
    }

    /// The stamp→CSC scatter map, built on first use.
    fn csc_assembly(&self) -> &CscAssembly {
        self.csc_assembly.get_or_init(|| {
            let n = self.dim;
            let mut per_col: Vec<Vec<usize>> = vec![Vec::new(); n];
            for &(r, c, _) in self.g_stamps.iter().chain(self.c_stamps.iter()) {
                per_col[c].push(r);
            }
            let mut col_ptr = Vec::with_capacity(n + 1);
            let mut row_idx = Vec::new();
            col_ptr.push(0);
            for col in &mut per_col {
                col.sort_unstable();
                col.dedup();
                row_idx.extend_from_slice(col);
                col_ptr.push(row_idx.len());
            }
            let pos_of = |r: usize, c: usize| -> usize {
                let lo = col_ptr[c];
                let rows = &row_idx[lo..col_ptr[c + 1]];
                lo + rows.binary_search(&r).expect("stamp position is in the union pattern")
            };
            let g_pos = self.g_stamps.iter().map(|&(r, c, _)| pos_of(r, c)).collect();
            let c_pos = self.c_stamps.iter().map(|&(r, c, _)| pos_of(r, c)).collect();
            CscAssembly { col_ptr, row_idx, g_pos, c_pos }
        })
    }

    /// Assembles `gs·G + cs·C` in compressed-sparse-column form, in logical
    /// (node/branch) order — the sparse backend applies its own fill-reducing
    /// ordering, so no relabelling happens here.
    ///
    /// Every assembly of one system shares the union pattern of `G` and `C`
    /// (stamp positions whose values cancel stay stored as explicit zeros),
    /// built once and then only re-valued — which is exactly the pattern
    /// stability [`rlckit_numeric::sparse::SparseLuFactor::refactor`] needs
    /// to reuse a factorisation across `(gs, cs)` pairs.
    pub fn assemble_csc_real(&self, gs: f64, cs: f64) -> CscMatrix<f64> {
        let _span = rlckit_telemetry::span("mna.assemble");
        let map = self.csc_assembly();
        let mut values = vec![0.0; map.row_idx.len()];
        if gs != 0.0 {
            for (&(_, _, v), &p) in self.g_stamps.iter().zip(&map.g_pos) {
                values[p] += gs * v;
            }
        }
        if cs != 0.0 {
            for (&(_, _, v), &p) in self.c_stamps.iter().zip(&map.c_pos) {
                values[p] += cs * v;
            }
        }
        CscMatrix::from_parts(self.dim, map.col_ptr.clone(), map.row_idx.clone(), values)
    }

    /// Assembles the complex system `G + s·C` in compressed-sparse-column
    /// form, in logical order, on the same shared union pattern as
    /// [`MnaSystem::assemble_csc_real`].
    pub fn assemble_csc_complex(&self, s: Complex) -> CscMatrix<Complex> {
        let _span = rlckit_telemetry::span("mna.assemble");
        let map = self.csc_assembly();
        let mut values = vec![Complex::ZERO; map.row_idx.len()];
        for (&(_, _, v), &p) in self.g_stamps.iter().zip(&map.g_pos) {
            values[p] += Complex::from_real(v);
        }
        for (&(_, _, v), &p) in self.c_stamps.iter().zip(&map.c_pos) {
            values[p] += s * v;
        }
        CscMatrix::from_parts(self.dim, map.col_ptr.clone(), map.row_idx.clone(), values)
    }

    /// Computes `y = (gs·G + cs·C)·x` in logical order directly from the
    /// triplet stamps (`O(nnz)`, no matrix materialised) — the history
    /// operator application of the transient hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply_real(&self, gs: f64, cs: f64, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "vector length must equal system dimension");
        let mut y = vec![0.0; self.dim];
        if gs != 0.0 {
            apply_stamps_scaled(&self.g_stamps, gs, x, &mut y);
        }
        if cs != 0.0 {
            apply_stamps_scaled(&self.c_stamps, cs, x, &mut y);
        }
        y
    }

    /// Dimension of the unknown vector (node voltages + branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of node-voltage unknowns (nodes excluding ground).
    pub fn node_unknowns(&self) -> usize {
        self.node_unknowns
    }

    /// The bandwidth-reducing relabelling of the unknowns:
    /// `permutation()[logical] = packed` row in the assembled band matrices.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Lower and upper bandwidth `(kl, ku)` of the union pattern of `G` and
    /// `C` under [`MnaSystem::permutation`].
    pub fn bandwidth(&self) -> (usize, usize) {
        (self.kl, self.ku)
    }

    /// Assembles `gs·G + cs·C` into band storage, rows and columns relabelled
    /// by [`MnaSystem::permutation`].
    ///
    /// This is the matrix every real-valued analysis factorises: DC uses
    /// `(1, 0)`, backward Euler `(1, 1/dt)`, trapezoidal `(1/2, 1/dt)` — and
    /// the trapezoidal history operator `C/dt − G/2` is `(-1/2, 1/dt)`.
    pub fn assemble_real(&self, gs: f64, cs: f64) -> BandedMatrix<f64> {
        let mut a = BandedMatrix::zeros(self.dim, self.kl, self.ku);
        if gs != 0.0 {
            for &(r, c, v) in &self.g_stamps {
                a.add_at(self.perm[r], self.perm[c], gs * v);
            }
        }
        if cs != 0.0 {
            for &(r, c, v) in &self.c_stamps {
                a.add_at(self.perm[r], self.perm[c], cs * v);
            }
        }
        a
    }

    /// Assembles the complex system `G + s·C` into band storage, rows and
    /// columns relabelled by [`MnaSystem::permutation`].
    pub fn assemble_complex(&self, s: Complex) -> BandedMatrix<Complex> {
        let mut a = BandedMatrix::zeros(self.dim, self.kl, self.ku);
        for &(r, c, v) in &self.g_stamps {
            a.add_at(self.perm[r], self.perm[c], Complex::from_real(v));
        }
        for &(r, c, v) in &self.c_stamps {
            a.add_at(self.perm[r], self.perm[c], s * v);
        }
        a
    }

    /// Scatters a vector from logical (node/branch) order into the packed
    /// order of the assembled band matrices.
    pub fn permute_vec<T: Scalar>(&self, logical: &[T]) -> Vec<T> {
        scatter(&self.perm, logical)
    }

    /// Gathers a vector from packed order back into logical order.
    pub fn unpermute_vec<T: Scalar>(&self, packed: &[T]) -> Vec<T> {
        gather(&self.perm, packed)
    }

    /// The conductance/incidence matrix `G`, materialised densely in logical
    /// order (intended for inspection and small systems; analyses use the
    /// band-form assemblers).
    pub fn dense_g(&self) -> Matrix<f64> {
        dense_from_stamps(self.dim, &self.g_stamps)
    }

    /// The storage matrix `C` (capacitances and inductances), materialised
    /// densely in logical order.
    pub fn dense_c(&self) -> Matrix<f64> {
        dense_from_stamps(self.dim, &self.c_stamps)
    }

    /// Row of the unknown vector holding the voltage of `node`, or `None` for
    /// ground.
    pub fn row_of_node(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Evaluates the right-hand side `b(t)` into `out`, in logical order.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn rhs_at(&self, t: Time, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "rhs buffer length must equal system dimension");
        out.fill(0.0);
        for source in &self.sources {
            match source {
                SourceStamp::Voltage { row, waveform } => {
                    out[*row] += waveform.value_at(t).volts();
                }
                SourceStamp::Current { plus_row, minus_row, waveform } => {
                    let value = waveform.value_at(t).volts();
                    if let Some(p) = plus_row {
                        out[*p] += value;
                    }
                    if let Some(m) = minus_row {
                        out[*m] -= value;
                    }
                }
            }
        }
    }

    /// Computes `y = G·x` in logical order directly from the triplet stamps
    /// (`O(nnz)`, no matrix materialised) — the sparse mat-vec the Krylov
    /// model-order reducer leans on.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply_g(&self, x: &[f64]) -> Vec<f64> {
        apply_stamps(self.dim, &self.g_stamps, x)
    }

    /// Computes `y = C·x` in logical order directly from the triplet stamps.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply_c(&self, x: &[f64]) -> Vec<f64> {
        apply_stamps(self.dim, &self.c_stamps, x)
    }

    /// Real-valued unit excitation of one source (every other source off) —
    /// the `B` column of the descriptor state space.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSource`] if the source does not exist.
    pub fn unit_excitation_real(&self, excited: SourceId) -> Result<Vec<f64>, CircuitError> {
        Ok(self.unit_excitation(excited)?.iter().map(|z| z.re).collect())
    }

    /// Builds the complex system matrix `A(s) = G + s·C` densely, in logical
    /// order (intended for inspection; [`MnaSystem::assemble_complex`] is the
    /// band-form equivalent the AC analysis uses).
    pub fn complex_system(&self, s: Complex) -> Matrix<Complex> {
        let mut a = Matrix::<Complex>::zeros(self.dim, self.dim);
        for &(r, c, v) in &self.g_stamps {
            a.add_at(r, c, Complex::from_real(v));
        }
        for &(r, c, v) in &self.c_stamps {
            a.add_at(r, c, s * v);
        }
        a
    }

    /// Builds the right-hand side for an AC/complex-frequency analysis in which
    /// the source `excited` has unit amplitude and every other source is off.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSource`] if the source does not exist.
    pub fn unit_excitation(&self, excited: SourceId) -> Result<Vec<Complex>, CircuitError> {
        let position = self
            .source_ids
            .iter()
            .position(|&id| id == excited.index())
            .ok_or(CircuitError::UnknownSource { index: excited.index() })?;
        let mut b = vec![Complex::ZERO; self.dim];
        match &self.sources[position] {
            SourceStamp::Voltage { row, .. } => {
                b[*row] = Complex::ONE;
            }
            SourceStamp::Current { plus_row, minus_row, .. } => {
                if let Some(p) = plus_row {
                    b[*p] = Complex::ONE;
                }
                if let Some(m) = minus_row {
                    b[*m] -= Complex::ONE;
                }
            }
        }
        Ok(b)
    }
}

fn apply_stamps(dim: usize, stamps: &[Stamp], x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), dim, "vector length must equal system dimension");
    let mut y = vec![0.0; dim];
    apply_stamps_scaled(stamps, 1.0, x, &mut y);
    y
}

/// Accumulates `y += scale · stamps · x` — the one scatter-accumulate kernel
/// behind every stamp-level operator application.
fn apply_stamps_scaled(stamps: &[Stamp], scale: f64, x: &[f64], y: &mut [f64]) {
    for &(r, c, v) in stamps {
        y[r] += scale * v * x[c];
    }
}

fn dense_from_stamps(dim: usize, stamps: &[Stamp]) -> Matrix<f64> {
    let mut m = Matrix::zeros(dim, dim);
    for &(r, c, v) in stamps {
        m.add_at(r, c, v);
    }
    m
}

/// Stamps a two-terminal admittance-like value.
fn stamp_conductance(
    stamps: &mut Vec<Stamp>,
    plus: Option<usize>,
    minus: Option<usize>,
    value: f64,
) {
    if let Some(p) = plus {
        stamps.push((p, p, value));
    }
    if let Some(q) = minus {
        stamps.push((q, q, value));
    }
    if let (Some(p), Some(q)) = (plus, minus) {
        stamps.push((p, q, -value));
        stamps.push((q, p, -value));
    }
}

/// Stamps the incidence pattern of a branch-current unknown (voltage source or
/// inductor) into `G`.
fn stamp_branch_incidence(
    stamps: &mut Vec<Stamp>,
    plus: Option<usize>,
    minus: Option<usize>,
    branch: usize,
) {
    if let Some(p) = plus {
        stamps.push((p, branch, 1.0));
        stamps.push((branch, p, 1.0));
    }
    if let Some(q) = minus {
        stamps.push((q, branch, -1.0));
        stamps.push((branch, q, -1.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{Capacitance, Inductance, Resistance, Voltage};

    fn simple_rc() -> (Circuit, NodeId, NodeId) {
        // V(step) - R - node a - C - ground
        let mut c = Circuit::new();
        let input = c.add_node();
        let a = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(input, a, Resistance::from_ohms(1000.0)).unwrap();
        c.add_capacitor(a, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        (c, input, a)
    }

    #[test]
    fn dimensions_count_branches() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        // 2 node unknowns + 1 voltage-source branch.
        assert_eq!(mna.node_unknowns(), 2);
        assert_eq!(mna.dim(), 3);
    }

    #[test]
    fn empty_circuit_is_rejected() {
        let c = Circuit::new();
        assert!(matches!(MnaSystem::build(&c), Err(CircuitError::EmptyCircuit)));
    }

    #[test]
    fn resistor_stamp_is_symmetric() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_resistor(a, b, Resistance::from_ohms(500.0)).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        let g = mna.dense_g();
        let conductance = 1.0 / 500.0;
        assert!((g[(0, 0)] - conductance - GMIN).abs() < 1e-15);
        assert!((g[(1, 1)] - conductance - GMIN).abs() < 1e-15);
        assert!((g[(0, 1)] + conductance).abs() < 1e-15);
        assert!((g[(1, 0)] + conductance).abs() < 1e-15);
    }

    #[test]
    fn capacitor_stamps_into_storage_matrix() {
        let (c, _, a) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let row = mna.row_of_node(a).unwrap();
        assert!((mna.dense_c()[(row, row)] - 1e-12).abs() < 1e-24);
        // G at that node only has the resistor + GMIN.
        assert!((mna.dense_g()[(row, row)] - 1e-3 - GMIN).abs() < 1e-12);
    }

    #[test]
    fn inductor_gets_branch_row() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_inductor(a, b, Inductance::from_nanohenries(5.0)).unwrap();
        c.add_resistor(b, gnd, Resistance::from_ohms(50.0)).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        // 2 nodes + 2 branches (V source + inductor).
        assert_eq!(mna.dim(), 4);
        // Inductor branch is the last row; its C entry is -L.
        assert!((mna.dense_c()[(3, 3)] + 5e-9).abs() < 1e-20);
        // Incidence of the inductor branch into its nodes.
        let g = mna.dense_g();
        assert_eq!(g[(0, 3)], 1.0);
        assert_eq!(g[(1, 3)], -1.0);
        assert_eq!(g[(3, 0)], 1.0);
        assert_eq!(g[(3, 1)], -1.0);
    }

    #[test]
    fn mutual_inductor_stamps_minus_m_between_branch_rows() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        let l1 = c.add_inductor(a, gnd, Inductance::from_nanohenries(2.0)).unwrap();
        let l2 = c.add_inductor(b, gnd, Inductance::from_nanohenries(8.0)).unwrap();
        c.add_resistor(b, gnd, Resistance::from_ohms(50.0)).unwrap();
        c.add_mutual_inductor(l1, l2, 0.5).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        // 2 nodes + 3 branches (source + 2 inductors); the K element adds none.
        assert_eq!(mna.dim(), 5);
        let cc = mna.dense_c();
        // M = k·sqrt(L1·L2) = 0.5·sqrt(2n·8n) = 2 nH, stamped as −M
        // symmetrically between the two inductor branch rows (3 and 4).
        let m = 0.5 * (2e-9f64 * 8e-9).sqrt();
        assert!((cc[(3, 4)] + m).abs() < 1e-22);
        assert!((cc[(4, 3)] + m).abs() < 1e-22);
        // The self terms are untouched.
        assert!((cc[(3, 3)] + 2e-9).abs() < 1e-22);
        assert!((cc[(4, 4)] + 8e-9).abs() < 1e-22);
        // The K element leaves G alone.
        let g = mna.dense_g();
        assert_eq!(g[(3, 4)], 0.0);
        assert_eq!(g[(4, 3)], 0.0);
    }

    #[test]
    fn negative_coupling_flips_the_mutual_sign() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        let l1 = c.add_inductor(a, gnd, Inductance::from_nanohenries(4.0)).unwrap();
        let l2 = c.add_inductor(b, gnd, Inductance::from_nanohenries(4.0)).unwrap();
        c.add_mutual_inductor(l1, l2, -0.25).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        let cc = mna.dense_c();
        assert!((cc[(3, 4)] - 0.25 * 4e-9).abs() < 1e-22);
    }

    #[test]
    fn rhs_tracks_source_waveform() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let mut b = vec![0.0; mna.dim()];
        mna.rhs_at(Time::ZERO, &mut b);
        assert_eq!(b, vec![0.0, 0.0, 0.0]);
        mna.rhs_at(Time::from_picoseconds(1.0), &mut b);
        assert_eq!(b[2], 1.0);
    }

    #[test]
    fn current_source_rhs() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        c.add_resistor(a, gnd, Resistance::from_ohms(100.0)).unwrap();
        let src = c
            .add_current_source(a, gnd, SourceWaveform::Dc { level: Voltage::from_volts(2e-3) })
            .unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        let mut b = vec![0.0; mna.dim()];
        mna.rhs_at(Time::ZERO, &mut b);
        assert!((b[0] - 2e-3).abs() < 1e-15);
        let ac = mna.unit_excitation(src).unwrap();
        assert_eq!(ac[0], Complex::ONE);
    }

    #[test]
    fn unit_excitation_selects_the_right_source() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let b = mna.unit_excitation(SourceId(0)).unwrap();
        assert_eq!(b[2], Complex::ONE);
        assert!(matches!(
            mna.unit_excitation(SourceId(5)),
            Err(CircuitError::UnknownSource { index: 5 })
        ));
    }

    #[test]
    fn stamp_mat_vec_matches_dense_products() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_inductor(a, b, Inductance::from_nanohenries(3.0)).unwrap();
        c.add_capacitor(b, gnd, Capacitance::from_picofarads(2.0)).unwrap();
        c.add_resistor(b, gnd, Resistance::from_ohms(75.0)).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        let x: Vec<f64> = (0..mna.dim()).map(|i| (i as f64 + 1.0) * 0.5).collect();
        let via_stamps = mna.apply_g(&x);
        let via_dense = mna.dense_g().mul_vec(&x);
        for (s, d) in via_stamps.iter().zip(via_dense.iter()) {
            assert!((s - d).abs() < 1e-12 * d.abs().max(1.0));
        }
        let via_stamps = mna.apply_c(&x);
        let via_dense = mna.dense_c().mul_vec(&x);
        for (s, d) in via_stamps.iter().zip(via_dense.iter()) {
            assert!((s - d).abs() < 1e-24 + 1e-12 * d.abs());
        }
    }

    #[test]
    fn real_unit_excitation_matches_the_complex_one() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let real = mna.unit_excitation_real(SourceId(0)).unwrap();
        assert_eq!(real, vec![0.0, 0.0, 1.0]);
        assert!(mna.unit_excitation_real(SourceId(9)).is_err());
    }

    #[test]
    fn complex_system_combines_g_and_c() {
        let (c, _, a) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let s = Complex::new(0.0, 1e9);
        let m = mna.complex_system(s);
        let row = mna.row_of_node(a).unwrap();
        let expected = Complex::new(1e-3 + GMIN, 1e9 * 1e-12);
        assert!((m[(row, row)] - expected).abs() < 1e-12);
    }

    #[test]
    fn ground_node_has_no_row() {
        let (c, input, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        assert_eq!(mna.row_of_node(c.ground()), None);
        assert_eq!(mna.row_of_node(input), Some(0));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let mut seen = vec![false; mna.dim()];
        for &p in mna.permutation() {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn permute_and_unpermute_round_trip() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let logical = vec![1.0, 2.0, 3.0];
        let packed = mna.permute_vec(&logical);
        assert_eq!(mna.unpermute_vec(&packed), logical);
    }

    #[test]
    fn assemble_real_matches_dense_combination() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_inductor(a, b, Inductance::from_nanohenries(5.0)).unwrap();
        c.add_capacitor(b, gnd, Capacitance::from_picofarads(2.0)).unwrap();
        c.add_resistor(b, gnd, Resistance::from_ohms(50.0)).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        let (gs, cs) = (0.5, 1e12);
        let banded = mna.assemble_real(gs, cs);
        let g = mna.dense_g();
        let cc = mna.dense_c();
        let perm = mna.permutation();
        for i in 0..mna.dim() {
            for j in 0..mna.dim() {
                let want = gs * g[(i, j)] + cs * cc[(i, j)];
                let got = banded.get(perm[i], perm[j]);
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "({i},{j}): banded {got} vs dense {want}"
                );
            }
        }
    }

    #[test]
    fn assemble_csc_matches_dense_combination() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_inductor(a, b, Inductance::from_nanohenries(5.0)).unwrap();
        c.add_capacitor(b, gnd, Capacitance::from_picofarads(2.0)).unwrap();
        c.add_resistor(b, gnd, Resistance::from_ohms(50.0)).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        let (gs, cs) = (0.5, 1e12);
        let csc = mna.assemble_csc_real(gs, cs);
        let g = mna.dense_g();
        let cc = mna.dense_c();
        for i in 0..mna.dim() {
            for j in 0..mna.dim() {
                let want = gs * g[(i, j)] + cs * cc[(i, j)];
                let got = csc.get(i, j);
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "({i},{j}): csc {got} vs dense {want}"
                );
            }
        }
        // The complex assembly matches the dense complex system the same way.
        let s = Complex::new(1e8, -2e9);
        let csc = mna.assemble_csc_complex(s);
        let dense = mna.complex_system(s);
        for i in 0..mna.dim() {
            for j in 0..mna.dim() {
                assert!((csc.get(i, j) - dense[(i, j)]).abs() < 1e-12);
            }
        }
        assert!(csc.nnz() <= mna.stamp_count());
    }

    #[test]
    fn apply_real_matches_the_dense_operator() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let x: Vec<f64> = (0..mna.dim()).map(|i| 0.3 * i as f64 - 0.5).collect();
        let (gs, cs) = (-0.5, 1e12);
        let got = mna.apply_real(gs, cs, &x);
        let g = mna.dense_g().mul_vec(&x);
        let cc = mna.dense_c().mul_vec(&x);
        for i in 0..mna.dim() {
            let want = gs * g[i] + cs * cc[i];
            assert!((got[i] - want).abs() < 1e-9 * want.abs().max(1.0));
        }
    }

    #[test]
    fn sparse_symbolic_is_computed_once_and_covers_the_union_pattern() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let first = mna.sparse_symbolic() as *const _;
        let second = mna.sparse_symbolic() as *const _;
        assert_eq!(first, second, "the symbolic phase must be cached");
        assert_eq!(mna.sparse_symbolic().dim(), mna.dim());
    }

    #[test]
    fn assemble_complex_matches_complex_system() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let s = Complex::new(1e8, -2e9);
        let banded = mna.assemble_complex(s);
        let dense = mna.complex_system(s);
        let perm = mna.permutation();
        for i in 0..mna.dim() {
            for j in 0..mna.dim() {
                let got = banded.get(perm[i], perm[j]);
                assert!((got - dense[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ladder_bandwidth_is_a_small_constant() {
        // A 100-segment RLC ladder in natural MNA order couples the inductor
        // branches (appended at the end) to nodes near the front: the naive
        // bandwidth is O(dim). RCM must bring it down to a constant.
        let mut c = Circuit::new();
        let gnd = c.ground();
        let input = c.add_node();
        c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        let mut prev = input;
        for _ in 0..100 {
            let mid = c.add_node();
            let next = c.add_node();
            c.add_resistor(prev, mid, Resistance::from_ohms(5.0)).unwrap();
            c.add_inductor(mid, next, Inductance::from_picohenries(100.0)).unwrap();
            c.add_capacitor(next, gnd, Capacitance::from_femtofarads(10.0)).unwrap();
            prev = next;
        }
        let mna = MnaSystem::build(&c).unwrap();
        assert!(mna.dim() > 300);
        let (kl, ku) = mna.bandwidth();
        assert!(kl <= 4 && ku <= 4, "ladder bandwidth should be tiny, got ({kl}, {ku})");
    }
}
