//! Assembly of the modified nodal analysis (MNA) equations.
//!
//! A linear circuit is described by the differential-algebraic system
//!
//! ```text
//! G·x(t) + C·dx/dt = b(t)
//! ```
//!
//! where `x` stacks the non-ground node voltages followed by the branch
//! currents of voltage sources and inductors. [`MnaSystem::build`] assembles
//! the constant `G` and `C` matrices once; analyses then evaluate the
//! time-varying right-hand side `b(t)` as needed.
//!
//! A small conductance (`GMIN`) is added from every node to ground so that
//! circuits with capacitor-only nodes still have a non-singular `G`, matching
//! common SPICE practice.

use rlckit_numeric::complex::Complex;
use rlckit_numeric::matrix::Matrix;
use rlckit_units::Time;

use crate::error::CircuitError;
use crate::netlist::{Circuit, Element, NodeId, SourceId};
use crate::source::SourceWaveform;

/// Minimum conductance to ground added at every node (siemens).
pub const GMIN: f64 = 1e-12;

/// Right-hand-side contribution of one independent source.
#[derive(Debug, Clone)]
enum SourceStamp {
    /// Voltage source occupying the given branch row.
    Voltage {
        row: usize,
        waveform: SourceWaveform,
    },
    /// Current source injecting into `plus_row` and drawing from `minus_row`
    /// (either may be `None` when that terminal is ground).
    Current {
        plus_row: Option<usize>,
        minus_row: Option<usize>,
        waveform: SourceWaveform,
    },
}

/// The assembled MNA system of a circuit.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    node_unknowns: usize,
    dim: usize,
    g: Matrix<f64>,
    c: Matrix<f64>,
    sources: Vec<SourceStamp>,
    source_ids: Vec<usize>,
}

impl MnaSystem {
    /// Assembles the MNA matrices for a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::EmptyCircuit`] if the circuit has no elements.
    pub fn build(circuit: &Circuit) -> Result<Self, CircuitError> {
        if circuit.is_empty() {
            return Err(CircuitError::EmptyCircuit);
        }
        let node_unknowns = circuit.node_count() - 1;

        // Count branch unknowns: one per voltage source and per inductor.
        let branch_count = circuit
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. } | Element::Inductor { .. }))
            .count();
        let dim = node_unknowns + branch_count;
        let dim = dim.max(1);

        let mut g = Matrix::zeros(dim, dim);
        let mut c = Matrix::zeros(dim, dim);
        let mut sources = Vec::new();
        let mut source_ids = Vec::new();

        // GMIN from every node to ground keeps G invertible.
        for i in 0..node_unknowns {
            g.add_at(i, i, GMIN);
        }

        let row_of = |node: NodeId| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.index() - 1)
            }
        };

        let mut next_branch = node_unknowns;
        for element in circuit.elements() {
            match element {
                Element::Resistor { plus, minus, value } => {
                    let conductance = 1.0 / value.ohms();
                    stamp_conductance(&mut g, row_of(*plus), row_of(*minus), conductance);
                }
                Element::Capacitor { plus, minus, value } => {
                    stamp_conductance(&mut c, row_of(*plus), row_of(*minus), value.farads());
                }
                Element::Inductor { plus, minus, value } => {
                    let b = next_branch;
                    next_branch += 1;
                    stamp_branch_incidence(&mut g, row_of(*plus), row_of(*minus), b);
                    c.add_at(b, b, -value.henries());
                }
                Element::VoltageSource { plus, minus, source, waveform } => {
                    let b = next_branch;
                    next_branch += 1;
                    stamp_branch_incidence(&mut g, row_of(*plus), row_of(*minus), b);
                    sources.push(SourceStamp::Voltage { row: b, waveform: waveform.clone() });
                    source_ids.push(source.index());
                }
                Element::CurrentSource { plus, minus, source, waveform } => {
                    sources.push(SourceStamp::Current {
                        plus_row: row_of(*plus),
                        minus_row: row_of(*minus),
                        waveform: waveform.clone(),
                    });
                    source_ids.push(source.index());
                }
            }
        }

        Ok(Self { node_unknowns, dim, g, c, sources, source_ids })
    }

    /// Dimension of the unknown vector (node voltages + branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of node-voltage unknowns (nodes excluding ground).
    pub fn node_unknowns(&self) -> usize {
        self.node_unknowns
    }

    /// The conductance/incidence matrix `G`.
    pub fn g(&self) -> &Matrix<f64> {
        &self.g
    }

    /// The storage matrix `C` (capacitances and inductances).
    pub fn c(&self) -> &Matrix<f64> {
        &self.c
    }

    /// Row of the unknown vector holding the voltage of `node`, or `None` for
    /// ground.
    pub fn row_of_node(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Evaluates the right-hand side `b(t)` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn rhs_at(&self, t: Time, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "rhs buffer length must equal system dimension");
        out.fill(0.0);
        for source in &self.sources {
            match source {
                SourceStamp::Voltage { row, waveform } => {
                    out[*row] += waveform.value_at(t).volts();
                }
                SourceStamp::Current { plus_row, minus_row, waveform } => {
                    let value = waveform.value_at(t).volts();
                    if let Some(p) = plus_row {
                        out[*p] += value;
                    }
                    if let Some(m) = minus_row {
                        out[*m] -= value;
                    }
                }
            }
        }
    }

    /// Builds the complex system matrix `A(s) = G + s·C` at a complex frequency.
    pub fn complex_system(&self, s: Complex) -> Matrix<Complex> {
        let mut a = Matrix::<Complex>::zeros(self.dim, self.dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                let value = Complex::from_real(self.g[(i, j)]) + s * self.c[(i, j)];
                if value != Complex::ZERO {
                    a[(i, j)] = value;
                }
            }
        }
        a
    }

    /// Builds the right-hand side for an AC/complex-frequency analysis in which
    /// the source `excited` has unit amplitude and every other source is off.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownSource`] if the source does not exist.
    pub fn unit_excitation(&self, excited: SourceId) -> Result<Vec<Complex>, CircuitError> {
        let position = self
            .source_ids
            .iter()
            .position(|&id| id == excited.index())
            .ok_or(CircuitError::UnknownSource { index: excited.index() })?;
        let mut b = vec![Complex::ZERO; self.dim];
        match &self.sources[position] {
            SourceStamp::Voltage { row, .. } => {
                b[*row] = Complex::ONE;
            }
            SourceStamp::Current { plus_row, minus_row, .. } => {
                if let Some(p) = plus_row {
                    b[*p] = Complex::ONE;
                }
                if let Some(m) = minus_row {
                    b[*m] = b[*m] - Complex::ONE;
                }
            }
        }
        Ok(b)
    }
}

/// Stamps a two-terminal admittance-like value into a matrix.
fn stamp_conductance(m: &mut Matrix<f64>, plus: Option<usize>, minus: Option<usize>, value: f64) {
    if let Some(p) = plus {
        m.add_at(p, p, value);
    }
    if let Some(q) = minus {
        m.add_at(q, q, value);
    }
    if let (Some(p), Some(q)) = (plus, minus) {
        m.add_at(p, q, -value);
        m.add_at(q, p, -value);
    }
}

/// Stamps the incidence pattern of a branch-current unknown (voltage source or
/// inductor) into `G`.
fn stamp_branch_incidence(g: &mut Matrix<f64>, plus: Option<usize>, minus: Option<usize>, branch: usize) {
    if let Some(p) = plus {
        g.add_at(p, branch, 1.0);
        g.add_at(branch, p, 1.0);
    }
    if let Some(q) = minus {
        g.add_at(q, branch, -1.0);
        g.add_at(branch, q, -1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{Capacitance, Inductance, Resistance, Voltage};

    fn simple_rc() -> (Circuit, NodeId, NodeId) {
        // V(step) - R - node a - C - ground
        let mut c = Circuit::new();
        let input = c.add_node();
        let a = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(input, a, Resistance::from_ohms(1000.0)).unwrap();
        c.add_capacitor(a, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        (c, input, a)
    }

    #[test]
    fn dimensions_count_branches() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        // 2 node unknowns + 1 voltage-source branch.
        assert_eq!(mna.node_unknowns(), 2);
        assert_eq!(mna.dim(), 3);
    }

    #[test]
    fn empty_circuit_is_rejected() {
        let c = Circuit::new();
        assert!(matches!(MnaSystem::build(&c), Err(CircuitError::EmptyCircuit)));
    }

    #[test]
    fn resistor_stamp_is_symmetric() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_resistor(a, b, Resistance::from_ohms(500.0)).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        let g = mna.g();
        let conductance = 1.0 / 500.0;
        assert!((g[(0, 0)] - conductance - GMIN).abs() < 1e-15);
        assert!((g[(1, 1)] - conductance - GMIN).abs() < 1e-15);
        assert!((g[(0, 1)] + conductance).abs() < 1e-15);
        assert!((g[(1, 0)] + conductance).abs() < 1e-15);
    }

    #[test]
    fn capacitor_stamps_into_storage_matrix() {
        let (c, _, a) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let row = mna.row_of_node(a).unwrap();
        assert!((mna.c()[(row, row)] - 1e-12).abs() < 1e-24);
        // G at that node only has the resistor + GMIN.
        assert!((mna.g()[(row, row)] - 1e-3 - GMIN).abs() < 1e-12);
    }

    #[test]
    fn inductor_gets_branch_row() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_inductor(a, b, Inductance::from_nanohenries(5.0)).unwrap();
        c.add_resistor(b, gnd, Resistance::from_ohms(50.0)).unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        // 2 nodes + 2 branches (V source + inductor).
        assert_eq!(mna.dim(), 4);
        // Inductor branch is the last row; its C entry is -L.
        assert!((mna.c()[(3, 3)] + 5e-9).abs() < 1e-20);
        // Incidence of the inductor branch into its nodes.
        assert_eq!(mna.g()[(0, 3)], 1.0);
        assert_eq!(mna.g()[(1, 3)], -1.0);
        assert_eq!(mna.g()[(3, 0)], 1.0);
        assert_eq!(mna.g()[(3, 1)], -1.0);
    }

    #[test]
    fn rhs_tracks_source_waveform() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let mut b = vec![0.0; mna.dim()];
        mna.rhs_at(Time::ZERO, &mut b);
        assert_eq!(b, vec![0.0, 0.0, 0.0]);
        mna.rhs_at(Time::from_picoseconds(1.0), &mut b);
        assert_eq!(b[2], 1.0);
    }

    #[test]
    fn current_source_rhs() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        c.add_resistor(a, gnd, Resistance::from_ohms(100.0)).unwrap();
        let src = c
            .add_current_source(a, gnd, SourceWaveform::Dc { level: Voltage::from_volts(2e-3) })
            .unwrap();
        let mna = MnaSystem::build(&c).unwrap();
        let mut b = vec![0.0; mna.dim()];
        mna.rhs_at(Time::ZERO, &mut b);
        assert!((b[0] - 2e-3).abs() < 1e-15);
        let ac = mna.unit_excitation(src).unwrap();
        assert_eq!(ac[0], Complex::ONE);
    }

    #[test]
    fn unit_excitation_selects_the_right_source() {
        let (c, _, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let b = mna.unit_excitation(SourceId(0)).unwrap();
        assert_eq!(b[2], Complex::ONE);
        assert!(matches!(
            mna.unit_excitation(SourceId(5)),
            Err(CircuitError::UnknownSource { index: 5 })
        ));
    }

    #[test]
    fn complex_system_combines_g_and_c() {
        let (c, _, a) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        let s = Complex::new(0.0, 1e9);
        let m = mna.complex_system(s);
        let row = mna.row_of_node(a).unwrap();
        let expected = Complex::new(1e-3 + GMIN, 1e9 * 1e-12);
        assert!((m[(row, row)] - expected).abs() < 1e-12);
    }

    #[test]
    fn ground_node_has_no_row() {
        let (c, input, _) = simple_rc();
        let mna = MnaSystem::build(&c).unwrap();
        assert_eq!(mna.row_of_node(c.ground()), None);
        assert_eq!(mna.row_of_node(input), Some(0));
    }
}
