//! Gate-driven RLC transmission-line ladders (the circuit of Fig. 1).
//!
//! The distributed line is approximated by `N` identical lumped segments. With
//! the default [`SegmentStyle::Pi`] topology each segment carries the series
//! impedance `R/N`, `L/N` with half of the shunt capacitance `C/N` at each
//! end, which converges to the distributed line with second-order accuracy in
//! `1/N`.
//!
//! The driver is the paper's abstraction of a CMOS gate: an ideal step source
//! behind the equivalent output resistance `Rtr`. The far end carries the
//! receiver input capacitance `CL`.

use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};

use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId, SourceId};
use crate::source::SourceWaveform;
use crate::transient::{run_transient, TransientOptions};
use crate::waveform::Waveform;

/// Lumped-segment topology used to discretise the distributed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentStyle {
    /// Series `R/N`–`L/N` followed by the full shunt `C/N` (first-order accurate).
    LSection,
    /// Half the shunt capacitance on each side of the series impedance
    /// (second-order accurate, default).
    #[default]
    Pi,
}

/// Description of a CMOS gate driving a uniform RLC line with a capacitive load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderSpec {
    /// Total line resistance `Rt = R·l`.
    pub total_resistance: Resistance,
    /// Total line inductance `Lt = L·l`.
    pub total_inductance: Inductance,
    /// Total line capacitance `Ct = C·l`.
    pub total_capacitance: Capacitance,
    /// Number of lumped segments used to approximate the distributed line.
    pub segments: usize,
    /// Segment topology.
    pub style: SegmentStyle,
    /// Driver equivalent output resistance `Rtr` (zero allowed: ideal driver).
    pub driver_resistance: Resistance,
    /// Receiver input capacitance `CL` (zero allowed: open far end).
    pub load_capacitance: Capacitance,
    /// Step amplitude (the supply voltage).
    pub supply: Voltage,
}

impl LadderSpec {
    /// A specification with a 1 V supply, 40 π-segments and the given impedances.
    pub fn new(
        total_resistance: Resistance,
        total_inductance: Inductance,
        total_capacitance: Capacitance,
        driver_resistance: Resistance,
        load_capacitance: Capacitance,
    ) -> Self {
        Self {
            total_resistance,
            total_inductance,
            total_capacitance,
            segments: 40,
            style: SegmentStyle::Pi,
            driver_resistance,
            load_capacitance,
            supply: Voltage::from_volts(1.0),
        }
    }

    fn validate(&self) -> Result<(), CircuitError> {
        let check = |value: f64, what: &'static str| -> Result<(), CircuitError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(CircuitError::InvalidValue { what, value })
            }
        };
        check(self.total_resistance.ohms(), "total line resistance")?;
        check(self.total_inductance.henries(), "total line inductance")?;
        check(self.total_capacitance.farads(), "total line capacitance")?;
        check(self.supply.volts(), "supply voltage")?;
        if self.segments == 0 {
            return Err(CircuitError::InvalidValue { what: "segment count", value: 0.0 });
        }
        if !(self.driver_resistance.ohms() >= 0.0) || !self.driver_resistance.ohms().is_finite() {
            return Err(CircuitError::InvalidValue {
                what: "driver resistance",
                value: self.driver_resistance.ohms(),
            });
        }
        if !(self.load_capacitance.farads() >= 0.0) || !self.load_capacitance.farads().is_finite() {
            return Err(CircuitError::InvalidValue {
                what: "load capacitance",
                value: self.load_capacitance.farads(),
            });
        }
        Ok(())
    }

    /// Builds the step-driven ladder circuit described by this specification.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] if any impedance is non-positive
    /// (driver resistance and load capacitance may be zero).
    pub fn build(&self) -> Result<LadderLine, CircuitError> {
        self.validate()?;
        let n = self.segments;
        let r_seg = self.total_resistance / n as f64;
        let l_seg = self.total_inductance / n as f64;
        let c_seg = self.total_capacitance / n as f64;

        let mut circuit = Circuit::new();
        let gnd = circuit.ground();
        let source_node = circuit.add_node();
        let source = circuit.add_voltage_source(
            source_node,
            gnd,
            SourceWaveform::Step { amplitude: self.supply, delay: Time::ZERO },
        )?;

        // Driver output resistance (omitted when zero: the source drives the
        // line input directly).
        let line_input = if self.driver_resistance.ohms() > 0.0 {
            let node = circuit.add_node();
            circuit.add_resistor(source_node, node, self.driver_resistance)?;
            node
        } else {
            source_node
        };

        let mut prev = line_input;
        for i in 0..n {
            match self.style {
                SegmentStyle::Pi => {
                    // Half shunt at the near side, series R-L, half shunt at the far side.
                    circuit.add_capacitor(prev, gnd, c_seg / 2.0)?;
                    let mid = circuit.add_node();
                    let next = circuit.add_node();
                    circuit.add_resistor(prev, mid, r_seg)?;
                    circuit.add_inductor(mid, next, l_seg)?;
                    circuit.add_capacitor(next, gnd, c_seg / 2.0)?;
                    prev = next;
                }
                SegmentStyle::LSection => {
                    let mid = circuit.add_node();
                    let next = circuit.add_node();
                    circuit.add_resistor(prev, mid, r_seg)?;
                    circuit.add_inductor(mid, next, l_seg)?;
                    circuit.add_capacitor(next, gnd, c_seg)?;
                    prev = next;
                }
            }
            let _ = i;
        }
        let output = prev;
        if self.load_capacitance.farads() > 0.0 {
            circuit.add_capacitor(output, gnd, self.load_capacitance)?;
        }

        Ok(LadderLine { circuit, source, input: line_input, output, spec: *self })
    }

    /// A conservative timestep for transient analysis of this line.
    ///
    /// The fastest mode of the segmented ladder rings at roughly the segment
    /// time of flight `sqrt((Lt/N)(Ct/N))`; the suggestion resolves that mode
    /// with ~8 points and also resolves the overall RC and time-of-flight
    /// scales with at least ~2000 points.
    pub fn suggested_timestep(&self) -> Time {
        let lt = self.total_inductance.henries();
        let ct = self.total_capacitance.farads() + self.load_capacitance.farads();
        let rt = self.total_resistance.ohms() + self.driver_resistance.ohms();
        let n = self.segments as f64;
        let segment_tof = (lt * ct).sqrt() / n;
        let horizon = self.suggested_stop_time().seconds();
        let dt = (segment_tof / 8.0).min(horizon / 2000.0);
        // Guard against degenerate zero.
        Time::from_seconds(dt.max(horizon / 200_000.0).max(1e-18 * rt.max(1.0)))
    }

    /// A stop time long enough for the output to cross 50% in every damping regime.
    pub fn suggested_stop_time(&self) -> Time {
        let lt = self.total_inductance.henries();
        let ct = self.total_capacitance.farads() + self.load_capacitance.farads();
        let rc = (self.total_resistance.ohms() + self.driver_resistance.ohms()) * ct;
        let tof = (lt * ct).sqrt();
        // Several RC time constants plus several round trips of the wave.
        Time::from_seconds(4.0 * rc + 10.0 * tof)
    }
}

/// A built ladder circuit plus its interesting nodes.
#[derive(Debug, Clone)]
pub struct LadderLine {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// The step source driving the line.
    pub source: SourceId,
    /// The line input node (after the driver resistance).
    pub input: NodeId,
    /// The far-end output node (across the load capacitance).
    pub output: NodeId,
    spec: LadderSpec,
}

impl LadderLine {
    /// The specification this line was built from.
    pub fn spec(&self) -> &LadderSpec {
        &self.spec
    }
}

/// Timing measurements extracted from a simulated step response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDelayMeasurement {
    /// 50% propagation delay.
    pub delay_50: Time,
    /// 10%–90% rise time.
    pub rise_time: Time,
    /// Overshoot above the supply, in per cent.
    pub overshoot_percent: f64,
}

/// Builds, simulates and measures a step-driven line in one call.
///
/// This is the "ask the dynamic simulator" entry point used throughout the
/// workspace when a reference delay is needed. Timestep and horizon are
/// chosen by [`LadderSpec::suggested_timestep`]/[`LadderSpec::suggested_stop_time`];
/// if the output has not crossed 50% by the initial horizon the run is
/// retried with a longer one.
///
/// # Errors
///
/// Propagates construction/analysis errors, or a
/// [`CircuitError::Measurement`] if the output never crosses 50% even after
/// extending the horizon.
pub fn measure_step_delay(spec: &LadderSpec) -> Result<StepDelayMeasurement, CircuitError> {
    let line = spec.build()?;
    let mut stop = spec.suggested_stop_time();
    let mut last_error = None;
    for _ in 0..4 {
        let step = spec.suggested_timestep().min(stop / 2000.0);
        let options = TransientOptions::new(stop, step);
        let result = run_transient(&line.circuit, &options)?;
        let wave = result.node_voltage(line.output);
        match measurement_from_waveform(&wave, spec.supply) {
            Ok(m) => return Ok(m),
            Err(e) => {
                last_error = Some(e);
                stop *= 4.0;
            }
        }
    }
    Err(last_error.unwrap_or(CircuitError::Measurement {
        reason: "output never crossed 50% of the supply".to_owned(),
    }))
}

fn measurement_from_waveform(
    wave: &Waveform,
    supply: Voltage,
) -> Result<StepDelayMeasurement, CircuitError> {
    let delay_50 = wave.delay_50(supply)?;
    let rise_time = wave.rise_time(supply)?;
    let overshoot_percent = wave.overshoot_percent(supply);
    Ok(StepDelayMeasurement { delay_50, rise_time, overshoot_percent })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> LadderSpec {
        LadderSpec::new(
            Resistance::from_ohms(500.0),
            Inductance::from_nanohenries(10.0),
            Capacitance::from_picofarads(1.0),
            Resistance::from_ohms(250.0),
            Capacitance::from_picofarads(0.1),
        )
    }

    #[test]
    fn build_produces_expected_topology() {
        let spec = base_spec();
        let line = spec.build().unwrap();
        // Pi style: per segment 1 R + 1 L + 2 C, plus source, driver R, load C.
        let elements = line.circuit.elements().len();
        assert_eq!(elements, 1 + 1 + spec.segments * 4 + 1);
        assert_eq!(line.spec(), &spec);
        assert_ne!(line.input, line.output);
    }

    #[test]
    fn zero_driver_and_load_are_allowed() {
        let mut spec = base_spec();
        spec.driver_resistance = Resistance::ZERO;
        spec.load_capacitance = Capacitance::ZERO;
        let line = spec.build().unwrap();
        // No driver resistor and no load capacitor.
        assert_eq!(line.circuit.elements().len(), 1 + spec.segments * 4);
    }

    #[test]
    fn invalid_values_are_rejected() {
        let mut spec = base_spec();
        spec.total_resistance = Resistance::ZERO;
        assert!(spec.build().is_err());
        let mut spec = base_spec();
        spec.segments = 0;
        assert!(spec.build().is_err());
        let mut spec = base_spec();
        spec.driver_resistance = Resistance::from_ohms(-1.0);
        assert!(spec.build().is_err());
        let mut spec = base_spec();
        spec.load_capacitance = Capacitance::from_farads(f64::NAN);
        assert!(spec.build().is_err());
        let mut spec = base_spec();
        spec.supply = Voltage::ZERO;
        assert!(spec.build().is_err());
    }

    #[test]
    fn suggested_times_are_positive_and_ordered() {
        let spec = base_spec();
        let dt = spec.suggested_timestep();
        let stop = spec.suggested_stop_time();
        assert!(dt.seconds() > 0.0);
        assert!(stop.seconds() > dt.seconds() * 100.0);
    }

    #[test]
    fn rc_dominated_line_matches_distributed_rc_delay() {
        // Negligible inductance, no gate parasitics: the 50% delay of a
        // distributed RC line is 0.377·Rt·Ct (Sakurai). With a small but
        // non-zero L and a fine ladder the simulated delay should be close.
        let spec = LadderSpec {
            total_resistance: Resistance::from_ohms(1000.0),
            total_inductance: Inductance::from_picohenries(1.0),
            total_capacitance: Capacitance::from_picofarads(1.0),
            segments: 60,
            style: SegmentStyle::Pi,
            driver_resistance: Resistance::ZERO,
            load_capacitance: Capacitance::ZERO,
            supply: Voltage::from_volts(1.0),
        };
        let m = measure_step_delay(&spec).unwrap();
        let rt_ct = 1000.0 * 1e-12;
        let expected = 0.377 * rt_ct;
        let err = (m.delay_50.seconds() - expected).abs() / expected;
        assert!(
            err < 0.05,
            "delay {} vs distributed-RC {expected}, err {err}",
            m.delay_50.seconds()
        );
        assert_eq!(m.overshoot_percent, 0.0);
        assert!(m.rise_time.seconds() > 0.0);
    }

    #[test]
    fn lossless_line_delay_is_time_of_flight() {
        // R → 0 (tiny), no gate parasitics: delay approaches sqrt(Lt·Ct).
        let spec = LadderSpec {
            total_resistance: Resistance::from_ohms(1.0),
            total_inductance: Inductance::from_nanohenries(10.0),
            total_capacitance: Capacitance::from_picofarads(1.0),
            segments: 80,
            style: SegmentStyle::Pi,
            driver_resistance: Resistance::ZERO,
            load_capacitance: Capacitance::ZERO,
            supply: Voltage::from_volts(1.0),
        };
        let m = measure_step_delay(&spec).unwrap();
        let tof = (10e-9f64 * 1e-12).sqrt();
        let err = (m.delay_50.seconds() - tof).abs() / tof;
        assert!(err < 0.1, "delay {} vs time of flight {tof}, err {err}", m.delay_50.seconds());
        // A nearly lossless line rings hard.
        assert!(m.overshoot_percent > 20.0);
    }

    #[test]
    fn pi_and_l_sections_agree_for_fine_ladders() {
        let mut spec = base_spec();
        spec.segments = 80;
        spec.style = SegmentStyle::Pi;
        let pi = measure_step_delay(&spec).unwrap();
        spec.style = SegmentStyle::LSection;
        let l = measure_step_delay(&spec).unwrap();
        let diff = (pi.delay_50.seconds() - l.delay_50.seconds()).abs() / pi.delay_50.seconds();
        assert!(diff < 0.03, "π vs L section delays differ by {diff}");
    }
}
