//! DC operating-point analysis.
//!
//! Solves `G·x = b(t)` with the storage elements at their DC behaviour
//! (capacitors open, inductors short — both fall out naturally from the MNA
//! formulation when `dx/dt = 0`). Used to obtain consistent initial
//! conditions for transient analysis.
//!
//! Like every analysis in this crate, the factorisation goes through the
//! pluggable solver backend: ladder-shaped circuits are solved by the banded
//! kernel in `O(n·b²)` instead of the dense `O(n³)`.

use rlckit_numeric::solver::SolverBackend;
use rlckit_units::{Time, Voltage};

use crate::error::CircuitError;
use crate::mna::MnaSystem;
use crate::netlist::{Circuit, NodeId};
use crate::solve::factor_real;

/// Result of a DC operating-point analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    state: Vec<f64>,
    node_unknowns: usize,
}

impl DcSolution {
    /// Voltage of a node in the DC solution.
    pub fn node_voltage(&self, node: NodeId) -> Voltage {
        if node.is_ground() {
            Voltage::ZERO
        } else {
            Voltage::from_volts(self.state[node.index() - 1])
        }
    }

    /// The full MNA unknown vector (node voltages then branch currents).
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// The node-voltage portion of the solution (excluding branch currents).
    pub fn node_voltages(&self) -> &[f64] {
        &self.state[..self.node_unknowns]
    }
}

/// Computes the DC operating point of a circuit with sources evaluated at time `t`.
///
/// # Errors
///
/// Returns [`CircuitError::EmptyCircuit`] for an element-free circuit and
/// [`CircuitError::SingularSystem`] if the DC system cannot be solved.
pub fn operating_point_at(circuit: &Circuit, t: Time) -> Result<DcSolution, CircuitError> {
    let mna = MnaSystem::build(circuit)?;
    operating_point_of(&mna, t, SolverBackend::Auto)
}

/// Computes the DC operating point with sources evaluated at `t = 0`.
///
/// # Errors
///
/// Same conditions as [`operating_point_at`].
pub fn operating_point(circuit: &Circuit) -> Result<DcSolution, CircuitError> {
    operating_point_at(circuit, Time::ZERO)
}

/// Computes the DC operating point of an already-assembled system with an
/// explicit backend choice (used by the transient solver to reuse its
/// [`MnaSystem`] and backend policy for the initial condition).
///
/// # Errors
///
/// Returns [`CircuitError::SingularSystem`] if the DC system cannot be solved.
pub fn operating_point_of(
    mna: &MnaSystem,
    t: Time,
    backend: SolverBackend,
) -> Result<DcSolution, CircuitError> {
    let factor = factor_real(mna, 1.0, 0.0, backend, "dc analysis")?;
    let mut b = vec![0.0; mna.dim()];
    mna.rhs_at(t, &mut b);
    let state = factor.solve(&b);
    Ok(DcSolution { state, node_unknowns: mna.node_unknowns() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let top = c.add_node();
        let mid = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(top, gnd, SourceWaveform::Dc { level: Voltage::from_volts(3.0) })
            .unwrap();
        c.add_resistor(top, mid, Resistance::from_ohms(1000.0)).unwrap();
        c.add_resistor(mid, gnd, Resistance::from_ohms(2000.0)).unwrap();
        let dc = operating_point(&c).unwrap();
        assert!((dc.node_voltage(top).volts() - 3.0).abs() < 1e-9);
        assert!((dc.node_voltage(mid).volts() - 2.0).abs() < 1e-6);
        assert_eq!(dc.node_voltage(gnd).volts(), 0.0);
        assert_eq!(dc.state().len(), 3);
    }

    #[test]
    fn inductor_is_a_dc_short() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::Dc { level: Voltage::from_volts(1.0) })
            .unwrap();
        c.add_inductor(a, b, Inductance::from_nanohenries(10.0)).unwrap();
        c.add_resistor(b, gnd, Resistance::from_ohms(100.0)).unwrap();
        let dc = operating_point(&c).unwrap();
        assert!((dc.node_voltage(b).volts() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_a_dc_open() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::Dc { level: Voltage::from_volts(1.0) })
            .unwrap();
        c.add_resistor(a, b, Resistance::from_ohms(1000.0)).unwrap();
        c.add_capacitor(b, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        let dc = operating_point(&c).unwrap();
        // No DC current flows, so node b sits at the source voltage.
        assert!((dc.node_voltage(b).volts() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn step_source_is_zero_at_time_zero() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(a, gnd, Resistance::from_ohms(100.0)).unwrap();
        let dc0 = operating_point(&c).unwrap();
        assert_eq!(dc0.node_voltage(a).volts(), 0.0);
        let dc1 = operating_point_at(&c, Time::from_picoseconds(1.0)).unwrap();
        assert!((dc1.node_voltage(a).volts() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_is_rejected() {
        let c = Circuit::new();
        assert!(matches!(operating_point(&c), Err(CircuitError::EmptyCircuit)));
    }

    #[test]
    fn forced_backends_agree_on_the_operating_point() {
        let mut c = Circuit::new();
        let gnd = c.ground();
        let input = c.add_node();
        c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        let mut prev = input;
        for _ in 0..20 {
            let mid = c.add_node();
            let next = c.add_node();
            c.add_resistor(prev, mid, Resistance::from_ohms(10.0)).unwrap();
            c.add_inductor(mid, next, Inductance::from_picohenries(100.0)).unwrap();
            c.add_capacitor(next, gnd, Capacitance::from_femtofarads(5.0)).unwrap();
            prev = next;
        }
        let mna = MnaSystem::build(&c).unwrap();
        let t = Time::from_picoseconds(2.0);
        let dense = operating_point_of(&mna, t, SolverBackend::Dense).unwrap();
        let banded = operating_point_of(&mna, t, SolverBackend::Banded).unwrap();
        for (d, b) in dense.state().iter().zip(banded.state().iter()) {
            assert!((d - b).abs() < 1e-9);
        }
        assert!((dense.node_voltage(prev).volts() - 1.0).abs() < 1e-6);
        assert_eq!(dense.node_voltages().len(), mna.node_unknowns());
    }
}
