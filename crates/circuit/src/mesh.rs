//! Gate-driven RC(L) *meshes* — power-grid / clock-mesh style workloads.
//!
//! Trees showed why the banded kernel is not enough; meshes show why the
//! tree story is not enough either. A regular grid has no leaf to eliminate:
//! every fill-reducing order must pay genuine fill (`Θ(n log n)` factor
//! entries under nested-dissection-quality orderings on an `√n × √n` grid),
//! so a mesh exercises exactly the part of the sparse kernel that trees
//! leave cold — the approximate-minimum-degree ordering quality and the
//! cost of refactoring a filled pattern. That makes [`MeshSpec`] the
//! scaling workload for the 10⁵–10⁶-unknown regime of power grids and
//! clock meshes, 100–1000× beyond the routing-tree sizes.
//!
//! A [`MeshSpec`] describes a `rows × cols` grid of nodes, each with a
//! capacitance to ground, joined to its right/down neighbours by uniform
//! segments (resistive, or R+L when a segment inductance is given), driven
//! by the usual gate abstraction (step source behind `Rtr`) at the
//! near corner and measured at the far corner — the worst-case load point.
//!
//! [`measure_mesh_delay`] runs one transient and extracts the far-corner
//! 50% delay, rise time and overshoot, mirroring
//! [`crate::tree::measure_tree_delays`].

use rlckit_numeric::solver::ResolvedBackend;
use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};

use crate::error::CircuitError;
use crate::netlist::{Circuit, NodeId, SourceId};
use crate::source::SourceWaveform;
use crate::transient::{run_transient, TransientOptions};

/// Description of a CMOS gate driving a regular RC(L) mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshSpec {
    /// Number of grid rows (≥ 1).
    pub rows: usize,
    /// Number of grid columns (≥ 1, with `rows·cols ≥ 2`).
    pub cols: usize,
    /// Resistance of every horizontal/vertical segment between neighbours.
    pub segment_resistance: Resistance,
    /// Series inductance of every segment; zero gives a pure RC mesh with no
    /// branch unknowns, a positive value adds one internal node and one
    /// inductor branch per segment.
    pub segment_inductance: Inductance,
    /// Capacitance to ground at every grid node.
    pub node_capacitance: Capacitance,
    /// Driver equivalent output resistance `Rtr` (zero allowed: the source
    /// pad then *is* the near corner).
    pub driver_resistance: Resistance,
    /// Extra load capacitance at the far corner (zero allowed).
    pub load_capacitance: Capacitance,
    /// Step amplitude (the supply voltage).
    pub supply: Voltage,
}

impl MeshSpec {
    /// A pure RC mesh with a 1 V supply; adjust fields as needed.
    pub fn new(
        rows: usize,
        cols: usize,
        segment_resistance: Resistance,
        node_capacitance: Capacitance,
        driver_resistance: Resistance,
    ) -> Self {
        Self {
            rows,
            cols,
            segment_resistance,
            segment_inductance: Inductance::ZERO,
            node_capacitance,
            driver_resistance,
            load_capacitance: Capacitance::ZERO,
            supply: Voltage::from_volts(1.0),
        }
    }

    fn validate(&self) -> Result<(), CircuitError> {
        if self.rows == 0 || self.cols == 0 || self.rows * self.cols < 2 {
            return Err(CircuitError::InvalidValue {
                what: "mesh dimensions (rows·cols must be at least 2)",
                value: (self.rows * self.cols) as f64,
            });
        }
        let check_pos = |value: f64, what: &'static str| -> Result<(), CircuitError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(CircuitError::InvalidValue { what, value })
            }
        };
        let check_nonneg = |value: f64, what: &'static str| -> Result<(), CircuitError> {
            if value.is_finite() && value >= 0.0 {
                Ok(())
            } else {
                Err(CircuitError::InvalidValue { what, value })
            }
        };
        check_pos(self.segment_resistance.ohms(), "mesh segment resistance")?;
        check_pos(self.node_capacitance.farads(), "mesh node capacitance")?;
        check_pos(self.supply.volts(), "supply voltage")?;
        check_nonneg(self.segment_inductance.henries(), "mesh segment inductance")?;
        check_nonneg(self.driver_resistance.ohms(), "driver resistance")?;
        check_nonneg(self.load_capacitance.farads(), "load capacitance")?;
        Ok(())
    }

    /// Number of segments (edges) in the grid.
    pub fn segment_count(&self) -> usize {
        self.rows * (self.cols - 1) + (self.rows - 1) * self.cols
    }

    /// Number of MNA unknowns the built circuit will have: grid nodes, the
    /// source pad (when a driver resistance separates it from the grid), the
    /// source branch, and — in the inductive variant — one internal node and
    /// one branch current per segment.
    pub fn unknown_count(&self) -> usize {
        let pad = usize::from(self.driver_resistance.ohms() > 0.0);
        let per_segment =
            if self.segment_inductance.henries() > 0.0 { 2 * self.segment_count() } else { 0 };
        self.rows * self.cols + pad + 1 + per_segment
    }

    /// Builds the step-driven mesh circuit described by this specification.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for degenerate grids or
    /// non-positive segment values (driver resistance, segment inductance
    /// and load capacitance may be zero).
    pub fn build(&self) -> Result<MeshNet, CircuitError> {
        self.validate()?;
        let mut circuit = Circuit::new();
        let gnd = circuit.ground();
        let source_node = circuit.add_node();
        let source = circuit.add_voltage_source(
            source_node,
            gnd,
            SourceWaveform::Step { amplitude: self.supply, delay: Time::ZERO },
        )?;
        let near = if self.driver_resistance.ohms() > 0.0 {
            let node = circuit.add_node();
            circuit.add_resistor(source_node, node, self.driver_resistance)?;
            node
        } else {
            source_node
        };

        let mut nodes: Vec<NodeId> = Vec::with_capacity(self.rows * self.cols);
        nodes.push(near);
        for _ in 1..self.rows * self.cols {
            nodes.push(circuit.add_node());
        }
        for &node in &nodes {
            circuit.add_capacitor(node, gnd, self.node_capacitance)?;
        }

        let inductive = self.segment_inductance.henries() > 0.0;
        let connect = |circuit: &mut Circuit, a: NodeId, b: NodeId| -> Result<(), CircuitError> {
            if inductive {
                let mid = circuit.add_node();
                circuit.add_resistor(a, mid, self.segment_resistance)?;
                circuit.add_inductor(mid, b, self.segment_inductance)?;
            } else {
                circuit.add_resistor(a, b, self.segment_resistance)?;
            }
            Ok(())
        };
        for r in 0..self.rows {
            for c in 0..self.cols {
                let here = nodes[r * self.cols + c];
                if c + 1 < self.cols {
                    connect(&mut circuit, here, nodes[r * self.cols + c + 1])?;
                }
                if r + 1 < self.rows {
                    connect(&mut circuit, here, nodes[(r + 1) * self.cols + c])?;
                }
            }
        }

        let far = nodes[self.rows * self.cols - 1];
        if self.load_capacitance.farads() > 0.0 {
            circuit.add_capacitor(far, gnd, self.load_capacitance)?;
        }

        Ok(MeshNet { circuit, source, near, far, nodes, spec: *self })
    }

    /// A conservative timestep: the slower of ~2000 points over the horizon
    /// and, in the inductive variant, an eighth of a segment's LC period.
    pub fn suggested_timestep(&self) -> Time {
        let horizon = self.suggested_stop_time().seconds();
        let mut dt = horizon / 2000.0;
        if self.segment_inductance.henries() > 0.0 {
            let tof = (self.segment_inductance.henries() * self.node_capacitance.farads()).sqrt();
            dt = dt.min(tof / 8.0);
        }
        Time::from_seconds(dt.max(horizon / 200_000.0))
    }

    /// A stop time long enough for the far corner to cross 50%: several RC
    /// constants of the worst series path (driver plus the Manhattan
    /// distance of segments — a deliberate overestimate, since the mesh's
    /// parallel paths only lower the effective resistance) charging the
    /// whole grid capacitance.
    pub fn suggested_stop_time(&self) -> Time {
        let manhattan = (self.rows - 1) + (self.cols - 1);
        let path_r =
            self.driver_resistance.ohms() + manhattan as f64 * self.segment_resistance.ohms();
        let total_c = self.rows as f64 * self.cols as f64 * self.node_capacitance.farads()
            + self.load_capacitance.farads();
        let tof = (manhattan as f64
            * self.segment_inductance.henries()
            * total_c.max(self.node_capacitance.farads()))
        .sqrt();
        Time::from_seconds(4.0 * path_r * total_c + 10.0 * tof)
    }
}

/// A built mesh circuit plus its interesting nodes.
#[derive(Debug, Clone)]
pub struct MeshNet {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// The step source driving the mesh.
    pub source: SourceId,
    /// The near corner (grid node (0, 0), after the driver resistance).
    pub near: NodeId,
    /// The far corner (grid node (rows−1, cols−1)) — the measured load point.
    pub far: NodeId,
    /// Every grid node in row-major order (`nodes[r·cols + c]`).
    pub nodes: Vec<NodeId>,
    spec: MeshSpec,
}

impl MeshNet {
    /// The specification this mesh was built from.
    pub fn spec(&self) -> &MeshSpec {
        &self.spec
    }

    /// The grid node at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        assert!(row < self.spec.rows && col < self.spec.cols, "mesh coordinate out of range");
        self.nodes[row * self.spec.cols + col]
    }
}

/// Far-corner timing of one transient run over a mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshDelayReport {
    /// 50% propagation delay at the far corner.
    pub delay_50: Time,
    /// 10%–90% rise time at the far corner.
    pub rise_time: Time,
    /// Overshoot above the supply at the far corner, in per cent.
    pub overshoot_percent: f64,
    /// Which solver kernel factorised the system.
    pub backend: ResolvedBackend,
}

/// Builds, simulates and measures a step-driven mesh in one call.
///
/// If the far corner has not crossed 50% by the suggested horizon the run is
/// retried with a longer one, like the tree workload.
///
/// # Errors
///
/// Propagates construction/analysis errors, or [`CircuitError::Measurement`]
/// if the far corner never crosses 50% even after extending the horizon.
pub fn measure_mesh_delay(spec: &MeshSpec) -> Result<MeshDelayReport, CircuitError> {
    let net = spec.build()?;
    let mut stop = spec.suggested_stop_time();
    let mut last_error = None;
    for _ in 0..4 {
        let step = spec.suggested_timestep().min(stop / 2000.0);
        let options = TransientOptions::new(stop, step);
        let result = run_transient(&net.circuit, &options)?;
        let wave = result.node_voltage(net.far);
        match (wave.delay_50(spec.supply), wave.rise_time(spec.supply)) {
            (Ok(delay_50), Ok(rise_time)) => {
                return Ok(MeshDelayReport {
                    delay_50,
                    rise_time,
                    overshoot_percent: wave.overshoot_percent(spec.supply),
                    backend: result.backend(),
                });
            }
            (Err(e), _) | (_, Err(e)) => {
                last_error = Some(e);
                stop *= 4.0;
            }
        }
    }
    Err(last_error.unwrap_or(CircuitError::Measurement {
        reason: "mesh far corner never crossed 50% of the supply".to_owned(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{measure_step_delay, LadderSpec};

    fn small_mesh(rows: usize, cols: usize) -> MeshSpec {
        MeshSpec::new(
            rows,
            cols,
            Resistance::from_ohms(5.0),
            Capacitance::from_femtofarads(20.0),
            Resistance::from_ohms(100.0),
        )
    }

    #[test]
    fn build_wires_the_grid() {
        let spec = small_mesh(4, 5);
        let net = spec.build().unwrap();
        assert_eq!(net.nodes.len(), 20);
        assert_eq!(spec.segment_count(), 4 * 4 + 3 * 5);
        assert_eq!(net.node_at(0, 0), net.near);
        assert_eq!(net.node_at(3, 4), net.far);
        // Elements: source + driver R + one C per node + one R per segment.
        assert_eq!(net.circuit.elements().len(), 2 + 20 + spec.segment_count());
        assert_eq!(net.spec(), &spec);
        // dim = 20 grid nodes + pad + source branch.
        let mna = crate::mna::MnaSystem::build(&net.circuit).unwrap();
        assert_eq!(mna.dim(), spec.unknown_count());
    }

    #[test]
    fn inductive_mesh_counts_branch_unknowns() {
        let mut spec = small_mesh(3, 3);
        spec.segment_inductance = Inductance::from_picohenries(10.0);
        let net = spec.build().unwrap();
        let mna = crate::mna::MnaSystem::build(&net.circuit).unwrap();
        assert_eq!(mna.dim(), spec.unknown_count());
    }

    #[test]
    fn invalid_meshes_are_rejected() {
        assert!(small_mesh(1, 1).build().is_err());
        assert!(small_mesh(0, 5).build().is_err());
        let mut bad_r = small_mesh(3, 3);
        bad_r.segment_resistance = Resistance::ZERO;
        assert!(bad_r.build().is_err());
        let mut bad_c = small_mesh(3, 3);
        bad_c.node_capacitance = Capacitance::from_farads(f64::NAN);
        assert!(bad_c.build().is_err());
        let mut bad_l = small_mesh(3, 3);
        bad_l.segment_inductance = Inductance::from_henries(-1.0);
        assert!(bad_l.build().is_err());
    }

    #[test]
    fn one_by_n_mesh_matches_the_equivalent_rc_ladder() {
        // A 1×n mesh is a distributed RC line; compare against the ladder
        // builder with negligible inductance.
        let n = 20;
        let mut spec = small_mesh(1, n);
        spec.load_capacitance = Capacitance::from_femtofarads(50.0);
        let mesh = measure_mesh_delay(&spec).unwrap();

        let ladder = LadderSpec {
            total_resistance: Resistance::from_ohms(5.0 * (n - 1) as f64),
            // The ladder builder needs L > 0; keep it electrically invisible.
            total_inductance: Inductance::from_picohenries(0.001),
            total_capacitance: Capacitance::from_femtofarads(20.0 * (n - 1) as f64),
            segments: n - 1,
            style: crate::ladder::SegmentStyle::Pi,
            driver_resistance: Resistance::from_ohms(100.0),
            load_capacitance: Capacitance::from_femtofarads(50.0 + 10.0),
            supply: Voltage::from_volts(1.0),
        };
        let reference = measure_step_delay(&ladder).unwrap();
        let mesh_delay = mesh.delay_50.seconds();
        let ladder_delay = reference.delay_50.seconds();
        let err = (mesh_delay - ladder_delay).abs() / ladder_delay;
        // π segments split end capacitance differently from the mesh's
        // per-node placement, so agreement is approximate.
        assert!(err < 0.1, "mesh {mesh_delay} vs ladder {ladder_delay}, err {err}");
    }

    #[test]
    fn far_corner_is_slower_than_the_centre() {
        let spec = small_mesh(6, 6);
        let net = spec.build().unwrap();
        let options = TransientOptions::new(spec.suggested_stop_time(), spec.suggested_timestep());
        let result = run_transient(&net.circuit, &options).unwrap();
        let far = result.node_voltage(net.far).delay_50(spec.supply).unwrap();
        let centre = result.node_voltage(net.node_at(2, 2)).delay_50(spec.supply).unwrap();
        assert!(
            far.seconds() > centre.seconds(),
            "far {} vs centre {}",
            far.seconds(),
            centre.seconds()
        );
    }

    #[test]
    fn grids_resolve_to_the_sparse_backend() {
        // A 12×12 grid has bandwidth ~12 under RCM — past the banded limit
        // relative to its size? No: the auto policy needs the factored width
        // to clear AUTO_BAND_LIMIT, so use a grid wide enough for that.
        let spec = small_mesh(24, 24);
        let report = measure_mesh_delay(&spec).unwrap();
        assert_eq!(report.backend, ResolvedBackend::Sparse);
        assert!(report.delay_50.seconds() > 0.0);
        assert!(report.rise_time.seconds() > 0.0);
        assert!(report.overshoot_percent >= 0.0);
    }
}
