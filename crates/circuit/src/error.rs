//! Error type shared by all circuit analyses.

use std::error::Error;
use std::fmt;

use rlckit_numeric::lu::FactorizeError;

/// Error returned by circuit construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A component value is not usable (negative, NaN, or otherwise out of range).
    InvalidValue {
        /// Which component parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A node identifier does not belong to this circuit.
    UnknownNode {
        /// The raw node index supplied.
        index: usize,
    },
    /// A source identifier does not belong to this circuit.
    UnknownSource {
        /// The raw source index supplied.
        index: usize,
    },
    /// An inductor identifier does not belong to this circuit.
    UnknownInductor {
        /// The raw inductor index supplied.
        index: usize,
    },
    /// The circuit has no elements to analyse.
    EmptyCircuit,
    /// The MNA matrix could not be factorised (floating node, short loop, ...).
    SingularSystem {
        /// Description of the analysis stage that failed.
        stage: &'static str,
    },
    /// An analysis option is invalid (non-positive stop time, zero timestep, ...).
    InvalidAnalysis {
        /// Human-readable description of the problem.
        reason: &'static str,
    },
    /// A requested measurement could not be computed from the waveform.
    Measurement {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A named element could not be added. Wraps the underlying error with
    /// the caller-supplied element name so higher-level frontends (the deck
    /// parser in particular) can cite the offending card instead of a bare
    /// node or value.
    Element {
        /// The caller-supplied element name (e.g. `"R7"` or `"Lclk"`).
        name: String,
        /// The underlying construction error.
        source: Box<CircuitError>,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidValue { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            Self::UnknownNode { index } => {
                write!(f, "node {index} does not belong to this circuit")
            }
            Self::UnknownSource { index } => {
                write!(f, "source {index} does not belong to this circuit")
            }
            Self::UnknownInductor { index } => {
                write!(f, "inductor {index} does not belong to this circuit")
            }
            Self::EmptyCircuit => write!(f, "circuit contains no elements"),
            Self::SingularSystem { stage } => {
                write!(f, "circuit matrix is singular during {stage} (floating node or short loop)")
            }
            Self::InvalidAnalysis { reason } => write!(f, "invalid analysis options: {reason}"),
            Self::Measurement { reason } => write!(f, "measurement failed: {reason}"),
            Self::Element { name, source } => write!(f, "element \"{name}\": {source}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Element { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<FactorizeError> for CircuitError {
    fn from(_: FactorizeError) -> Self {
        Self::SingularSystem { stage: "matrix factorisation" }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CircuitError::InvalidValue { what: "resistance", value: -1.0 }
            .to_string()
            .contains("resistance"));
        assert!(CircuitError::UnknownNode { index: 7 }.to_string().contains('7'));
        assert!(CircuitError::UnknownSource { index: 2 }.to_string().contains('2'));
        assert!(CircuitError::UnknownInductor { index: 4 }.to_string().contains("inductor 4"));
        assert!(CircuitError::EmptyCircuit.to_string().contains("no elements"));
        assert!(CircuitError::SingularSystem { stage: "dc" }.to_string().contains("dc"));
        assert!(CircuitError::InvalidAnalysis { reason: "zero step" }
            .to_string()
            .contains("zero step"));
        assert!(CircuitError::Measurement { reason: "no crossing".into() }
            .to_string()
            .contains("no crossing"));
        // The named-element wrapper cites the element and keeps the cause.
        let wrapped = CircuitError::Element {
            name: "R7".into(),
            source: Box::new(CircuitError::InvalidValue { what: "resistance", value: -1.0 }),
        };
        assert_eq!(wrapped.to_string(), "element \"R7\": invalid resistance: -1");
        assert!(Error::source(&wrapped).is_some());
        assert!(Error::source(&CircuitError::EmptyCircuit).is_none());
    }

    #[test]
    fn conversion_from_factorize_error() {
        let e: CircuitError = FactorizeError::Singular { column: 3 }.into();
        assert!(matches!(e, CircuitError::SingularSystem { .. }));
    }
}
