//! Cross-request, pattern-keyed factorisation cache.
//!
//! Long-running services (the `rlckit-server` daemon) see request streams in
//! which most scenarios differ only in element *values* — wire resistance,
//! inductance, driver sizing — while the MNA sparsity pattern repeats
//! exactly. Factoring such a stream from scratch wastes the two reusable
//! artefacts the sparse kernel already produces:
//!
//! * the **symbolic analysis** ([`SparseSymbolic`]): AMD ordering plus fill
//!   pattern, a pure function of the pattern alone;
//! * a **numeric factor template** ([`SparseLuFactor`]): frozen pivot
//!   sequence that a value-only [`SparseLuFactor::refactor`] reuses at a
//!   fraction of the cost of a fresh left-looking factorisation.
//!
//! This module keeps a process-global registry of both, keyed by the stable
//! [`CscMatrix::pattern_key`] content hash and **verified** against the full
//! column-pointer/row-index arrays on every hit (a 64-bit hash collision
//! therefore degrades to a miss, never to a wrong answer). Three hit tiers:
//!
//! 1. **value hit** — pattern and [`CscMatrix::value_key`] both match the
//!    stored template: the cached factor is returned verbatim. The result is
//!    *bit-identical* to the factorisation that seeded the template.
//! 2. **refactor hit** — pattern matches, values differ: the template is
//!    cloned and value-only refactored against the new matrix. Pivots are
//!    frozen from the seeding factorisation, so the result agrees with a
//!    cold factorisation to working accuracy (the workspace's kernels assert
//!    `1e-12` relative closeness) but not necessarily to the last bit.
//! 3. **miss** — no entry (or refactor rejected a frozen pivot): a fresh
//!    factorisation runs against the shared (or newly analysed) symbolic
//!    object, and its factor seeds the template for subsequent requests.
//!
//! The cache is **disabled by default** — every existing analysis behaves
//! exactly as before — and switched on by an RAII [`PatternCacheGuard`], the
//! same scoped-activation shape as `rlckit_telemetry::Collector`. The
//! registry is bounded by an approximate byte budget with least-recently-used
//! eviction; hits, misses, refactors and evictions are tracked both in the
//! always-on [`Stats`] and as `circuit.pattern_*` telemetry counters when
//! profiling is active.
//!
//! Concurrency: the global lock is held only for registry lookups and
//! insertions, never across a factorisation or refactorisation, so worker
//! threads factoring different matrices do not serialise on the cache. When
//! several threads miss the same pattern at once, the first insertion wins
//! and later ones are dropped — the template is stable once seeded.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rlckit_numeric::lu::FactorizeError;
use rlckit_numeric::sparse::{csc_pattern_key, CscMatrix, SparseLuFactor, SparseSymbolic};

/// Default approximate byte budget for cached symbolic + factor storage.
pub const DEFAULT_BUDGET_BYTES: u64 = 256 * 1024 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Returns `true` when the pattern cache is active. One relaxed atomic load,
/// so the disabled hot path costs nothing measurable.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn registry() -> MutexGuard<'static, Option<Registry>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One cached pattern: the verified structure arrays, the shared symbolic
/// analysis, and (once a factorisation has completed) a numeric template.
struct Entry {
    dim: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    symbolic: Arc<SparseSymbolic>,
    /// `(value_key, factor)` of the factorisation that seeded the template.
    template: Option<(u64, SparseLuFactor<f64>)>,
    /// Monotonic recency stamp for LRU eviction.
    stamp: u64,
}

impl Entry {
    /// Approximate retained bytes: pattern arrays, symbolic fill estimate and
    /// the L/U factor storage (index + value per entry).
    fn approx_bytes(&self) -> u64 {
        let pattern = (self.col_ptr.len() + self.row_idx.len()) * 8;
        let factor =
            self.template.as_ref().map_or(0, |(_, f)| (f.l_nnz() + f.u_nnz()) * 16 + f.dim() * 24);
        let symbolic = self.dim * 16;
        (pattern + factor + symbolic) as u64
    }
}

/// Cumulative cache statistics, exposed independently of the telemetry layer
/// so a service can report them without profiling overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Lookups answered verbatim from a value-key match (bit-identical).
    pub value_hits: u64,
    /// Lookups answered by value-only refactorisation of a cached template.
    pub refactor_hits: u64,
    /// Lookups that ran a fresh factorisation (no entry, or no template).
    pub misses: u64,
    /// Refactor attempts that failed on a frozen pivot and fell back to a
    /// fresh factorisation (counted *in addition to* the resulting miss).
    pub fallbacks: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Symbolic analyses answered by a cached [`SparseSymbolic`].
    pub symbolic_hits: u64,
}

struct Registry {
    entries: HashMap<u64, Entry>,
    budget_bytes: u64,
    next_stamp: u64,
    stats: Stats,
}

impl Registry {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            budget_bytes: DEFAULT_BUDGET_BYTES,
            next_stamp: 0,
            stats: Stats::default(),
        }
    }

    fn touch(&mut self, key: u64) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.stamp = stamp;
        }
    }

    /// Looks up `key` and verifies the stored pattern arrays match; a hash
    /// collision is reported as absent.
    fn verified(&mut self, key: u64, dim: usize, col_ptr: &[usize], row_idx: &[usize]) -> bool {
        match self.entries.get(&key) {
            Some(e) => e.dim == dim && e.col_ptr == col_ptr && e.row_idx == row_idx,
            None => false,
        }
    }

    /// Evicts least-recently-used entries until the approximate total is
    /// within budget. Ties (impossible with monotonic stamps, but cheap to
    /// make deterministic) break on the smaller key.
    fn evict_to_budget(&mut self) {
        loop {
            let total: u64 = self.entries.values().map(Entry::approx_bytes).sum();
            if total <= self.budget_bytes || self.entries.len() <= 1 {
                return;
            }
            let victim = self.entries.iter().min_by_key(|(k, e)| (e.stamp, **k)).map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.stats.evictions += 1;
                    rlckit_telemetry::counter_add("circuit.pattern_evictions", 1);
                }
                None => return,
            }
        }
    }
}

/// RAII guard activating the process-global pattern cache for its lifetime.
///
/// Dropping the guard restores the previous activation state (guards nest)
/// but keeps the registry contents, so a re-enabled cache is warm. Use
/// [`clear`] to drop the cached factors as well.
#[derive(Debug)]
pub struct PatternCacheGuard {
    previous: bool,
}

impl PatternCacheGuard {
    /// Switches the cache on, returning a guard restoring the prior state.
    #[must_use]
    pub fn enable() -> Self {
        let previous = ENABLED.swap(true, Ordering::Relaxed);
        Self { previous }
    }

    /// Switches the cache off, returning a guard restoring the prior state.
    #[must_use]
    pub fn disable() -> Self {
        let previous = ENABLED.swap(false, Ordering::Relaxed);
        Self { previous }
    }
}

impl Drop for PatternCacheGuard {
    fn drop(&mut self) {
        ENABLED.store(self.previous, Ordering::Relaxed);
    }
}

/// Drops every cached symbolic object and factor template and resets the
/// recency clock. Statistics are preserved (see [`reset_stats`]).
pub fn clear() {
    if let Some(reg) = registry().as_mut() {
        reg.entries.clear();
        reg.next_stamp = 0;
    }
}

/// Zeroes the cumulative [`Stats`] counters.
pub fn reset_stats() {
    if let Some(reg) = registry().as_mut() {
        reg.stats = Stats::default();
    }
}

/// A copy of the cumulative cache statistics.
pub fn stats() -> Stats {
    registry().as_ref().map(|r| r.stats).unwrap_or_default()
}

/// Number of distinct patterns currently cached.
pub fn len() -> usize {
    registry().as_ref().map_or(0, |r| r.entries.len())
}

/// Sets the approximate byte budget (default [`DEFAULT_BUDGET_BYTES`]) and
/// immediately evicts down to it.
pub fn set_budget_bytes(budget: u64) {
    let mut guard = registry();
    let reg = guard.get_or_insert_with(Registry::new);
    reg.budget_bytes = budget;
    reg.evict_to_budget();
}

/// Returns the shared symbolic analysis for the pattern `(dim, col_ptr,
/// row_idx)`, running `analyze` and caching the result on first sight.
///
/// Callers holding a raw assembly scatter map (the MNA layer) use this to
/// share one AMD ordering across every system with the same pattern. When
/// the cache is disabled this simply wraps `analyze()` in an [`Arc`].
pub fn shared_symbolic(
    dim: usize,
    col_ptr: &[usize],
    row_idx: &[usize],
    analyze: impl FnOnce() -> SparseSymbolic,
) -> Arc<SparseSymbolic> {
    if !enabled() {
        return Arc::new(analyze());
    }
    let key = csc_pattern_key(dim, col_ptr, row_idx);
    {
        let mut guard = registry();
        let reg = guard.get_or_insert_with(Registry::new);
        if reg.verified(key, dim, col_ptr, row_idx) {
            reg.touch(key);
            reg.stats.symbolic_hits += 1;
            rlckit_telemetry::counter_add("circuit.pattern_symbolic_hits", 1);
            let entry = reg.entries.get(&key).expect("verified entry present");
            return Arc::clone(&entry.symbolic);
        }
    }
    // Analyse outside the lock: symbolic analysis is a deterministic pure
    // function of the pattern, so concurrent duplicates are equal and the
    // first insertion winning keeps every consumer coherent.
    let symbolic = Arc::new(analyze());
    let mut guard = registry();
    let reg = guard.get_or_insert_with(Registry::new);
    if reg.verified(key, dim, col_ptr, row_idx) {
        reg.touch(key);
        let entry = reg.entries.get(&key).expect("verified entry present");
        return Arc::clone(&entry.symbolic);
    }
    let stamp = reg.next_stamp;
    reg.next_stamp += 1;
    reg.entries.insert(
        key,
        Entry {
            dim,
            col_ptr: col_ptr.to_vec(),
            row_idx: row_idx.to_vec(),
            symbolic: Arc::clone(&symbolic),
            template: None,
            stamp,
        },
    );
    reg.evict_to_budget();
    symbolic
}

/// What the registry probe decided before any numeric work runs.
enum Probe {
    /// Pattern and value keys both matched: the stored factor verbatim.
    ValueHit(SparseLuFactor<f64>),
    /// Pattern matched with different values: a template clone to refactor.
    Refactor(SparseLuFactor<f64>),
    /// No usable template; factor fresh (against the cached symbolic when
    /// the pattern itself was known).
    Miss,
}

/// Factorises `a` through the cache: verbatim on a value hit, value-only
/// refactorisation on a pattern hit, fresh factorisation (seeding the
/// template) on a miss. `symbolic` is the caller's already-shared analysis
/// for `a`'s pattern — the miss path uses it directly, so no duplicate
/// analysis happens even on a cold cache.
///
/// # Errors
///
/// Propagates [`FactorizeError`] from the fresh factorisation. A refactor
/// rejected by a frozen pivot is **not** an error: it falls back to the
/// fresh path (counted in [`Stats::fallbacks`]).
pub fn factor_real(
    a: &CscMatrix<f64>,
    symbolic: &SparseSymbolic,
) -> Result<SparseLuFactor<f64>, FactorizeError> {
    if !enabled() {
        return SparseLuFactor::factor(a, symbolic);
    }
    let key = a.pattern_key();
    let value_key = a.value_key();
    let probe = {
        let mut guard = registry();
        let reg = guard.get_or_insert_with(Registry::new);
        if reg.verified(key, a.dim(), a.col_ptr_slice(), a.row_idx_slice()) {
            reg.touch(key);
            let entry = reg.entries.get(&key).expect("verified entry present");
            match &entry.template {
                Some((vk, factor)) if *vk == value_key => {
                    reg.stats.value_hits += 1;
                    rlckit_telemetry::counter_add("circuit.pattern_value_hits", 1);
                    Probe::ValueHit(factor.clone())
                }
                Some((_, factor)) => Probe::Refactor(factor.clone()),
                None => Probe::Miss,
            }
        } else {
            Probe::Miss
        }
    };
    match probe {
        Probe::ValueHit(factor) => Ok(factor),
        Probe::Refactor(mut factor) => match factor.refactor(a) {
            Ok(()) => {
                let mut guard = registry();
                let reg = guard.get_or_insert_with(Registry::new);
                reg.stats.refactor_hits += 1;
                rlckit_telemetry::counter_add("circuit.pattern_refactor_hits", 1);
                Ok(factor)
            }
            Err(_) => {
                {
                    let mut guard = registry();
                    let reg = guard.get_or_insert_with(Registry::new);
                    reg.stats.fallbacks += 1;
                    rlckit_telemetry::counter_add("circuit.pattern_fallbacks", 1);
                }
                factor_fresh(a, symbolic, key, value_key)
            }
        },
        Probe::Miss => factor_fresh(a, symbolic, key, value_key),
    }
}

/// The miss path: factor outside the lock, then seed the entry's template if
/// nobody beat us to it (first writer wins, so the template — and therefore
/// the value-hit guarantee — is stable once set).
fn factor_fresh(
    a: &CscMatrix<f64>,
    symbolic: &SparseSymbolic,
    key: u64,
    value_key: u64,
) -> Result<SparseLuFactor<f64>, FactorizeError> {
    let factor = SparseLuFactor::factor(a, symbolic)?;
    let mut guard = registry();
    let reg = guard.get_or_insert_with(Registry::new);
    reg.stats.misses += 1;
    rlckit_telemetry::counter_add("circuit.pattern_misses", 1);
    if reg.verified(key, a.dim(), a.col_ptr_slice(), a.row_idx_slice()) {
        reg.touch(key);
        let entry = reg.entries.get_mut(&key).expect("verified entry present");
        if entry.template.is_none() {
            entry.template = Some((value_key, factor.clone()));
        }
    } else {
        let stamp = reg.next_stamp;
        reg.next_stamp += 1;
        reg.entries.insert(
            key,
            Entry {
                dim: a.dim(),
                col_ptr: a.col_ptr_slice().to_vec(),
                row_idx: a.row_idx_slice().to_vec(),
                symbolic: Arc::new(symbolic.clone()),
                template: Some((value_key, factor.clone())),
                stamp,
            },
        );
    }
    reg.evict_to_budget();
    Ok(factor)
}

/// Serialisation helper for tests that toggle the process-global cache,
/// mirroring `rlckit_telemetry::test_support`: activation and registry are
/// shared process state, so such tests must not interleave — neither with
/// each other nor with tolerance-sensitive solver tests running in the same
/// binary.
pub mod test_support {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Acquires the process-wide pattern-cache test lock (poisoning ignored
    /// so one panicked test cannot cascade).
    pub fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::MnaSystem;
    use crate::netlist::Circuit;
    use crate::solve::factor_real as solve_factor_real;
    use crate::source::SourceWaveform;
    use rlckit_numeric::solver::SolverBackend;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    /// An RLC ladder: a fixed topology whose MNA pattern is independent of
    /// the per-section resistance, so different `r_per` values share a key.
    fn ladder(r_per: f64) -> MnaSystem {
        let mut c = Circuit::new();
        let gnd = c.ground();
        let input = c.add_node();
        c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        let mut prev = input;
        for _ in 0..40 {
            let mid = c.add_node();
            let next = c.add_node();
            c.add_resistor(prev, mid, Resistance::from_ohms(r_per)).unwrap();
            c.add_inductor(mid, next, Inductance::from_picohenries(12.0)).unwrap();
            c.add_capacitor(next, gnd, Capacitance::from_femtofarads(9.0)).unwrap();
            prev = next;
        }
        MnaSystem::build(&c).unwrap()
    }

    #[test]
    fn disabled_cache_records_nothing() {
        let _serial = test_support::lock();
        let _off = PatternCacheGuard::disable();
        clear();
        reset_stats();
        let mna = ladder(25.0);
        let a = mna.assemble_csc_real(1.0, 0.0);
        let f = factor_real(&a, mna.sparse_symbolic()).expect("factors");
        assert_eq!(f.dim(), a.dim());
        assert_eq!(len(), 0);
        assert_eq!(stats(), Stats::default());
    }

    #[test]
    fn value_hits_are_bit_identical_and_refactor_hits_are_close() {
        let _serial = test_support::lock();
        let _on = PatternCacheGuard::enable();
        clear();
        reset_stats();

        let mna = ladder(25.0);
        let a = mna.assemble_csc_real(1.0, 0.0);
        let sym = mna.sparse_symbolic();

        let cold = factor_real(&a, sym).expect("cold factor");
        assert_eq!(stats().misses, 1);
        assert_eq!(len(), 1);

        // Same pattern, same values: the template verbatim, bit-identical.
        let again = factor_real(&a, sym).expect("value hit");
        assert_eq!(stats().value_hits, 1);
        let b = vec![1.0; a.dim()];
        let x_cold = cold.solve(&b);
        let x_again = again.solve(&b);
        for (c, w) in x_cold.iter().zip(&x_again) {
            assert_eq!(c.to_bits(), w.to_bits(), "value hit must be bit-identical");
        }

        // Same pattern, different values: refactor hit, close to a cold
        // factorisation of the same matrix.
        let mna2 = ladder(40.0);
        let a2 = mna2.assemble_csc_real(1.0, 0.0);
        assert_eq!(a2.pattern_key(), a.pattern_key(), "ladders share a pattern");
        let warm = factor_real(&a2, mna2.sparse_symbolic()).expect("refactor hit");
        assert_eq!(stats().refactor_hits, 1);
        let fresh = SparseLuFactor::factor(&a2, mna2.sparse_symbolic()).expect("fresh");
        let x_warm = warm.solve(&b);
        let x_fresh = fresh.solve(&b);
        for (w, f) in x_warm.iter().zip(&x_fresh) {
            let scale = f.abs().max(1.0);
            assert!(
                (w - f).abs() <= 1e-12 * scale,
                "refactor hit must agree with a cold factorisation: {w} vs {f}"
            );
        }
    }

    #[test]
    fn symbolic_analysis_is_shared_across_matching_patterns() {
        let _serial = test_support::lock();
        let _on = PatternCacheGuard::enable();
        clear();
        reset_stats();

        let first = ladder(25.0);
        let second = ladder(75.0);
        let s1 = first.sparse_symbolic();
        let s2 = second.sparse_symbolic();
        assert_eq!(s1, s2, "same pattern must share one analysis");
        assert!(stats().symbolic_hits >= 1);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_pattern() {
        let _serial = test_support::lock();
        let _on = PatternCacheGuard::enable();
        clear();
        reset_stats();
        // Budget small enough that two ladder factors cannot coexist.
        set_budget_bytes(1);

        let mna = ladder(25.0);
        let a = mna.assemble_csc_real(1.0, 0.0);
        factor_real(&a, mna.sparse_symbolic()).expect("first pattern");
        assert_eq!(len(), 1, "a single entry is always retained");

        // A second, different pattern forces the first out.
        let mna_c = {
            let mut c = Circuit::new();
            let gnd = c.ground();
            let input = c.add_node();
            c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
            let mut prev = input;
            for _ in 0..50 {
                let next = c.add_node();
                c.add_resistor(prev, next, Resistance::from_ohms(10.0)).unwrap();
                c.add_capacitor(next, gnd, Capacitance::from_femtofarads(5.0)).unwrap();
                prev = next;
            }
            MnaSystem::build(&c).unwrap()
        };
        let a_c = mna_c.assemble_csc_real(1.0, 0.0);
        assert_ne!(a_c.pattern_key(), a.pattern_key());
        factor_real(&a_c, mna_c.sparse_symbolic()).expect("second pattern");
        assert_eq!(len(), 1, "budget of one byte keeps only the newest entry");
        assert!(stats().evictions >= 1);
        set_budget_bytes(DEFAULT_BUDGET_BYTES);
        clear();
    }

    #[test]
    fn solve_path_routes_through_the_cache_when_enabled() {
        let _serial = test_support::lock();
        let _on = PatternCacheGuard::enable();
        clear();
        reset_stats();

        let mna = ladder(25.0);
        let first = solve_factor_real(&mna, 1.0, 0.0, SolverBackend::Sparse, "test")
            .expect("first factorisation");
        let second = solve_factor_real(&mna, 1.0, 0.0, SolverBackend::Sparse, "test")
            .expect("second factorisation");
        assert!(stats().misses >= 1);
        assert!(stats().value_hits >= 1, "identical system must value-hit");
        let b = vec![1.0; mna.dim()];
        let x1 = first.solve(&b);
        let x2 = second.solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        clear();
    }
}
