//! A linear circuit simulator used as the dynamic-simulation referee for the
//! `rlckit` workspace.
//!
//! The DAC 1999 paper validates its closed-form delay model against AS/X,
//! IBM's proprietary dynamic circuit simulator. This crate plays that role:
//! it builds linear circuits (resistors, capacitors, inductors, independent
//! sources), assembles the modified nodal analysis (MNA) equations, and runs
//! DC, AC and transient analyses.
//!
//! Because every element is linear and the timestep is fixed, the transient
//! solver factorises the system matrix once and reuses the factors at every
//! step, so even finely segmented transmission-line ladders simulate quickly.
//!
//! # Modules
//!
//! * [`netlist`] — circuit construction ([`Circuit`], [`NodeId`], elements);
//! * [`source`] — independent source waveforms (step, ramp, pulse, PWL);
//! * [`mna`] — structure-preserving assembly of the `G·x + C·dx/dt = b(t)`
//!   system, with bandwidth detection under a reverse Cuthill–McKee ordering;
//! * [`solve`] — the circuit-side face of the pluggable dense/banded
//!   [`SolverBackend`];
//! * [`state_space`] — the descriptor state-space view `(G, C, B, Lᵀ)` of an
//!   assembled circuit, consumed by the Krylov model-order reducer;
//! * [`dc`] — DC operating point;
//! * [`transient`] — fixed-step transient analysis (backward Euler or
//!   trapezoidal);
//! * [`ac`] — complex-frequency transfer functions;
//! * [`waveform`] — sampled waveforms and delay/overshoot measurements;
//! * [`ladder`] — convenience builder for gate-driven RLC transmission-line
//!   ladders (the circuit of Fig. 1 in the paper);
//! * [`tree`] — gate-driven branching RLC nets ([`tree::TreeSpec`]) with
//!   per-sink delay/overshoot extraction, the workload of the sparse solver
//!   backend;
//! * [`mesh`] — gate-driven regular RC(L) grids ([`mesh::MeshSpec`]), the
//!   power-grid/clock-mesh workload that forces genuine fill and scales the
//!   sparse kernel to 10⁵⁺ unknowns;
//! * [`pattern_cache`] — opt-in process-global cache sharing symbolic
//!   analyses and frozen-pivot factor templates across systems whose MNA
//!   sparsity pattern matches (the cross-request fast path of the
//!   `rlckit-server` daemon).
//!
//! # Example: 50% delay of a driven RLC line
//!
//! ```
//! use rlckit_circuit::ladder::{LadderSpec, SegmentStyle};
//! use rlckit_circuit::transient::{run_transient, Integration, TransientOptions};
//! use rlckit_circuit::SolverBackend;
//! use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};
//!
//! # fn main() -> Result<(), rlckit_circuit::CircuitError> {
//! let spec = LadderSpec {
//!     total_resistance: Resistance::from_ohms(500.0),
//!     total_inductance: Inductance::from_nanohenries(10.0),
//!     total_capacitance: Capacitance::from_picofarads(1.0),
//!     segments: 40,
//!     style: SegmentStyle::Pi,
//!     driver_resistance: Resistance::from_ohms(250.0),
//!     load_capacitance: Capacitance::from_picofarads(0.1),
//!     supply: Voltage::from_volts(1.0),
//! };
//! let line = spec.build()?;
//! let options = TransientOptions {
//!     stop_time: Time::from_nanoseconds(2.0),
//!     step: Time::from_picoseconds(1.0),
//!     method: Integration::Trapezoidal,
//!     backend: SolverBackend::Auto,
//! };
//! let result = run_transient(&line.circuit, &options)?;
//! let vout = result.node_voltage(line.output);
//! let delay = vout.first_crossing(0.5)?;
//! assert!(delay.seconds() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac;
pub mod dc;
pub mod error;
pub mod ladder;
pub mod mesh;
pub mod mna;
pub mod netlist;
pub mod pattern_cache;
pub mod solve;
pub mod source;
pub mod state_space;
pub mod transient;
pub mod tree;
pub mod waveform;

pub use error::CircuitError;
pub use netlist::{Circuit, InductorId, NodeId, SourceId};
pub use rlckit_numeric::solver::{ResolvedBackend, SolverBackend};
pub use source::SourceWaveform;
pub use state_space::DescriptorStateSpace;
pub use waveform::Waveform;
