//! The descriptor state-space view `(G, C, B, Lᵀ)` of an assembled circuit.
//!
//! Every linear circuit in this crate is the differential-algebraic system
//! `G·x + C·dx/dt = B·u(t)` with outputs `y = Lᵀ·x`. Transient analysis
//! time-steps it; model-order reduction (the `rlckit-reduce` crate) instead
//! projects it onto a small Krylov subspace and never time-steps at all.
//! [`DescriptorStateSpace`] is the seam between the two worlds: it bundles an
//! [`MnaSystem`] with the input columns `B` (unit excitations of chosen
//! sources) and output selectors `L` (chosen node voltages), and exposes
//! exactly the operations a Krylov reducer needs —
//!
//! * a one-off factorisation of `G` through the pluggable dense/banded
//!   [`SolverBackend`] ([`DescriptorStateSpace::factor_g`]), and
//! * `O(nnz)` stamp-level products with `C` and `G`
//!   ([`DescriptorStateSpace::apply_c`] / [`DescriptorStateSpace::apply_g`]),
//!
//! so a reduction of a 1000-section ladder never materialises a dense matrix.

use rlckit_numeric::solver::SolverBackend;

use crate::error::CircuitError;
use crate::mna::MnaSystem;
use crate::netlist::{Circuit, NodeId, SourceId};
use crate::solve::{factor_real, FactoredMna};

/// A circuit's `G·x + C·dx/dt = B·u, y = Lᵀ·x` descriptor system with chosen
/// inputs (sources) and outputs (node voltages).
#[derive(Debug, Clone)]
pub struct DescriptorStateSpace {
    mna: MnaSystem,
    /// One unit-excitation column per input, logical order.
    inputs: Vec<Vec<f64>>,
    /// One selector column per output, logical order.
    outputs: Vec<Vec<f64>>,
}

impl DescriptorStateSpace {
    /// Extracts the state space of `circuit` with the given input sources and
    /// output nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidAnalysis`] if `inputs` or `outputs` is
    /// empty or an output is the ground node, [`CircuitError::UnknownSource`]
    /// / [`CircuitError::UnknownNode`] for identifiers that do not belong to
    /// the circuit, and propagates MNA assembly errors.
    pub fn new(
        circuit: &Circuit,
        inputs: &[SourceId],
        outputs: &[NodeId],
    ) -> Result<Self, CircuitError> {
        let mna = MnaSystem::build(circuit)?;
        if inputs.is_empty() {
            return Err(CircuitError::InvalidAnalysis {
                reason: "state space needs at least one input source",
            });
        }
        if outputs.is_empty() {
            return Err(CircuitError::InvalidAnalysis {
                reason: "state space needs at least one output node",
            });
        }
        let mut b_columns = Vec::with_capacity(inputs.len());
        for &source in inputs {
            b_columns.push(mna.unit_excitation_real(source)?);
        }
        let mut l_columns = Vec::with_capacity(outputs.len());
        for &node in outputs {
            if node.is_ground() {
                return Err(CircuitError::InvalidAnalysis {
                    reason: "state-space output must not be the ground node",
                });
            }
            if node.index() >= circuit.node_count() {
                return Err(CircuitError::UnknownNode { index: node.index() });
            }
            let row = mna.row_of_node(node).expect("non-ground node has a row");
            let mut l = vec![0.0; mna.dim()];
            l[row] = 1.0;
            l_columns.push(l);
        }
        Ok(Self { mna, inputs: b_columns, outputs: l_columns })
    }

    /// Dimension of the full unknown vector.
    pub fn dim(&self) -> usize {
        self.mna.dim()
    }

    /// Number of input columns in `B`.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output columns in `L`.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The underlying MNA system.
    pub fn mna(&self) -> &MnaSystem {
        &self.mna
    }

    /// The `j`-th column of `B` in logical order.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.input_count()`.
    pub fn input_column(&self, j: usize) -> &[f64] {
        &self.inputs[j]
    }

    /// The `i`-th column of `L` in logical order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.output_count()`.
    pub fn output_column(&self, i: usize) -> &[f64] {
        &self.outputs[i]
    }

    /// Factorises `G` with the requested backend (banded for ladder-shaped
    /// circuits under [`SolverBackend::Auto`]), for the repeated
    /// `G⁻¹·(C·v)` solves of a Krylov iteration.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularSystem`] if `G` cannot be factorised.
    pub fn factor_g(&self, backend: SolverBackend) -> Result<FactoredMna<f64>, CircuitError> {
        factor_real(&self.mna, 1.0, 0.0, backend, "state-space G factorisation")
    }

    /// Stamp-level product `C·x` in logical order.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply_c(&self, x: &[f64]) -> Vec<f64> {
        self.mna.apply_c(x)
    }

    /// Stamp-level product `G·x` in logical order.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply_g(&self, x: &[f64]) -> Vec<f64> {
        self.mna.apply_g(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    fn rlc_chain(segments: usize) -> (Circuit, SourceId, NodeId) {
        let mut c = Circuit::new();
        let gnd = c.ground();
        let input = c.add_node();
        let src = c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        let mut prev = input;
        for _ in 0..segments {
            let mid = c.add_node();
            let next = c.add_node();
            c.add_resistor(prev, mid, Resistance::from_ohms(10.0)).unwrap();
            c.add_inductor(mid, next, Inductance::from_picohenries(50.0)).unwrap();
            c.add_capacitor(next, gnd, Capacitance::from_femtofarads(20.0)).unwrap();
            prev = next;
        }
        (c, src, prev)
    }

    #[test]
    fn extraction_shapes_and_columns() {
        let (c, src, out) = rlc_chain(5);
        let ss = DescriptorStateSpace::new(&c, &[src], &[out]).unwrap();
        assert_eq!(ss.input_count(), 1);
        assert_eq!(ss.output_count(), 1);
        assert_eq!(ss.dim(), ss.mna().dim());
        // B selects the source branch row: a single 1 somewhere.
        let b = ss.input_column(0);
        assert_eq!(b.iter().filter(|v| **v != 0.0).count(), 1);
        assert_eq!(b.iter().sum::<f64>(), 1.0);
        // L selects the output node row.
        let l = ss.output_column(0);
        let row = ss.mna().row_of_node(out).unwrap();
        assert_eq!(l[row], 1.0);
        assert_eq!(l.iter().filter(|v| **v != 0.0).count(), 1);
    }

    #[test]
    fn invalid_selections_are_typed_errors() {
        let (c, src, out) = rlc_chain(2);
        assert!(matches!(
            DescriptorStateSpace::new(&c, &[], &[out]),
            Err(CircuitError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            DescriptorStateSpace::new(&c, &[src], &[]),
            Err(CircuitError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            DescriptorStateSpace::new(&c, &[src], &[c.ground()]),
            Err(CircuitError::InvalidAnalysis { .. })
        ));
        assert!(matches!(
            DescriptorStateSpace::new(&c, &[SourceId(7)], &[out]),
            Err(CircuitError::UnknownSource { index: 7 })
        ));
        assert!(matches!(
            DescriptorStateSpace::new(&c, &[src], &[NodeId(999)]),
            Err(CircuitError::UnknownNode { index: 999 })
        ));
    }

    #[test]
    fn dc_gain_through_the_state_space_is_one() {
        // Lᵀ G⁻¹ B of the step-driven chain: the line is a DC short to the
        // output once charged, so the DC transfer must be 1 (up to GMIN).
        let (c, src, out) = rlc_chain(8);
        let ss = DescriptorStateSpace::new(&c, &[src], &[out]).unwrap();
        for backend in [SolverBackend::Dense, SolverBackend::Banded] {
            let factor = ss.factor_g(backend).unwrap();
            let x = factor.solve(ss.input_column(0));
            let gain: f64 = ss.output_column(0).iter().zip(x.iter()).map(|(l, xi)| l * xi).sum();
            assert!((gain - 1.0).abs() < 1e-6, "{backend:?} DC gain {gain}");
        }
    }

    #[test]
    fn apply_c_matches_the_dense_storage_matrix() {
        let (c, src, out) = rlc_chain(4);
        let ss = DescriptorStateSpace::new(&c, &[src], &[out]).unwrap();
        let x: Vec<f64> = (0..ss.dim()).map(|i| (i as f64).sin()).collect();
        let stamped = ss.apply_c(&x);
        let dense = ss.mna().dense_c().mul_vec(&x);
        for (s, d) in stamped.iter().zip(dense.iter()) {
            assert!((s - d).abs() < 1e-24 + 1e-12 * d.abs());
        }
        let stamped = ss.apply_g(&x);
        let dense = ss.mna().dense_g().mul_vec(&x);
        for (s, d) in stamped.iter().zip(dense.iter()) {
            assert!((s - d).abs() < 1e-12 * d.abs().max(1.0));
        }
    }
}
