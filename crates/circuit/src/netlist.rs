//! Circuit construction: nodes, elements and independent sources.
//!
//! A [`Circuit`] is a flat netlist of linear two-terminal elements. Nodes are
//! created with [`Circuit::add_node`]; the ground node always exists and is
//! returned by [`Circuit::ground`]. Element values are validated at insertion
//! so analyses can assume well-formed data.

use std::collections::HashMap;

use rlckit_units::{Capacitance, Inductance, Resistance};

use crate::error::CircuitError;
use crate::source::SourceWaveform;

/// Identifier of a circuit node.
///
/// Index 0 is always the ground/reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of an independent source within a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub(crate) usize);

impl SourceId {
    /// Raw index of the source in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an inductor within a circuit, used to attach mutual coupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InductorId(pub(crate) usize);

impl InductorId {
    /// Raw index of the inductor in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A resistor between two nodes.
    Resistor {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Resistance value.
        value: Resistance,
    },
    /// A capacitor between two nodes.
    Capacitor {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Capacitance value.
        value: Capacitance,
    },
    /// An inductor between two nodes. Its branch current becomes an MNA unknown.
    Inductor {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Inductance value.
        value: Inductance,
    },
    /// Mutual inductive coupling between two previously added inductors
    /// (a SPICE `K` element). Adds no unknowns of its own: it stamps the
    /// mutual inductance `M = k·sqrt(L1·L2)` between the two inductor branch
    /// rows.
    MutualInductor {
        /// The first coupled inductor.
        first: InductorId,
        /// The second coupled inductor.
        second: InductorId,
        /// Coupling coefficient `k ∈ (-1, 1)`, `k ≠ 0`. A positive `k` means
        /// the two `plus` terminals are the dotted terminals (fields aiding
        /// when both branch currents flow `plus` → `minus`).
        coupling: f64,
    },
    /// An independent voltage source. Its branch current becomes an MNA unknown.
    VoltageSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source identifier (for AC excitation selection).
        source: SourceId,
        /// Time-domain waveform.
        waveform: SourceWaveform,
    },
    /// An independent current source flowing from `plus` through the source to `minus`.
    CurrentSource {
        /// Terminal the current leaves the source from (conventional current
        /// is injected *into* this node).
        plus: NodeId,
        /// Terminal the current returns to the source at.
        minus: NodeId,
        /// Source identifier.
        source: SourceId,
        /// Time-domain waveform, interpreted in amperes (the `Voltage` payload
        /// of the waveform is reused as a numeric level).
        waveform: SourceWaveform,
    },
}

/// A flat netlist of linear elements.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    num_nodes: usize,
    elements: Vec<Element>,
    num_sources: usize,
    num_inductors: usize,
    /// Running sum of the coupling coefficients stamped between each inductor
    /// pair (keyed by ordered indices), so the cumulative |k| stays below 1.
    mutual_coupling: HashMap<(usize, usize), f64>,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self {
            num_nodes: 1,
            elements: Vec::new(),
            num_sources: 0,
            num_inductors: 0,
            mutual_coupling: HashMap::new(),
        }
    }

    /// The ground (reference) node.
    pub fn ground(&self) -> NodeId {
        NodeId::GROUND
    }

    /// Creates a new node and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.num_nodes
    }

    /// Number of independent sources.
    pub fn source_count(&self) -> usize {
        self.num_sources
    }

    /// Number of inductors.
    pub fn inductor_count(&self) -> usize {
        self.num_inductors
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Returns `true` if the circuit has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    fn check_node(&self, node: NodeId) -> Result<(), CircuitError> {
        if node.0 < self.num_nodes {
            Ok(())
        } else {
            Err(CircuitError::UnknownNode { index: node.0 })
        }
    }

    fn check_inductor(&self, inductor: InductorId) -> Result<(), CircuitError> {
        if inductor.0 < self.num_inductors {
            Ok(())
        } else {
            Err(CircuitError::UnknownInductor { index: inductor.0 })
        }
    }

    fn check_positive(value: f64, what: &'static str) -> Result<(), CircuitError> {
        if value.is_finite() && value > 0.0 {
            Ok(())
        } else {
            Err(CircuitError::InvalidValue { what, value })
        }
    }

    /// Adds a resistor between `plus` and `minus`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] if the resistance is not finite
    /// and strictly positive, or [`CircuitError::UnknownNode`] for foreign nodes.
    pub fn add_resistor(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        value: Resistance,
    ) -> Result<(), CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        Self::check_positive(value.ohms(), "resistance")?;
        self.elements.push(Element::Resistor { plus, minus, value });
        Ok(())
    }

    /// Adds a capacitor between `plus` and `minus`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] if the capacitance is not finite
    /// and strictly positive, or [`CircuitError::UnknownNode`] for foreign nodes.
    pub fn add_capacitor(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        value: Capacitance,
    ) -> Result<(), CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        Self::check_positive(value.farads(), "capacitance")?;
        self.elements.push(Element::Capacitor { plus, minus, value });
        Ok(())
    }

    /// Adds an inductor between `plus` and `minus`.
    ///
    /// Returns the [`InductorId`] used to couple this inductor to others with
    /// [`Circuit::add_mutual_inductor`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] if the inductance is not finite
    /// and strictly positive, or [`CircuitError::UnknownNode`] for foreign nodes.
    pub fn add_inductor(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        value: Inductance,
    ) -> Result<InductorId, CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        Self::check_positive(value.henries(), "inductance")?;
        let id = InductorId(self.num_inductors);
        self.num_inductors += 1;
        self.elements.push(Element::Inductor { plus, minus, value });
        Ok(id)
    }

    /// Adds mutual inductive coupling `k` between two previously added
    /// inductors (a SPICE `K` element). The mutual inductance stamped into
    /// the MNA system is `M = k·sqrt(L1·L2)`; a positive `k` makes the two
    /// `plus` terminals the dotted pair.
    ///
    /// The `|k| < 1` bound (enforced per pair, cumulatively over repeated `K`
    /// elements) is necessary but — for three or more mutually coupled
    /// inductors — not sufficient for a physical system: the full inductance
    /// matrix must be positive definite, which is the caller's
    /// responsibility (`rlckit-coupling` validates it at the bus level).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] if `k` is not finite, is zero,
    /// does not satisfy `|k| < 1` (cumulatively, when several `K` elements
    /// couple the same pair), or couples an inductor to itself, and
    /// [`CircuitError::UnknownInductor`] if either identifier does not belong
    /// to this circuit.
    pub fn add_mutual_inductor(
        &mut self,
        first: InductorId,
        second: InductorId,
        coupling: f64,
    ) -> Result<(), CircuitError> {
        self.check_inductor(first)?;
        self.check_inductor(second)?;
        if !coupling.is_finite() || coupling == 0.0 || coupling.abs() >= 1.0 {
            return Err(CircuitError::InvalidValue {
                what: "coupling coefficient",
                value: coupling,
            });
        }
        if first == second {
            return Err(CircuitError::InvalidValue {
                what: "mutual coupling pair (an inductor cannot couple to itself)",
                value: first.index() as f64,
            });
        }
        // Several K elements on one pair stamp additively, so the physical
        // |k| < 1 bound must hold for their sum too.
        let key = (first.index().min(second.index()), first.index().max(second.index()));
        let total = self.mutual_coupling.get(&key).copied().unwrap_or(0.0) + coupling;
        if total.abs() >= 1.0 {
            return Err(CircuitError::InvalidValue {
                what: "cumulative coupling coefficient of an inductor pair",
                value: total,
            });
        }
        self.mutual_coupling.insert(key, total);
        self.elements.push(Element::MutualInductor { first, second, coupling });
        Ok(())
    }

    /// Adds an independent voltage source with the given waveform.
    ///
    /// Returns the [`SourceId`] used to select this source as the excitation
    /// in AC analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for foreign nodes and
    /// [`CircuitError::InvalidValue`] for a waveform with non-finite levels
    /// or times (see [`SourceWaveform::validate`]).
    pub fn add_voltage_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> Result<SourceId, CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        waveform.validate()?;
        let source = SourceId(self.num_sources);
        self.num_sources += 1;
        self.elements.push(Element::VoltageSource { plus, minus, source, waveform });
        Ok(source)
    }

    /// Adds an independent current source with the given waveform
    /// (amplitudes interpreted in amperes).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for foreign nodes and
    /// [`CircuitError::InvalidValue`] for a waveform with non-finite levels
    /// or times (see [`SourceWaveform::validate`]).
    pub fn add_current_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> Result<SourceId, CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        waveform.validate()?;
        let source = SourceId(self.num_sources);
        self.num_sources += 1;
        self.elements.push(Element::CurrentSource { plus, minus, source, waveform });
        Ok(source)
    }

    /// Validates that a node belongs to this circuit, for use by analyses.
    pub(crate) fn validate_node(&self, node: NodeId) -> Result<(), CircuitError> {
        self.check_node(node)
    }

    /// Wraps a construction error with the caller-supplied element name, so
    /// diagnostics can cite the offending card (`element "R7": …`) instead of
    /// a bare node index or value.
    fn named<T>(name: &str, result: Result<T, CircuitError>) -> Result<T, CircuitError> {
        result.map_err(|source| CircuitError::Element {
            name: name.to_owned(),
            source: Box::new(source),
        })
    }

    /// [`Circuit::add_resistor`], carrying `name` through any error as
    /// [`CircuitError::Element`]. Used by netlist frontends so a rejected
    /// value cites the deck card that supplied it.
    ///
    /// # Errors
    ///
    /// As [`Circuit::add_resistor`], wrapped in [`CircuitError::Element`].
    pub fn add_resistor_named(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        value: Resistance,
    ) -> Result<(), CircuitError> {
        Self::named(name, self.add_resistor(plus, minus, value))
    }

    /// [`Circuit::add_capacitor`], carrying `name` through any error as
    /// [`CircuitError::Element`].
    ///
    /// # Errors
    ///
    /// As [`Circuit::add_capacitor`], wrapped in [`CircuitError::Element`].
    pub fn add_capacitor_named(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        value: Capacitance,
    ) -> Result<(), CircuitError> {
        Self::named(name, self.add_capacitor(plus, minus, value))
    }

    /// [`Circuit::add_inductor`], carrying `name` through any error as
    /// [`CircuitError::Element`].
    ///
    /// # Errors
    ///
    /// As [`Circuit::add_inductor`], wrapped in [`CircuitError::Element`].
    pub fn add_inductor_named(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        value: Inductance,
    ) -> Result<InductorId, CircuitError> {
        Self::named(name, self.add_inductor(plus, minus, value))
    }

    /// [`Circuit::add_mutual_inductor`], carrying `name` through any error as
    /// [`CircuitError::Element`].
    ///
    /// # Errors
    ///
    /// As [`Circuit::add_mutual_inductor`], wrapped in
    /// [`CircuitError::Element`].
    pub fn add_mutual_inductor_named(
        &mut self,
        name: &str,
        first: InductorId,
        second: InductorId,
        coupling: f64,
    ) -> Result<(), CircuitError> {
        Self::named(name, self.add_mutual_inductor(first, second, coupling))
    }

    /// [`Circuit::add_voltage_source`], carrying `name` through any error as
    /// [`CircuitError::Element`].
    ///
    /// # Errors
    ///
    /// As [`Circuit::add_voltage_source`], wrapped in
    /// [`CircuitError::Element`].
    pub fn add_voltage_source_named(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> Result<SourceId, CircuitError> {
        Self::named(name, self.add_voltage_source(plus, minus, waveform))
    }

    /// [`Circuit::add_current_source`], carrying `name` through any error as
    /// [`CircuitError::Element`].
    ///
    /// # Errors
    ///
    /// As [`Circuit::add_current_source`], wrapped in
    /// [`CircuitError::Element`].
    pub fn add_current_source_named(
        &mut self,
        name: &str,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> Result<SourceId, CircuitError> {
        Self::named(name, self.add_current_source(plus, minus, waveform))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{Time, Voltage};

    #[test]
    fn node_management() {
        let mut c = Circuit::new();
        assert_eq!(c.node_count(), 1);
        assert!(c.ground().is_ground());
        let a = c.add_node();
        let b = c.add_node();
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert!(!a.is_ground());
        assert_eq!(c.node_count(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn element_insertion_and_validation() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        c.add_resistor(a, gnd, Resistance::from_ohms(100.0)).unwrap();
        c.add_capacitor(a, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        c.add_inductor(a, gnd, Inductance::from_nanohenries(2.0)).unwrap();
        assert_eq!(c.elements().len(), 3);
        assert!(!c.is_empty());

        assert!(matches!(
            c.add_resistor(a, gnd, Resistance::from_ohms(0.0)),
            Err(CircuitError::InvalidValue { what: "resistance", .. })
        ));
        assert!(matches!(
            c.add_resistor(a, gnd, Resistance::from_ohms(-5.0)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            c.add_capacitor(a, gnd, Capacitance::from_farads(f64::NAN)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            c.add_inductor(a, gnd, Inductance::from_henries(f64::INFINITY)),
            Err(CircuitError::InvalidValue { .. })
        ));
    }

    #[test]
    fn mutual_inductor_insertion_and_validation() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        let gnd = c.ground();
        let l1 = c.add_inductor(a, gnd, Inductance::from_nanohenries(2.0)).unwrap();
        let l2 = c.add_inductor(b, gnd, Inductance::from_nanohenries(8.0)).unwrap();
        assert_eq!(l1.index(), 0);
        assert_eq!(l2.index(), 1);
        assert_eq!(c.inductor_count(), 2);

        c.add_mutual_inductor(l1, l2, 0.5).unwrap();
        assert!(matches!(
            c.elements().last(),
            Some(Element::MutualInductor { coupling, .. }) if *coupling == 0.5
        ));
        // Negative coupling (reversed dots) is allowed.
        c.add_mutual_inductor(l2, l1, -0.9).unwrap();

        // Out-of-range identifiers.
        assert!(matches!(
            c.add_mutual_inductor(l1, InductorId(7), 0.5),
            Err(CircuitError::UnknownInductor { index: 7 })
        ));
        // Self-coupling and out-of-range/non-finite coefficients all use the
        // InvalidValue variant, consistently with the other element adders.
        assert!(matches!(
            c.add_mutual_inductor(l1, l1, 0.5),
            Err(CircuitError::InvalidValue { .. })
        ));
        for k in [0.0, 1.0, -1.0, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    c.add_mutual_inductor(l1, l2, k),
                    Err(CircuitError::InvalidValue { what: "coupling coefficient", .. })
                ),
                "k = {k} should be rejected"
            );
        }

        // Several K elements on one pair stamp additively, so the |k| < 1
        // bound applies to the running sum too: 0.5 − 0.9 + 0.8 = 0.4 is
        // fine, but a further 0.7 (total 1.1) is not — in either argument
        // order.
        c.add_mutual_inductor(l1, l2, 0.8).unwrap();
        assert!(matches!(
            c.add_mutual_inductor(l2, l1, 0.7),
            Err(CircuitError::InvalidValue {
                what: "cumulative coupling coefficient of an inductor pair",
                ..
            })
        ));
    }

    #[test]
    fn non_finite_source_waveforms_are_rejected() {
        // Regression: source adders used to accept any waveform, so NaN or
        // infinite levels reached the analyses. They must now fail with the
        // same InvalidValue variant the passive-element adders use.
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        let bad_levels: Vec<SourceWaveform> = vec![
            SourceWaveform::Dc { level: Voltage::from_volts(f64::NAN) },
            SourceWaveform::Step {
                amplitude: Voltage::from_volts(f64::INFINITY),
                delay: Time::ZERO,
            },
            SourceWaveform::Step {
                amplitude: Voltage::from_volts(1.0),
                delay: Time::from_seconds(f64::NAN),
            },
            SourceWaveform::Ramp {
                amplitude: Voltage::from_volts(1.0),
                delay: Time::ZERO,
                rise_time: Time::from_seconds(-1.0),
            },
            SourceWaveform::Pulse {
                amplitude: Voltage::from_volts(1.0),
                delay: Time::ZERO,
                edge_time: Time::from_seconds(f64::NEG_INFINITY),
                width: Time::ZERO,
            },
            SourceWaveform::PieceWiseLinear {
                points: vec![
                    (Time::ZERO, Voltage::from_volts(1.0)),
                    (Time::from_seconds(1.0), Voltage::from_volts(f64::NAN)),
                ],
            },
            SourceWaveform::PieceWiseLinear {
                points: vec![
                    (Time::from_seconds(2.0), Voltage::ZERO),
                    (Time::from_seconds(1.0), Voltage::ZERO),
                ],
            },
        ];
        for w in bad_levels {
            assert!(
                matches!(
                    c.add_voltage_source(a, gnd, w.clone()),
                    Err(CircuitError::InvalidValue { .. })
                ),
                "voltage source with {w:?} should be rejected"
            );
            assert!(
                matches!(
                    c.add_current_source(a, gnd, w.clone()),
                    Err(CircuitError::InvalidValue { .. })
                ),
                "current source with {w:?} should be rejected"
            );
        }
        // A rejected source must not consume an id or leave an element behind.
        assert_eq!(c.source_count(), 0);
        assert!(c.is_empty());
        // Negative amplitudes and delayed PWL corners remain valid.
        c.add_voltage_source(
            a,
            gnd,
            SourceWaveform::Step { amplitude: Voltage::from_volts(-1.0), delay: Time::ZERO },
        )
        .unwrap();
    }

    #[test]
    fn foreign_nodes_are_rejected() {
        let mut other = Circuit::new();
        let foreign = other.add_node();
        let _ = other.add_node();

        let mut c = Circuit::new();
        let a = c.add_node();
        // `foreign` has index 1 which exists in `c` too, so craft an index that doesn't.
        let bogus = NodeId(99);
        assert!(matches!(
            c.add_resistor(a, bogus, Resistance::from_ohms(1.0)),
            Err(CircuitError::UnknownNode { index: 99 })
        ));
        // An in-range foreign id is indistinguishable by design — document that.
        assert!(c.add_resistor(a, foreign, Resistance::from_ohms(1.0)).is_ok());
    }

    #[test]
    fn sources_get_sequential_ids() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        let s0 = c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        let s1 = c
            .add_current_source(a, gnd, SourceWaveform::Dc { level: Voltage::from_volts(1e-3) })
            .unwrap();
        assert_eq!(s0.index(), 0);
        assert_eq!(s1.index(), 1);
        assert_eq!(c.source_count(), 2);
    }

    #[test]
    fn named_adders_cite_the_element_in_their_errors() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        // Success paths delegate unchanged.
        c.add_resistor_named("Rdrv", a, gnd, Resistance::from_ohms(50.0)).unwrap();
        let l1 = c.add_inductor_named("Lseg", a, gnd, Inductance::from_nanohenries(1.0)).unwrap();
        let l2 = c.add_inductor_named("Lseg2", a, gnd, Inductance::from_nanohenries(1.0)).unwrap();
        c.add_mutual_inductor_named("K12", l1, l2, 0.4).unwrap();
        c.add_voltage_source_named("Vin", a, gnd, SourceWaveform::unit_step()).unwrap();

        // Failure paths wrap the underlying error with the supplied name.
        let err = c.add_resistor_named("Rbad", a, gnd, Resistance::from_ohms(-3.0)).unwrap_err();
        assert!(matches!(
            &err,
            CircuitError::Element { name, source }
                if name == "Rbad"
                    && matches!(**source, CircuitError::InvalidValue { what: "resistance", .. })
        ));
        assert!(err.to_string().contains("Rbad"), "message must cite the card: {err}");

        let err = c
            .add_capacitor_named("Cbad", NodeId(99), gnd, Capacitance::from_picofarads(1.0))
            .unwrap_err();
        assert!(matches!(
            &err,
            CircuitError::Element { name, source }
                if name == "Cbad" && matches!(**source, CircuitError::UnknownNode { index: 99 })
        ));

        let err = c.add_mutual_inductor_named("Kbad", l1, l2, 1.5).unwrap_err();
        assert!(matches!(&err, CircuitError::Element { name, .. } if name == "Kbad"));
        let err = c
            .add_current_source_named(
                "Ibad",
                a,
                gnd,
                SourceWaveform::Dc { level: Voltage::from_volts(f64::NAN) },
            )
            .unwrap_err();
        assert!(matches!(&err, CircuitError::Element { name, .. } if name == "Ibad"));
        let err = c
            .add_voltage_source_named(
                "Vbad",
                a,
                gnd,
                SourceWaveform::Dc { level: Voltage::from_volts(f64::INFINITY) },
            )
            .unwrap_err();
        assert!(matches!(&err, CircuitError::Element { name, .. } if name == "Vbad"));
        let err = c.add_inductor_named("Lbad", a, gnd, Inductance::from_henries(0.0)).unwrap_err();
        assert!(matches!(&err, CircuitError::Element { name, .. } if name == "Lbad"));
        // A rejected named element must not consume ids or leave elements.
        assert_eq!(c.inductor_count(), 2);
        assert_eq!(c.source_count(), 1);
    }

    #[test]
    fn default_is_empty_circuit_with_ground() {
        let c = Circuit::default();
        assert!(c.is_empty());
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.source_count(), 0);
    }
}
