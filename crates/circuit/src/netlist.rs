//! Circuit construction: nodes, elements and independent sources.
//!
//! A [`Circuit`] is a flat netlist of linear two-terminal elements. Nodes are
//! created with [`Circuit::add_node`]; the ground node always exists and is
//! returned by [`Circuit::ground`]. Element values are validated at insertion
//! so analyses can assume well-formed data.

use rlckit_units::{Capacitance, Inductance, Resistance};

use crate::error::CircuitError;
use crate::source::SourceWaveform;

/// Identifier of a circuit node.
///
/// Index 0 is always the ground/reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground (reference) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` if this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of an independent source within a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub(crate) usize);

impl SourceId {
    /// Raw index of the source in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A resistor between two nodes.
    Resistor {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Resistance value.
        value: Resistance,
    },
    /// A capacitor between two nodes.
    Capacitor {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Capacitance value.
        value: Capacitance,
    },
    /// An inductor between two nodes. Its branch current becomes an MNA unknown.
    Inductor {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Inductance value.
        value: Inductance,
    },
    /// An independent voltage source. Its branch current becomes an MNA unknown.
    VoltageSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source identifier (for AC excitation selection).
        source: SourceId,
        /// Time-domain waveform.
        waveform: SourceWaveform,
    },
    /// An independent current source flowing from `plus` through the source to `minus`.
    CurrentSource {
        /// Terminal the current leaves the source from (conventional current
        /// is injected *into* this node).
        plus: NodeId,
        /// Terminal the current returns to the source at.
        minus: NodeId,
        /// Source identifier.
        source: SourceId,
        /// Time-domain waveform, interpreted in amperes (the `Voltage` payload
        /// of the waveform is reused as a numeric level).
        waveform: SourceWaveform,
    },
}

/// A flat netlist of linear elements.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    num_nodes: usize,
    elements: Vec<Element>,
    num_sources: usize,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Self { num_nodes: 1, elements: Vec::new(), num_sources: 0 }
    }

    /// The ground (reference) node.
    pub fn ground(&self) -> NodeId {
        NodeId::GROUND
    }

    /// Creates a new node and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.num_nodes
    }

    /// Number of independent sources.
    pub fn source_count(&self) -> usize {
        self.num_sources
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Returns `true` if the circuit has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    fn check_node(&self, node: NodeId) -> Result<(), CircuitError> {
        if node.0 < self.num_nodes {
            Ok(())
        } else {
            Err(CircuitError::UnknownNode { index: node.0 })
        }
    }

    fn check_positive(value: f64, what: &'static str) -> Result<(), CircuitError> {
        if value.is_finite() && value > 0.0 {
            Ok(())
        } else {
            Err(CircuitError::InvalidValue { what, value })
        }
    }

    /// Adds a resistor between `plus` and `minus`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] if the resistance is not finite
    /// and strictly positive, or [`CircuitError::UnknownNode`] for foreign nodes.
    pub fn add_resistor(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        value: Resistance,
    ) -> Result<(), CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        Self::check_positive(value.ohms(), "resistance")?;
        self.elements.push(Element::Resistor { plus, minus, value });
        Ok(())
    }

    /// Adds a capacitor between `plus` and `minus`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] if the capacitance is not finite
    /// and strictly positive, or [`CircuitError::UnknownNode`] for foreign nodes.
    pub fn add_capacitor(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        value: Capacitance,
    ) -> Result<(), CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        Self::check_positive(value.farads(), "capacitance")?;
        self.elements.push(Element::Capacitor { plus, minus, value });
        Ok(())
    }

    /// Adds an inductor between `plus` and `minus`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] if the inductance is not finite
    /// and strictly positive, or [`CircuitError::UnknownNode`] for foreign nodes.
    pub fn add_inductor(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        value: Inductance,
    ) -> Result<(), CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        Self::check_positive(value.henries(), "inductance")?;
        self.elements.push(Element::Inductor { plus, minus, value });
        Ok(())
    }

    /// Adds an independent voltage source with the given waveform.
    ///
    /// Returns the [`SourceId`] used to select this source as the excitation
    /// in AC analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for foreign nodes.
    pub fn add_voltage_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> Result<SourceId, CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        let source = SourceId(self.num_sources);
        self.num_sources += 1;
        self.elements.push(Element::VoltageSource { plus, minus, source, waveform });
        Ok(source)
    }

    /// Adds an independent current source with the given waveform
    /// (amplitudes interpreted in amperes).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for foreign nodes.
    pub fn add_current_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> Result<SourceId, CircuitError> {
        self.check_node(plus)?;
        self.check_node(minus)?;
        let source = SourceId(self.num_sources);
        self.num_sources += 1;
        self.elements.push(Element::CurrentSource { plus, minus, source, waveform });
        Ok(source)
    }

    /// Validates that a node belongs to this circuit, for use by analyses.
    pub(crate) fn validate_node(&self, node: NodeId) -> Result<(), CircuitError> {
        self.check_node(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::Voltage;

    #[test]
    fn node_management() {
        let mut c = Circuit::new();
        assert_eq!(c.node_count(), 1);
        assert!(c.ground().is_ground());
        let a = c.add_node();
        let b = c.add_node();
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert!(!a.is_ground());
        assert_eq!(c.node_count(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn element_insertion_and_validation() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        c.add_resistor(a, gnd, Resistance::from_ohms(100.0)).unwrap();
        c.add_capacitor(a, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        c.add_inductor(a, gnd, Inductance::from_nanohenries(2.0)).unwrap();
        assert_eq!(c.elements().len(), 3);
        assert!(!c.is_empty());

        assert!(matches!(
            c.add_resistor(a, gnd, Resistance::from_ohms(0.0)),
            Err(CircuitError::InvalidValue { what: "resistance", .. })
        ));
        assert!(matches!(
            c.add_resistor(a, gnd, Resistance::from_ohms(-5.0)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            c.add_capacitor(a, gnd, Capacitance::from_farads(f64::NAN)),
            Err(CircuitError::InvalidValue { .. })
        ));
        assert!(matches!(
            c.add_inductor(a, gnd, Inductance::from_henries(f64::INFINITY)),
            Err(CircuitError::InvalidValue { .. })
        ));
    }

    #[test]
    fn foreign_nodes_are_rejected() {
        let mut other = Circuit::new();
        let foreign = other.add_node();
        let _ = other.add_node();

        let mut c = Circuit::new();
        let a = c.add_node();
        // `foreign` has index 1 which exists in `c` too, so craft an index that doesn't.
        let bogus = NodeId(99);
        assert!(matches!(
            c.add_resistor(a, bogus, Resistance::from_ohms(1.0)),
            Err(CircuitError::UnknownNode { index: 99 })
        ));
        // An in-range foreign id is indistinguishable by design — document that.
        assert!(c.add_resistor(a, foreign, Resistance::from_ohms(1.0)).is_ok());
    }

    #[test]
    fn sources_get_sequential_ids() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let gnd = c.ground();
        let s0 = c.add_voltage_source(a, gnd, SourceWaveform::unit_step()).unwrap();
        let s1 = c
            .add_current_source(a, gnd, SourceWaveform::Dc { level: Voltage::from_volts(1e-3) })
            .unwrap();
        assert_eq!(s0.index(), 0);
        assert_eq!(s1.index(), 1);
        assert_eq!(c.source_count(), 2);
    }

    #[test]
    fn default_is_empty_circuit_with_ground() {
        let c = Circuit::default();
        assert!(c.is_empty());
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.source_count(), 0);
    }
}
